//! Quickstart: compress a synthetic test set with State Skip LFSRs
//! through the staged `Engine` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small statistical test set, walks the typed stages
//! (encode -> embed -> segment -> finish) with commentary at each
//! step, then proves with the cycle-accurate decompressor that the
//! shortened sequence still applies every cube. Finally, runs the two
//! paper baselines against the same hardware for a one-table
//! comparison.

use ss_core::{
    comparison_table, Baseline11, ClassicalReseeding, CompressionScheme, Decompressor, Engine,
    StateSkip,
};
use ss_testdata::{generate_test_set, CubeProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = CubeProfile::mini();
    let set = generate_test_set(&profile, 2026);
    let stats = set.stats();
    println!(
        "test set `{}`: {} cubes over {} cells, smax = {}, mean specified = {:.1}",
        profile.name,
        stats.cube_count,
        set.config().cells(),
        stats.smax,
        stats.mean_specified
    );

    let engine = Engine::builder()
        .window(50)
        .segment(5)
        .speedup(10)
        .build()?;

    // stage 1: encoding (seeds and TDV are fixed from here on); keep
    // the synthesised hardware for the decompressor proof below
    // instead of re-synthesising it
    let encoded = engine.encode(&set)?;
    let (lfsr, shifter) = (
        encoded.ctx().lfsr().clone(),
        encoded.ctx().shifter().clone(),
    );
    println!(
        "encoded: {} seeds x {} bits = {} bits TDV ({} raw vectors)",
        encoded.seed_count(),
        encoded.ctx().lfsr_size(),
        encoded.tdv(),
        encoded.tsl_original()
    );

    // stage 2: fortuitous embedding detection
    let embedded = encoded.embed();
    println!(
        "embedded: {:.1} embeddings per cube on average",
        embedded.embedding().mean_embeddings()
    );

    // stage 3: segment selection; stage 4: traversal + full report
    let segmented = embedded.segment();
    println!(
        "segmented: {} useful segments across {} seeds",
        segmented.plan().total_useful(),
        segmented.plan().seed_count()
    );
    let report = segmented.finish()?;
    println!("{}", report.summary());
    println!(
        "  hardware: skip circuit {:.0} GE, mode select {:.0} GE, shared blocks {:.0} GE",
        report.cost.skip_ge(),
        report.cost.mode_select_ge(),
        report.cost.shared_ge()
    );

    // prove it: run the decompressor and check coverage
    let mut decompressor = Decompressor::new(
        lfsr,
        engine.config().speedup,
        shifter,
        set.config(),
        report.mode_select.clone(),
    );
    let trace = decompressor.run(&report.encoding, &report.plan);
    println!(
        "decompressor: {} clocks, {} vectors applied ({} garbage), coverage: {}",
        trace.clocks,
        trace.tsl(),
        trace.garbage_vectors,
        if trace.covers(&set) {
            "all cubes applied"
        } else {
            "MISSING CUBES"
        }
    );
    assert!(trace.covers(&set));

    // the paper's comparison, one batch call over trait objects
    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(StateSkip),
        Box::new(ClassicalReseeding),
        Box::new(Baseline11),
    ];
    let reports = engine.run_all(&schemes, &set)?;
    println!();
    println!("{}", comparison_table(&reports));
    Ok(())
}
