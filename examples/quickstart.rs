//! Quickstart: compress a synthetic test set with State Skip LFSRs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small statistical test set, runs the full pipeline
//! (window-based reseeding -> embedding detection -> segment selection
//! -> State Skip traversal), then proves with the cycle-accurate
//! decompressor that the shortened sequence still applies every cube.

use ss_core::{Decompressor, Pipeline, PipelineConfig};
use ss_testdata::{generate_test_set, CubeProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = CubeProfile::mini();
    let set = generate_test_set(&profile, 2026);
    let stats = set.stats();
    println!(
        "test set `{}`: {} cubes over {} cells, smax = {}, mean specified = {:.1}",
        profile.name,
        stats.cube_count,
        set.config().cells(),
        stats.smax,
        stats.mean_specified
    );

    let config = PipelineConfig {
        window: 50,
        segment: 5,
        speedup: 10,
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(&set, config)?;
    let report = pipeline.run()?;
    println!("{}", report.summary());
    println!(
        "  useful segments: {} over {} seeds (mode-select terms: {})",
        report.plan.total_useful(),
        report.seeds,
        report.mode_select.term_count()
    );
    println!(
        "  hardware: skip circuit {:.0} GE, mode select {:.0} GE, shared blocks {:.0} GE",
        report.cost.skip_ge(),
        report.cost.mode_select_ge(),
        report.cost.shared_ge()
    );

    // prove it: run the decompressor and check coverage
    let mut decompressor = Decompressor::new(
        pipeline.lfsr().clone(),
        config.speedup,
        pipeline.shifter().clone(),
        set.config(),
        report.mode_select.clone(),
    );
    let trace = decompressor.run(&report.encoding, &report.plan);
    println!(
        "decompressor: {} clocks, {} vectors applied ({} garbage), coverage: {}",
        trace.clocks,
        trace.tsl(),
        trace.garbage_vectors,
        if trace.covers(&set) { "all cubes applied" } else { "MISSING CUBES" }
    );
    assert!(trace.covers(&set));
    Ok(())
}
