//! Explore State Skip circuit hardware cost across speedup factors.
//!
//! ```text
//! cargo run --release --example skip_circuit_explorer
//! ```
//!
//! Sweeps `k` for the s13207-sized LFSR (n = 24) and prints the raw
//! (unshared) XOR count, the shared-network gate count after common
//! subexpression extraction, logic depth and gate equivalents — the
//! quantities behind the paper's "52 to 119 GE for k = 12..32" remark.
//! Also emits the RTL of one configuration.

use ss_core::{emit_decompressor_rtl, Table};
use ss_gf2::primitive_poly;
use ss_lfsr::{CostModel, GateCount, Lfsr, PhaseShifter, SkipCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24; // the paper's s13207 LFSR size
    let lfsr = Lfsr::fibonacci(primitive_poly(n)?);
    let model = CostModel::default();

    let mut table = Table::new([
        "k",
        "raw XOR2",
        "shared XOR2",
        "depth",
        "skip GE (w/ muxes)",
    ]);
    for k in [2u64, 4, 8, 12, 16, 20, 24, 28, 32] {
        let skip = SkipCircuit::new(&lfsr, k)?;
        let net = skip.synthesize();
        let ge = model.ge(&GateCount::skip_frontend(n, net.gate_count()));
        table.add_row([
            k.to_string(),
            skip.raw_xor2_count().to_string(),
            net.gate_count().to_string(),
            net.depth().to_string(),
            format!("{ge:.0}"),
        ]);
    }
    println!(
        "State Skip circuit cost for a {n}-bit LFSR ({}):",
        lfsr.poly()
    );
    println!("{table}");

    let skip = SkipCircuit::new(&lfsr, 10)?;
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1);
    let shifter = PhaseShifter::synthesize(n, 8, 3, &mut rng)?;
    let rtl = emit_decompressor_rtl(&lfsr, &skip, &shifter);
    println!("--- RTL for k = 10 ({} lines) ---", rtl.lines().count());
    for line in rtl.lines().take(24) {
        println!("{line}");
    }
    println!("...");
    Ok(())
}
