//! Full ATPG-to-compression flow on a generated circuit.
//!
//! ```text
//! cargo run --release --example atpg_flow
//! ```
//!
//! Mirrors the paper's experimental setup end to end, with the
//! substitutions documented in DESIGN.md: a synthetic full-scan core
//! stands in for an ISCAS'89 netlist and our PODEM stands in for
//! Atalanta. The uncompacted test cubes it emits are then compressed
//! with the State Skip pipeline.

use ss_circuit::{generate_uncompacted_test_set, random_circuit, AtpgConfig, CircuitSpec};
use ss_core::{Encoded, Engine};
use ss_testdata::{ScanConfig, TestSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. the "IP core": a 64-input full-scan combinational core
    let spec = CircuitSpec::mini();
    let circuit = random_circuit(&spec, 7);
    println!(
        "circuit `{}`: {} inputs, {} gates, {} outputs",
        spec.name,
        circuit.input_count(),
        circuit.gate_count(),
        circuit.outputs().len()
    );

    // 2. Atalanta-style uncompacted ATPG
    let outcome = generate_uncompacted_test_set(&circuit, &AtpgConfig::default(), 7);
    println!(
        "ATPG: {} cubes, {:.1}% non-redundant coverage ({} redundant, {} aborted of {})",
        outcome.cubes.len(),
        outcome.coverage() * 100.0,
        outcome.redundant,
        outcome.aborted,
        outcome.total
    );

    // 3. map the cubes onto 8 scan chains
    let scan = ScanConfig::for_cells(8, circuit.input_count())?;
    let mut set = TestSet::new(scan);
    for cube in &outcome.cubes {
        let mut padded = ss_testdata::TestCube::all_x(scan.cells());
        for (i, bit) in cube.iter_specified() {
            padded.set(i, bit);
        }
        set.push(padded)?;
    }
    let dropped = set.drop_covered();
    let stats = set.stats();
    println!(
        "test set: {} cubes ({dropped} covered dropped), smax = {}, mean specified = {:.1}",
        set.len(),
        stats.smax,
        stats.mean_specified
    );

    // 4. compress with State Skip LFSRs. The hardware is synthesised
    //    once and pinned: dropping unencodable cubes must not change
    //    the LFSR size mid-flow, so the filtered set re-enters the
    //    staged flow against the *same* context.
    let engine = Engine::builder()
        .window(60)
        .segment(6)
        .speedup(12)
        .build()?;
    let ctx = engine.synthesize(&set)?;
    let (encodable, unencodable) = ctx.encodable_subset(&set);
    if !unencodable.is_empty() {
        println!(
            "  ({} intrinsically unencodable cube(s) dropped)",
            unencodable.len()
        );
    }
    let report = Encoded::from_ctx(&encodable, ctx)?
        .embed()
        .segment()
        .finish()?;
    println!("{}", report.summary());
    println!(
        "  vs plain window-based embedding: {:.1}% shorter test sequence at identical TDV",
        report.improvement_percent
    );
    Ok(())
}
