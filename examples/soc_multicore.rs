//! Multi-core SoC decompressor sharing — the paper's Section 4 case
//! study, run as one parallel batch.
//!
//! ```text
//! cargo run --release --example soc_multicore
//! ```
//!
//! The paper synthesises one decompressor for a hypothetical SoC
//! containing all five ISCAS'89 cores (L=200, S=10, k=10): the LFSR,
//! State Skip circuit, phase shifter and counters are shared; only the
//! Mode Select unit is per-core. This example reproduces that area
//! accounting with scaled-down core profiles, compressing every core
//! concurrently via `SocPlan::run_batch`.

use ss_core::{estimated_core_area_ge, Engine, SocPlan, Table};
use ss_testdata::{generate_test_set, CubeProfile, TestSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // scaled profiles keep this example snappy; the bench harness runs
    // the bigger versions
    let profiles: Vec<CubeProfile> = CubeProfile::paper_circuits()
        .into_iter()
        .map(|p| p.scaled(0.12))
        .collect();
    let sets: Vec<TestSet> = profiles.iter().map(|p| generate_test_set(p, 1)).collect();

    // the paper's SoC shares ONE LFSR sized for the largest core;
    // pinning that size also keeps the hardware stable through the
    // unencodable-cube filter below
    let n_shared = sets.iter().map(|s| s.smax() + 4).max().expect("five cores");
    let engine = Engine::builder()
        .window(200)
        .segment(10)
        .speedup(10)
        .lfsr_size(n_shared)
        .build()?;

    // prepare the per-core encodable sets, then compress all cores in
    // parallel (std::thread::scope inside run_batch)
    let mut soc_core_area = 0.0;
    let mut cores: Vec<(String, TestSet)> = Vec::new();
    for (profile, set) in profiles.iter().zip(&sets) {
        let (encodable, dropped) = engine.encodable_subset(set)?;
        if !dropped.is_empty() {
            eprintln!(
                "note: {}: {} unencodable cube(s) dropped",
                profile.name,
                dropped.len()
            );
        }
        soc_core_area += estimated_core_area_ge(profile.scan_cells);
        cores.push((profile.name.to_string(), encodable));
    }
    let plan = SocPlan::run_batch(&engine, &cores)?;

    let mut table = Table::new(["core", "seeds", "TDV (bits)", "TSL", "ModeSelect GE"]);
    for core in plan.cores() {
        table.add_row([
            core.name.clone(),
            core.seeds.to_string(),
            core.tdv.to_string(),
            core.tsl.to_string(),
            format!("{:.0}", core.mode_select_ge),
        ]);
    }
    println!("{table}");
    let (ms_lo, ms_hi) = plan.mode_select_range();
    println!(
        "shared blocks (sized for the largest core): {:.0} GE + State Skip {:.0} GE",
        plan.shared_ge(),
        plan.skip_ge()
    );
    println!(
        "per-core Mode Select: {ms_lo:.0}-{ms_hi:.0} GE, total {:.0} GE",
        plan.mode_select_total_ge()
    );
    println!(
        "SoC decompressor: {:.0} GE shared vs {:.0} GE if replicated per core",
        plan.total_ge(),
        plan.unshared_ge()
    );
    println!(
        "decompressor area fraction: {:.1}% of the SoC (paper: 6.6%)",
        100.0 * plan.area_fraction(soc_core_area)
    );
    println!(
        "SoC totals: TDV {} bits, TSL {} vectors",
        plan.total_tdv(),
        plan.total_tsl()
    );
    Ok(())
}
