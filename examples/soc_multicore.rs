//! Multi-core SoC decompressor sharing — the paper's Section 4 case
//! study.
//!
//! ```text
//! cargo run --release --example soc_multicore
//! ```
//!
//! The paper synthesises one decompressor for a hypothetical SoC
//! containing all five ISCAS'89 cores (L=200, S=10, k=10): the LFSR,
//! State Skip circuit, phase shifter and counters are shared; only the
//! Mode Select unit is per-core. This example reproduces that area
//! accounting with scaled-down core profiles.

use ss_core::{estimated_core_area_ge, Pipeline, PipelineConfig, SocPlan, Table};
use ss_testdata::{generate_test_set, CubeProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // scaled profiles keep this example snappy; the bench harness runs
    // the bigger versions
    let cores: Vec<CubeProfile> = CubeProfile::paper_circuits()
        .into_iter()
        .map(|p| p.scaled(0.12))
        .collect();
    let config = PipelineConfig {
        window: 200,
        segment: 10,
        speedup: 10,
        ..PipelineConfig::default()
    };

    let mut plan = SocPlan::new();
    let mut table = Table::new(["core", "seeds", "TDV (bits)", "TSL", "ModeSelect GE"]);
    let mut soc_core_area = 0.0;
    for profile in &cores {
        let set = generate_test_set(profile, 1);
        let pipeline = Pipeline::new(&set, config)?;
        let (encodable, dropped) = pipeline.encodable_subset();
        if !dropped.is_empty() {
            eprintln!("note: {}: {} unencodable cube(s) dropped", profile.name, dropped.len());
        }
        let report = Pipeline::new(&encodable, config)?.run()?;
        plan.add_core(profile.name, &report);
        soc_core_area += estimated_core_area_ge(profile.scan_cells);
        table.add_row([
            profile.name.to_string(),
            report.seeds.to_string(),
            report.tdv.to_string(),
            report.tsl_proposed.to_string(),
            format!("{:.0}", report.cost.mode_select_ge()),
        ]);
    }
    println!("{table}");
    let (ms_lo, ms_hi) = plan.mode_select_range();
    println!(
        "shared blocks (sized for the largest core): {:.0} GE + State Skip {:.0} GE",
        plan.shared_ge(),
        plan.skip_ge()
    );
    println!(
        "per-core Mode Select: {ms_lo:.0}-{ms_hi:.0} GE, total {:.0} GE",
        plan.mode_select_total_ge()
    );
    println!(
        "SoC decompressor: {:.0} GE shared vs {:.0} GE if replicated per core",
        plan.total_ge(),
        plan.unshared_ge()
    );
    println!(
        "decompressor area fraction: {:.1}% of the SoC (paper: 6.6%)",
        100.0 * plan.area_fraction(soc_core_area)
    );
    println!(
        "SoC totals: TDV {} bits, TSL {} vectors",
        plan.total_tdv(),
        plan.total_tsl()
    );
    Ok(())
}
