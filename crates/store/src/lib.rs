//! `ss-store` — the persistent, content-addressed artifact store.
//!
//! The in-memory LRU of `ss-server` dies with the process, so every
//! restart re-pays cold synthesis across the whole corpus. This crate
//! is the second tier under that cache: a git-object-style store of
//! hash-named artifact files in a sharded directory layout
//! (`<dir>/ab/cdef...0123.ssar`), each holding a **versioned binary
//! serialization** of everything one cold run produced — the
//! synthesised [`HardwareCtx`](ss_core::HardwareCtx), the filtered
//! (encodable) [`TestSet`](ss_testdata::TestSet) and the
//! [`EncodingResult`](ss_core::EncodingResult) — plus the
//! [`report_digest`] of the report those artifacts reproduce.
//!
//! # Integrity contract
//!
//! A load can never panic and can never serve a wrong answer:
//!
//! * every file carries a magic, a format version, its own
//!   content-addressed key and an FNV-1a checksum over the whole
//!   envelope — truncation, bit flips, version skew and cross-key
//!   renames are all rejected as typed [`StoreError`]s;
//! * the stored [`report_digest`] lets the serving layer re-verify the
//!   *semantic* content after the cheap pipeline stages re-run — a
//!   mismatch is treated as corruption, never as a result;
//! * writes go through a temp file and an atomic rename, so a crashed
//!   or concurrent writer can never leave a half-written artifact
//!   under a live key.
//!
//! ```
//! use ss_core::{Encoded, Engine};
//! use ss_store::{Artifact, ArtifactStore};
//! use ss_testdata::{generate_test_set, CubeProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("ss-store-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&dir)?;
//! let set = generate_test_set(&CubeProfile::mini(), 1);
//! let engine = Engine::builder().window(16).segment(4).speedup(4).build()?;
//! let ctx = engine.synthesize(&set)?;
//! let encoding = Encoded::from_ctx_ref(&set, &ctx)?.encoding().clone();
//! let report = engine.run(&set)?;
//! let artifact = Artifact {
//!     report_digest: ss_store::report_digest(&report),
//!     ctx,
//!     set,
//!     dropped: 0,
//!     encoding,
//! };
//! store.put(0xab54_a98c_eb1f_0ad2, &artifact)?;
//! let loaded = store.get(0xab54_a98c_eb1f_0ad2, None)?.expect("present");
//! assert_eq!(loaded.encoding, artifact.encoding);
//! assert_eq!(loaded.report_digest, artifact.report_digest);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod artifact;
mod proptests;
mod store;

pub use artifact::{Artifact, StoreError, FORMAT_VERSION, MAGIC, MAX_ARTIFACT_BYTES};
pub use store::{ArtifactStore, StoreOccupancy};

use ss_core::PipelineReport;

/// 64-bit FNV-1a, the workspace's stable content hash: no external
/// deps, identical on every platform and toolchain.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` (big-endian bytes) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_be_bytes());
    }

    /// The hash value so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A 64-bit FNV digest over everything a [`PipelineReport`] commits to
/// — every seed bit, every intentional placement, and the full TSL
/// accounting. Two reports digest equal iff the encoding and traversal
/// are bit-identical, so a served result can be checked against a
/// local `Engine::run` without shipping the seeds themselves. Stored
/// in every artifact file and re-verified on load (the corruption
/// guard of the persistent tier).
pub fn report_digest(report: &PipelineReport) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(report.lfsr_size as u64);
    h.write_u64(report.window as u64);
    h.write_u64(report.segment as u64);
    h.write_u64(report.speedup);
    h.write_u64(report.encoding.seeds.len() as u64);
    for seed in &report.encoding.seeds {
        h.write_u64(seed.seed.len() as u64);
        for &word in seed.seed.as_words() {
            h.write_u64(word);
        }
        h.write_u64(seed.placements.len() as u64);
        for placement in &seed.placements {
            h.write_u64(placement.cube as u64);
            h.write_u64(placement.position as u64);
        }
    }
    h.write_u64(report.tdv as u64);
    h.write_u64(report.tsl_original);
    h.write_u64(report.tsl_truncated);
    h.write_u64(report.tsl_proposed);
    h.write_u64(report.tsl_report.vectors);
    h.write_u64(report.tsl_report.useful_vectors);
    h.write_u64(report.tsl_report.total_clocks);
    for &v in &report.tsl_report.per_seed {
        h.write_u64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // published FNV-1a 64 test vectors
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }
}
