//! The on-disk store: sharded git-object-style layout, atomic writes,
//! and a boot-time key scan for warm-starting an in-memory index.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::artifact::{Artifact, StoreError};

/// Extension of every artifact file.
const EXT: &str = "ssar";

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp-file name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Occupancy summary of the on-disk tier, as reported in server stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreOccupancy {
    /// Number of artifact files currently in the store.
    pub artifacts: u64,
    /// Total size of those files in bytes (envelope included).
    pub bytes: u64,
}

/// A persistent, content-addressed artifact store rooted at one
/// directory.
///
/// Artifacts are filed git-object-style by their 64-bit key: the high
/// byte names a shard directory, the remaining bytes the file —
/// `<root>/ab/cdef01234567890a.ssar` for key `0xabcd_ef01_2345_6789_0a`
/// (16 hex digits total). Writes land in a temp file first and are
/// atomically renamed into place, so readers — in this process or any
/// other sharing the directory — never observe a partial artifact.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if necessary) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(ArtifactStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an artifact with this key lives at (whether or not it
    /// currently exists).
    pub fn path_for(&self, key: u64) -> PathBuf {
        let hex = format!("{key:016x}");
        self.root
            .join(&hex[..2])
            .join(format!("{}.{EXT}", &hex[2..]))
    }

    /// Loads and fully validates the artifact stored under `key`.
    /// `threads` becomes the rehydrated context's worker-thread budget
    /// (see [`Artifact::from_bytes`]).
    ///
    /// Returns `Ok(None)` when no artifact exists under the key — a
    /// plain miss. Every other failure (unreadable file, truncation,
    /// checksum mismatch, version skew, validation failure) is a typed
    /// [`StoreError`] so the caller can count corruption separately
    /// from absence. Never panics.
    pub fn get(&self, key: u64, threads: Option<usize>) -> Result<Option<Artifact>, StoreError> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        Artifact::from_bytes(&bytes, key, threads).map(Some)
    }

    /// Writes the artifact under `key`, replacing any existing file.
    ///
    /// The bytes go to a temp file in the store root first and are
    /// renamed into place, so a crash or a concurrent reader can never
    /// see a half-written artifact. Returns the stored file's size.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn put(&self, key: u64, artifact: &Artifact) -> Result<u64, StoreError> {
        let bytes = artifact.to_bytes(key);
        let path = self.path_for(key);
        if let Some(shard) = path.parent() {
            fs::create_dir_all(shard)?;
        }
        let tmp = self.root.join(format!(
            ".tmp-{}-{}-{key:016x}",
            process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            fs::remove_file(&tmp).ok();
        }
        result?;
        Ok(bytes.len() as u64)
    }

    /// Deletes the artifact stored under `key`, if any. Used to evict
    /// a file that failed its integrity check. Absence is not an
    /// error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures other than absence.
    pub fn remove(&self, key: u64) -> Result<(), StoreError> {
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Scans the store and returns every artifact key present, with
    /// each file's size — the boot-time warm-start index. Files that
    /// do not parse as `<2 hex>/<14 hex>.ssar` (temp files, strays)
    /// are skipped, not errors; their *contents* are only validated
    /// when the artifact is actually loaded.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a directory cannot be read.
    pub fn keys(&self) -> Result<Vec<(u64, u64)>, StoreError> {
        let mut keys = Vec::new();
        for shard in fs::read_dir(&self.root)? {
            let shard = shard?;
            let shard_name = shard.file_name();
            let Some(shard_hex) = shard_name.to_str() else {
                continue;
            };
            if shard_hex.len() != 2 || !shard.file_type()?.is_dir() {
                continue;
            }
            let Ok(high) = u64::from_str_radix(shard_hex, 16) else {
                continue;
            };
            for entry in fs::read_dir(shard.path())? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(stem) = name.strip_suffix(&format!(".{EXT}")) else {
                    continue;
                };
                if stem.len() != 14 {
                    continue;
                }
                let Ok(low) = u64::from_str_radix(stem, 16) else {
                    continue;
                };
                keys.push(((high << 56) | low, entry.metadata()?.len()));
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }

    /// Counts artifacts and bytes currently on disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory scan fails.
    pub fn occupancy(&self) -> Result<StoreOccupancy, StoreError> {
        let mut occ = StoreOccupancy::default();
        for (_, size) in self.keys()? {
            occ.artifacts += 1;
            occ.bytes += size;
        }
        Ok(occ)
    }
}
