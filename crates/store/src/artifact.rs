//! The versioned binary artifact format: serialization of one cold
//! run's products and the adversarial-input decoder.
//!
//! # File grammar (format version 1)
//!
//! ```text
//! file     := magic version key digest payload_len payload checksum
//! magic    := "ss-store"                 ; 8 bytes
//! version  := u32 BE                     ; FORMAT_VERSION (currently 1)
//! key      := u64 BE                     ; the content-addressed cache key
//! digest   := u64 BE                     ; report_digest of the reproduced report
//! payload_len := u64 BE                  ; bytes in payload
//! checksum := u64 BE                     ; FNV-1a over every preceding byte
//! ```
//!
//! The payload serialises, in order: the engine configuration (minus
//! the `threads` knob — a runtime policy, not content), the scan
//! geometry, the LFSR (kind + characteristic polynomial), the phase
//! shifter rows, the filtered test set, the dropped-cube count, and
//! the encoding (seeds + placements). Scalars are big-endian
//! fixed-width integers; a bit vector is a `u64` bit length followed
//! by its `ceil(len/64)` little-endian-indexed words.
//!
//! Decoding never panics: the checksum is verified before any field is
//! interpreted, every length is bounds-checked against the remaining
//! buffer and a domain cap, and every semantic invariant the in-memory
//! types assert (plane lengths, care/value subset, shifter/LFSR/scan
//! agreement) is re-validated and surfaced as a typed [`StoreError`].

use std::fmt;
use std::io;

use ss_core::{EncodedSeed, EncodingResult, EngineConfig, HardwareCtx, Placement};
use ss_gf2::{BitMatrix, BitVec, Gf2Poly};
use ss_lfsr::{Lfsr, LfsrKind, PhaseShifter};
use ss_testdata::{ScanConfig, TestCube, TestSet};

use crate::Fnv64;

/// Leading magic of every artifact file.
pub const MAGIC: &[u8; 8] = b"ss-store";

/// Artifact format version written by this build.
pub const FORMAT_VERSION: u32 = 1;

/// Hard ceiling on a whole artifact file, guarding the loader against
/// unbounded allocation from a corrupt or hostile length field.
pub const MAX_ARTIFACT_BYTES: u64 = 1 << 30;

/// Domain caps on decoded dimensions — far above any real workload,
/// low enough that a crafted file cannot provoke absurd allocations
/// or a multi-minute `ExprTable` rebuild.
const MAX_BITS: u64 = 1 << 24;
const MAX_WINDOW: u64 = 1 << 16;
const MAX_DIM: u64 = 1 << 20;

const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 8;
const CHECKSUM_BYTES: usize = 8;

/// Error reading, decoding or validating a stored artifact.
///
/// Every variant is a graceful rejection — the loader never panics and
/// never returns artifacts that fail an integrity check.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure (open, read, write, rename, scan).
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not an artifact file.
    BadMagic,
    /// The file was written by a different format version.
    Version(u32),
    /// The file ended before the encoded artifact did.
    Truncated,
    /// The envelope checksum does not match the file contents — a bit
    /// flip, torn write or manual edit.
    Checksum {
        /// Checksum recomputed from the file bytes.
        computed: u64,
        /// Checksum stored in the file.
        stored: u64,
    },
    /// The file's embedded key disagrees with the key it was loaded
    /// under — a renamed or cross-linked artifact.
    KeyMismatch {
        /// Key the caller asked for.
        expected: u64,
        /// Key recorded inside the file.
        found: u64,
    },
    /// A field held a value outside its domain (dimension cap, enum
    /// discriminant, inconsistent lengths, trailing bytes, ...).
    BadField(&'static str),
    /// The decoded parts fail a semantic invariant when reassembled
    /// (scan geometry, LFSR polynomial, shifter/LFSR agreement, cube
    /// pairing).
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact i/o: {e}"),
            StoreError::BadMagic => write!(f, "not an artifact file (bad magic)"),
            StoreError::Version(v) => write!(
                f,
                "artifact format version {v}, this build reads {FORMAT_VERSION}"
            ),
            StoreError::Truncated => write!(f, "artifact file is truncated"),
            StoreError::Checksum { computed, stored } => write!(
                f,
                "artifact checksum mismatch (computed {computed:016x}, stored {stored:016x})"
            ),
            StoreError::KeyMismatch { expected, found } => write!(
                f,
                "artifact key mismatch (loaded under {expected:016x}, file says {found:016x})"
            ),
            StoreError::BadField(name) => write!(f, "artifact field {name} holds an invalid value"),
            StoreError::Invalid(what) => write!(f, "artifact fails validation: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Everything one cold run produced, as stored under one
/// content-addressed key: exactly the artifacts a warm submission
/// needs to re-enter the staged flow at the embed stage, plus the
/// digest of the report they reproduce.
#[derive(Debug)]
pub struct Artifact {
    /// The synthesised hardware (LFSR, phase shifter, expression
    /// table) for the pinned LFSR size.
    pub ctx: HardwareCtx,
    /// The encodable subset actually encoded (after dropping
    /// intrinsically unencodable cubes).
    pub set: TestSet,
    /// How many cubes were dropped as intrinsically unencodable.
    pub dropped: u64,
    /// The window-based seed encoding.
    pub encoding: EncodingResult,
    /// [`report_digest`](crate::report_digest) of the report these
    /// artifacts reproduce — re-verified by the serving layer after
    /// the cheap stages re-run.
    pub report_digest: u64,
}

// ------------------------------------------------------------- writer

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_bits(buf: &mut Vec<u8>, bits: &BitVec) {
    put_u64(buf, bits.len() as u64);
    for &word in bits.as_words() {
        put_u64(buf, word);
    }
}

/// Writes a bit vector whose length the reader already knows — words
/// only, no redundant length prefix.
fn put_planes(buf: &mut Vec<u8>, bits: &BitVec) {
    for &word in bits.as_words() {
        put_u64(buf, word);
    }
}

// ------------------------------------------------------------- reader

/// Forward-only bounds-checked cursor over the payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.at.checked_add(n).ok_or(StoreError::Truncated)?;
        if end > self.bytes.len() {
            return Err(StoreError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u64` that must fit a `usize` and stay under `cap`.
    fn dim(&mut self, cap: u64, name: &'static str) -> Result<usize, StoreError> {
        let v = self.u64()?;
        if v > cap {
            return Err(StoreError::BadField(name));
        }
        usize::try_from(v).map_err(|_| StoreError::BadField(name))
    }

    fn words(&mut self, len_bits: usize) -> Result<Vec<u64>, StoreError> {
        let nwords = len_bits.div_ceil(64);
        let raw = self.take(nwords * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn bits(&mut self, cap: u64, name: &'static str) -> Result<BitVec, StoreError> {
        let len = self.dim(cap, name)?;
        let words = self.words(len)?;
        Ok(BitVec::from_words(len, &words))
    }

    /// A bit vector of a length the caller already knows.
    fn planes(&mut self, len_bits: usize) -> Result<BitVec, StoreError> {
        let words = self.words(len_bits)?;
        Ok(BitVec::from_words(len_bits, &words))
    }

    fn finish(&self) -> Result<(), StoreError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(StoreError::BadField("trailing payload bytes"))
        }
    }
}

fn kind_to_u8(kind: LfsrKind) -> u8 {
    match kind {
        LfsrKind::Fibonacci => 0,
        LfsrKind::Galois => 1,
    }
}

fn kind_from_u8(v: u8) -> Result<LfsrKind, StoreError> {
    match v {
        0 => Ok(LfsrKind::Fibonacci),
        1 => Ok(LfsrKind::Galois),
        _ => Err(StoreError::BadField("lfsr_kind")),
    }
}

fn encode_payload(artifact: &Artifact) -> Vec<u8> {
    let mut buf = Vec::new();
    let ctx = &artifact.ctx;
    let config = ctx.config();

    // engine configuration (threads deliberately not stored)
    put_u64(&mut buf, config.window as u64);
    put_u64(&mut buf, config.segment as u64);
    put_u64(&mut buf, config.speedup);
    match config.lfsr_size {
        Some(n) => {
            put_u8(&mut buf, 1);
            put_u64(&mut buf, n as u64);
        }
        None => put_u8(&mut buf, 0),
    }
    put_u8(&mut buf, kind_to_u8(config.lfsr_kind));
    put_u64(&mut buf, config.ps_taps as u64);
    put_u64(&mut buf, config.hw_seed);
    put_u64(&mut buf, config.fill_seed);

    // scan geometry
    put_u64(&mut buf, ctx.scan().chains() as u64);
    put_u64(&mut buf, ctx.scan().depth() as u64);

    // LFSR: kind + characteristic polynomial (exponents of its terms)
    put_u8(&mut buf, kind_to_u8(ctx.lfsr().kind()));
    let exponents = ctx.lfsr().poly().exponents();
    put_u64(&mut buf, exponents.len() as u64);
    for e in exponents {
        put_u64(&mut buf, e as u64);
    }

    // phase shifter rows (chains x lfsr_size)
    let rows = ctx.shifter().rows();
    put_u64(&mut buf, rows.row_count() as u64);
    put_u64(&mut buf, rows.col_count() as u64);
    for row in rows.iter_rows() {
        put_planes(&mut buf, row);
    }

    // filtered test set (geometry = scan geometry above)
    put_u64(&mut buf, artifact.set.len() as u64);
    for cube in artifact.set.iter() {
        put_planes(&mut buf, cube.care());
        put_planes(&mut buf, cube.values());
    }
    put_u64(&mut buf, artifact.dropped);

    // encoding
    put_u64(&mut buf, artifact.encoding.window as u64);
    put_u64(&mut buf, artifact.encoding.lfsr_size as u64);
    put_u64(&mut buf, artifact.encoding.encoded_cubes as u64);
    put_u64(&mut buf, artifact.encoding.seeds.len() as u64);
    for seed in &artifact.encoding.seeds {
        put_bits(&mut buf, &seed.seed);
        put_u64(&mut buf, seed.placements.len() as u64);
        for placement in &seed.placements {
            put_u64(&mut buf, placement.cube as u64);
            put_u64(&mut buf, placement.position as u64);
        }
    }
    buf
}

fn decode_payload(payload: &[u8], threads: Option<usize>) -> Result<(Artifact, u64), StoreError> {
    let mut r = Reader::new(payload);

    // engine configuration
    let window = r.dim(MAX_WINDOW, "window")?;
    let segment = r.dim(MAX_WINDOW, "segment")?;
    let speedup = r.u64()?;
    let lfsr_size = match r.u8()? {
        0 => None,
        1 => Some(r.dim(MAX_DIM, "lfsr_size")?),
        _ => return Err(StoreError::BadField("lfsr_size_present")),
    };
    let lfsr_kind = kind_from_u8(r.u8()?)?;
    let ps_taps = r.dim(MAX_DIM, "ps_taps")?;
    let hw_seed = r.u64()?;
    let fill_seed = r.u64()?;
    // EngineConfig is #[non_exhaustive]; build from Default and fill
    // every serialized knob (a knob added later keeps its default and
    // bumps FORMAT_VERSION when it starts affecting results)
    let mut config = EngineConfig::default();
    config.window = window;
    config.segment = segment;
    config.speedup = speedup;
    config.lfsr_size = lfsr_size;
    config.lfsr_kind = lfsr_kind;
    config.ps_taps = ps_taps;
    config.hw_seed = hw_seed;
    config.fill_seed = fill_seed;
    config.threads = threads;

    // scan geometry
    let chains = r.dim(MAX_DIM, "chains")?;
    let depth = r.dim(MAX_DIM, "depth")?;
    let scan = ScanConfig::new(chains, depth).map_err(|e| StoreError::Invalid(e.to_string()))?;
    let cells = scan.cells();
    if cells as u64 > MAX_BITS {
        return Err(StoreError::BadField("scan cells"));
    }

    // LFSR
    let built_kind = kind_from_u8(r.u8()?)?;
    let term_count = r.dim(MAX_DIM, "poly terms")?;
    let mut exponents = Vec::with_capacity(term_count.min(1024));
    for _ in 0..term_count {
        exponents.push(r.dim(MAX_DIM, "poly exponent")?);
    }
    let poly = Gf2Poly::from_exponents(&exponents);
    let lfsr = Lfsr::try_new(poly, built_kind).map_err(|e| StoreError::Invalid(e.to_string()))?;

    // phase shifter
    let ps_rows = r.dim(MAX_DIM, "shifter rows")?;
    let ps_cols = r.dim(MAX_DIM, "shifter cols")?;
    let mut rows = Vec::new();
    for _ in 0..ps_rows {
        rows.push(r.planes(ps_cols)?);
    }
    let shifter = PhaseShifter::from_rows(BitMatrix::from_rows(rows));

    // test set
    let cube_count = r.dim(MAX_DIM, "cube count")?;
    let mut set = TestSet::new(scan);
    for _ in 0..cube_count {
        let care = r.planes(cells)?;
        let values = r.planes(cells)?;
        if !values.is_subset_of(&care) {
            return Err(StoreError::BadField("cube planes"));
        }
        set.push(TestCube::from_planes(care, values))
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
    }
    let dropped = r.u64()?;

    // encoding
    let enc_window = r.dim(MAX_WINDOW, "encoding window")?;
    let enc_lfsr_size = r.dim(MAX_DIM, "encoding lfsr_size")?;
    let encoded_cubes = r.dim(MAX_DIM, "encoded cubes")?;
    let seed_count = r.dim(MAX_DIM, "seed count")?;
    let mut seeds = Vec::new();
    for _ in 0..seed_count {
        let seed = r.bits(MAX_BITS, "seed bits")?;
        let placement_count = r.dim(MAX_DIM, "placement count")?;
        let mut placements = Vec::new();
        for _ in 0..placement_count {
            placements.push(Placement {
                cube: r.dim(MAX_DIM, "placement cube")?,
                position: r.dim(MAX_DIM, "placement position")?,
            });
        }
        seeds.push(EncodedSeed { seed, placements });
    }
    let encoding = EncodingResult {
        seeds,
        window: enc_window,
        lfsr_size: enc_lfsr_size,
        encoded_cubes,
    };
    r.finish()?;

    // reassemble: the expensive ExprTable is rebuilt deterministically
    // from the parts (ss_core validates their agreement)
    let ctx = HardwareCtx::from_parts(config, scan, lfsr, shifter)
        .map_err(|e| StoreError::Invalid(e.to_string()))?;
    if encoding.lfsr_size != ctx.lfsr_size() {
        return Err(StoreError::Invalid(format!(
            "encoding is for a {}-bit LFSR but the context has {} bits",
            encoding.lfsr_size,
            ctx.lfsr_size()
        )));
    }
    if encoding.window != window {
        return Err(StoreError::Invalid(format!(
            "encoding used window {} but the configuration says {window}",
            encoding.window
        )));
    }
    if encoding.encoded_cubes != set.len() {
        return Err(StoreError::Invalid(format!(
            "encoding covers {} cubes but the stored set has {}",
            encoding.encoded_cubes,
            set.len()
        )));
    }
    Ok((
        Artifact {
            ctx,
            set,
            dropped,
            encoding,
            report_digest: 0, // envelope field, patched by the caller
        },
        0,
    ))
}

impl Artifact {
    /// Serialises the artifact into a self-verifying envelope keyed by
    /// `key` (the content-addressed cache key the store files it
    /// under).
    pub fn to_bytes(&self, key: u64) -> Vec<u8> {
        let payload = encode_payload(self);
        let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len() + CHECKSUM_BYTES);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_be_bytes());
        buf.extend_from_slice(&key.to_be_bytes());
        buf.extend_from_slice(&self.report_digest.to_be_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_be_bytes());
        buf.extend_from_slice(&payload);
        let mut h = Fnv64::new();
        h.write(&buf);
        buf.extend_from_slice(&h.finish().to_be_bytes());
        buf
    }

    /// Decodes and fully validates an artifact file loaded under
    /// `key`. `threads` becomes the rehydrated context's worker-thread
    /// budget (a runtime policy — deliberately not part of the stored
    /// content; results are bit-identical at every thread count).
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] for every way the bytes can be wrong:
    /// bad magic, foreign format version, truncation, checksum
    /// mismatch, key mismatch, out-of-domain fields, or parts that
    /// fail semantic validation when reassembled. Never panics.
    pub fn from_bytes(bytes: &[u8], key: u64, threads: Option<usize>) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES {
            return Err(StoreError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_be_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::Version(version));
        }
        let found_key = u64::from_be_bytes(bytes[12..20].try_into().unwrap());
        if found_key != key {
            return Err(StoreError::KeyMismatch {
                expected: key,
                found: found_key,
            });
        }
        let report_digest = u64::from_be_bytes(bytes[20..28].try_into().unwrap());
        let payload_len = u64::from_be_bytes(bytes[28..36].try_into().unwrap());
        if payload_len > MAX_ARTIFACT_BYTES {
            return Err(StoreError::BadField("payload length"));
        }
        let payload_len = payload_len as usize;
        let declared = HEADER_BYTES + payload_len + CHECKSUM_BYTES;
        if bytes.len() < declared {
            return Err(StoreError::Truncated);
        }
        if bytes.len() > declared {
            return Err(StoreError::BadField("trailing file bytes"));
        }
        // integrity first: nothing past this line sees flipped bits
        let stored = u64::from_be_bytes(bytes[declared - CHECKSUM_BYTES..].try_into().unwrap());
        let mut h = Fnv64::new();
        h.write(&bytes[..declared - CHECKSUM_BYTES]);
        let computed = h.finish();
        if computed != stored {
            return Err(StoreError::Checksum { computed, stored });
        }
        let payload = &bytes[HEADER_BYTES..HEADER_BYTES + payload_len];
        let (mut artifact, _) = decode_payload(payload, threads)?;
        artifact.report_digest = report_digest;
        Ok(artifact)
    }
}
