//! Property-based tests for the artifact format: the integrity
//! contract under adversarial bytes.
//!
//! The envelope promises two things — a round trip is bit-identical,
//! and *no* sequence of bytes can make the loader panic or hand back
//! an artifact that fails an integrity check. The properties here
//! attack both: exhaustive truncation, every single-bit flip, spliced
//! random payloads under a *valid* checksum (so the payload reader
//! itself faces arbitrary input, not just the checksum gate), and
//! fully random files.

#![cfg(test)]

use std::sync::OnceLock;

use proptest::prelude::*;

use ss_core::{Encoded, Engine};
use ss_testdata::{generate_test_set, CubeProfile};

use crate::{report_digest, Artifact, ArtifactStore, Fnv64, StoreError, FORMAT_VERSION, MAGIC};

const KEY: u64 = 0xab54_a98c_eb1f_0ad2;

/// One real artifact, built once: synthesis + encode are the expensive
/// stages, and every property below only needs the same canonical
/// bytes.
fn artifact() -> &'static Artifact {
    static ARTIFACT: OnceLock<Artifact> = OnceLock::new();
    ARTIFACT.get_or_init(|| artifact_for(1))
}

fn artifact_for(seed: u64) -> Artifact {
    let set = generate_test_set(&CubeProfile::mini(), seed);
    let engine = Engine::builder()
        .window(16)
        .segment(4)
        .speedup(4)
        .build()
        .unwrap();
    let ctx = engine.synthesize(&set).unwrap();
    let (encodable, dropped) = ctx.encodable_subset(&set);
    let encoding = Encoded::from_ctx_ref(&encodable, &ctx)
        .unwrap()
        .encoding()
        .clone();
    let mut config = *engine.config();
    config.lfsr_size = Some(ctx.lfsr_size());
    let report = Engine::from_config(config)
        .unwrap()
        .run(&encodable)
        .unwrap();
    Artifact {
        report_digest: report_digest(&report),
        ctx,
        set: encodable,
        dropped: dropped.len() as u64,
        encoding,
    }
}

fn canonical_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| artifact().to_bytes(KEY))
}

/// Wraps an arbitrary payload in a *valid* envelope — right magic,
/// version, key, length and checksum — so decoding exercises the
/// payload reader against adversarial bytes instead of stopping at the
/// checksum gate.
fn envelope(key: u64, digest: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_be_bytes());
    buf.extend_from_slice(&key.to_be_bytes());
    buf.extend_from_slice(&digest.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    buf.extend_from_slice(payload);
    let mut h = Fnv64::new();
    h.write(&buf);
    buf.extend_from_slice(&h.finish().to_be_bytes());
    buf
}

#[test]
fn round_trip_is_bit_identical() {
    for seed in 1..=3 {
        let original = artifact_for(seed);
        let key = KEY ^ seed;
        let bytes = original.to_bytes(key);
        let loaded = Artifact::from_bytes(&bytes, key, None).unwrap();
        assert_eq!(loaded.report_digest, original.report_digest);
        assert_eq!(loaded.dropped, original.dropped);
        assert_eq!(loaded.encoding, original.encoding);
        assert_eq!(
            loaded.to_bytes(key),
            bytes,
            "decode(encode(x)) must re-encode to the same bytes (seed {seed})"
        );
    }
}

#[test]
fn every_truncation_is_rejected_without_panicking() {
    let bytes = canonical_bytes();
    for len in 0..bytes.len() {
        let err = Artifact::from_bytes(&bytes[..len], KEY, None)
            .expect_err("every proper prefix must be rejected");
        // short prefixes fail structurally; anything past the header
        // fails the declared-length check before the checksum is even
        // computed
        match err {
            StoreError::Truncated | StoreError::BadMagic | StoreError::Version(_) => {}
            other => panic!("truncation to {len} bytes surfaced as {other:?}"),
        }
    }
}

/// The adversarial table: each structurally-wrong envelope maps to its
/// typed rejection.
#[test]
fn malformed_envelopes_map_to_typed_errors() {
    let bytes = canonical_bytes();

    let mut wrong_magic = bytes.to_vec();
    wrong_magic[0] ^= 0xff;
    assert!(matches!(
        Artifact::from_bytes(&wrong_magic, KEY, None),
        Err(StoreError::BadMagic)
    ));

    let mut future_version = bytes.to_vec();
    future_version[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_be_bytes());
    assert!(matches!(
        Artifact::from_bytes(&future_version, KEY, None),
        Err(StoreError::Version(v)) if v == FORMAT_VERSION + 1
    ));

    assert!(matches!(
        Artifact::from_bytes(bytes, KEY ^ 1, None),
        Err(StoreError::KeyMismatch { expected, found })
            if expected == KEY ^ 1 && found == KEY
    ));

    let mut trailing = bytes.to_vec();
    trailing.push(0);
    assert!(matches!(
        Artifact::from_bytes(&trailing, KEY, None),
        Err(StoreError::BadField(_))
    ));

    let mut huge_len = bytes.to_vec();
    huge_len[28..36].copy_from_slice(&u64::MAX.to_be_bytes());
    assert!(matches!(
        Artifact::from_bytes(&huge_len, KEY, None),
        Err(StoreError::BadField(_))
    ));

    let mut flipped_checksum = bytes.to_vec();
    let last = flipped_checksum.len() - 1;
    flipped_checksum[last] ^= 1;
    assert!(matches!(
        Artifact::from_bytes(&flipped_checksum, KEY, None),
        Err(StoreError::Checksum { .. })
    ));
}

#[test]
fn store_round_trips_and_rejects_corrupt_files() {
    let dir =
        std::env::temp_dir().join(format!("ss-store-proptest-{}-{KEY:x}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ArtifactStore::open(&dir).unwrap();

    assert!(
        store.get(KEY, None).unwrap().is_none(),
        "empty store misses"
    );
    let written = store.put(KEY, artifact()).unwrap();
    assert_eq!(written, canonical_bytes().len() as u64);
    assert_eq!(store.keys().unwrap(), vec![(KEY, written)]);
    let occupancy = store.occupancy().unwrap();
    assert_eq!((occupancy.artifacts, occupancy.bytes), (1, written));
    let loaded = store.get(KEY, None).unwrap().expect("present");
    assert_eq!(loaded.report_digest, artifact().report_digest);

    // flip one byte on disk: the load is an error, not a wrong answer
    let path = store.path_for(KEY);
    let mut on_disk = std::fs::read(&path).unwrap();
    let mid = on_disk.len() / 2;
    on_disk[mid] ^= 0x10;
    std::fs::write(&path, &on_disk).unwrap();
    assert!(store.get(KEY, None).is_err(), "corruption must surface");

    store.remove(KEY).unwrap();
    assert!(store.get(KEY, None).unwrap().is_none());
    store.remove(KEY).unwrap(); // double remove is fine
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FNV-1a folds each byte through a bijection of the running hash,
    /// so any single-bit flip anywhere in the file — header, payload,
    /// digest or the checksum itself — must be rejected.
    #[test]
    fn any_single_bit_flip_is_rejected(bit in 0..canonical_bytes().len() * 8) {
        let mut bytes = canonical_bytes().to_vec();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(Artifact::from_bytes(&bytes, KEY, None).is_err());
    }

    /// Arbitrary bytes are never an artifact and never a panic.
    #[test]
    fn random_files_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert!(Artifact::from_bytes(&bytes, KEY, None).is_err());
    }

    /// Arbitrary *payloads* under a valid checksum drive the payload
    /// reader itself on adversarial input: every length field, enum
    /// discriminant and cross-check must reject gracefully.
    #[test]
    fn random_payloads_under_valid_checksums_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        digest in any::<u64>(),
    ) {
        let bytes = envelope(KEY, digest, &payload);
        prop_assert!(Artifact::from_bytes(&bytes, KEY, None).is_err());
    }

    /// Splicing a chunk of a *valid* payload with noise (then fixing
    /// the checksum) probes the deep validators — plane subsets,
    /// shifter/LFSR agreement, encoding cross-checks — not just the
    /// leading config fields.
    #[test]
    fn spliced_payloads_never_panic(
        at in 0usize..4096,
        noise in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let valid = canonical_bytes();
        let header = 36;
        let payload_len = valid.len() - header - 8;
        let mut payload = valid[header..header + payload_len].to_vec();
        let at = at % payload.len();
        let end = (at + noise.len()).min(payload.len());
        payload[at..end].copy_from_slice(&noise[..end - at]);
        let bytes = envelope(KEY, artifact().report_digest, &payload);
        // the splice may happen to reproduce the original payload
        // (noise == what was there); anything else must reject — and
        // nothing may panic
        let _ = Artifact::from_bytes(&bytes, KEY, None);
    }
}
