//! Composable streaming codec stack for the v3 wire protocol.
//!
//! Protocol v2 moves every message as one all-or-nothing frame capped
//! at [`MAX_FRAME_BYTES`], so a workload
//! larger than 64 MiB cannot flow at all and a single flipped bit
//! anywhere in the stream kills the whole transfer undetected until
//! the payload parser trips. Protocol v3 keeps the outer frame grammar
//! but layers a negotiated *codec chain* on top, in the style of
//! composable `ContentEncoding` stages: each [`Stage`] maps a list of
//! packets to a list of packets, the chain is applied left to right on
//! encode and right to left on decode.
//!
//! The negotiated chain is `[compress?] → chunk → crc32`:
//!
//! * **compress** — optional std-only LZSS ([`compress`]): cube
//!   payloads are sparse `01X` text and shrink severalfold.
//! * **chunk** — splits a message into bounded sub-frames so payloads
//!   far past the per-frame cap stream through; the reassembled
//!   message is bounded by [`MAX_MESSAGE_BYTES`].
//! * **crc32** — a per-chunk CRC-32 trailer ([`crc32`]); any
//!   single-bit corruption of a chunk is detected at the first
//!   possible moment and surfaces as a typed [`CodecError`], never a
//!   panic and never a silently wrong payload.
//!
//! # Chunk frame grammar
//!
//! Every frame carried for a codec-framed peer is one chunk:
//!
//! ```text
//! chunk   := seq u32 BE        ; 0-based position in the message
//!            total u32 BE      ; chunks in the message, >= 1
//!            flags u8          ; bit 0: message body is compressed
//!            body byte*        ; <= negotiated chunk_bytes
//!            crc32 u32 BE      ; CRC-32 over seq..body inclusive
//! ```
//!
//! The stage list is agreed during the `Hello`/`HelloAck` exchange
//! (which travels as plain v2-style frames, since no codec exists
//! yet); a v2 peer never sends `Hello` and keeps speaking plain
//! single-frame messages unchanged — see [`Transport`].

use std::fmt;
use std::io::{Read, Write};

use crate::protocol::{read_frame, write_frame, MAX_FRAME_BYTES};

mod compress;
mod crc32;

pub use compress::{compress, decompress};
pub use crc32::crc32;

/// Ceiling on a reassembled message, the multi-chunk analogue of
/// [`MAX_FRAME_BYTES`]: guards the receiver
/// against unbounded allocation from a hostile or corrupt chunk
/// stream.
pub const MAX_MESSAGE_BYTES: u64 = 1 << 30;

/// Default chunk body size a client offers at `Hello` time.
pub const DEFAULT_CHUNK_BYTES: u32 = 256 * 1024;

/// Smallest negotiable chunk body size (tiny chunks are only useful to
/// tests that want many frames from small payloads).
pub const MIN_CHUNK_BYTES: u32 = 64;

/// Largest negotiable chunk body size; comfortably under the frame
/// cap even with the chunk header and trailer attached.
pub const MAX_CHUNK_BYTES: u32 = 4 * 1024 * 1024;

/// Bytes of chunk header preceding the body (`seq` + `total` +
/// `flags`).
pub const CHUNK_HEADER_BYTES: usize = 9;

/// Bytes of chunk trailer following the body (the CRC-32).
pub const CHUNK_TRAILER_BYTES: usize = 4;

/// Chunk flag bit 0: the (reassembled) message body is LZSS
/// compressed.
pub const FLAG_COMPRESSED: u8 = 0b0000_0001;

/// Typed failure anywhere in the codec chain.
///
/// Every variant is a *graceful rejection*: adversarial bytes — bit
/// flips, truncations, lying length fields, reordered or missing
/// chunks — map here, never to a panic and never to a corrupted
/// payload handed to the caller.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// The underlying stream failed (includes `UnexpectedEof` when the
    /// peer vanished mid-chunk).
    Io(std::io::Error),
    /// A chunk's CRC-32 trailer disagrees with its contents.
    Crc {
        /// `seq` field of the offending chunk (as transmitted).
        seq: u32,
        /// Checksum recomputed over the received bytes.
        expected: u32,
        /// Checksum carried in the trailer.
        found: u32,
    },
    /// A chunk arrived out of sequence.
    OutOfOrder {
        /// The `seq` the receiver was waiting for.
        expected: u32,
        /// The `seq` that arrived.
        found: u32,
    },
    /// A chunk's `total` field disagrees with the message's first
    /// chunk (or with the number of chunks actually presented).
    TotalMismatch {
        /// `total` pinned by the first chunk.
        expected: u32,
        /// Conflicting value.
        found: u32,
    },
    /// A (declared or reassembled) message exceeds its cap.
    Oversize {
        /// Size the stream declared or accumulated.
        bytes: u64,
        /// The cap it broke.
        cap: u64,
    },
    /// A chunk is structurally malformed (too short for its header,
    /// unknown flag bits, zero `total`, flags disagreeing with the
    /// negotiated chain, ...).
    BadChunk(&'static str),
    /// The compressed body is malformed.
    Compression(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(err) => write!(f, "stream error: {err}"),
            CodecError::Crc {
                seq,
                expected,
                found,
            } => write!(
                f,
                "chunk {seq} failed its CRC-32 check (computed {expected:#010x}, carried {found:#010x})"
            ),
            CodecError::OutOfOrder { expected, found } => {
                write!(f, "chunk arrived out of order (expected seq {expected}, got {found})")
            }
            CodecError::TotalMismatch { expected, found } => {
                write!(f, "chunk total disagrees (first chunk said {expected}, got {found})")
            }
            CodecError::Oversize { bytes, cap } => {
                write!(f, "message of {bytes} bytes exceeds the {cap}-byte cap")
            }
            CodecError::BadChunk(what) => write!(f, "malformed chunk: {what}"),
            CodecError::Compression(what) => write!(f, "malformed compressed body: {what}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(err: std::io::Error) -> Self {
        CodecError::Io(err)
    }
}

impl CodecError {
    /// Whether this failure means payload corruption was *detected*
    /// (as opposed to a plain transport failure) — what the server's
    /// `crc_rejects` counter counts.
    pub fn is_integrity(&self) -> bool {
        matches!(self, CodecError::Crc { .. })
    }
}

// -------------------------------------------------------------- stages

/// One layer of the codec chain: a reversible mapping over packet
/// lists.
///
/// `decode(encode(p)) == p` for any packet list a stage's own `encode`
/// produced; for arbitrary adversarial packets, `decode` returns a
/// typed [`CodecError`] — it never panics.
pub trait Stage {
    /// Stage name as it appears in negotiation and diagnostics.
    fn name(&self) -> &'static str;
    /// Forward direction (sender side).
    fn encode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError>;
    /// Reverse direction (receiver side).
    fn decode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError>;
}

/// Transparent LZSS compression of each packet.
pub struct CompressStage;

impl Stage for CompressStage {
    fn name(&self) -> &'static str {
        "lzss"
    }

    fn encode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError> {
        Ok(packets.iter().map(|p| compress(p)).collect())
    }

    fn decode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError> {
        packets
            .iter()
            .map(|p| decompress(p, MAX_MESSAGE_BYTES))
            .collect()
    }
}

/// Splits each packet into header-framed chunks of at most
/// `chunk_bytes` body bytes; reassembles and cross-checks on decode.
pub struct ChunkStage {
    /// Negotiated body size per chunk.
    pub chunk_bytes: u32,
    /// Flag byte stamped on (and required of) every chunk.
    pub flags: u8,
}

impl ChunkStage {
    fn header(seq: u32, total: u32, flags: u8) -> [u8; CHUNK_HEADER_BYTES] {
        let mut h = [0u8; CHUNK_HEADER_BYTES];
        h[0..4].copy_from_slice(&seq.to_be_bytes());
        h[4..8].copy_from_slice(&total.to_be_bytes());
        h[8] = flags;
        h
    }
}

/// Parsed view of one chunk packet (header fields + body slice).
struct Chunk<'a> {
    seq: u32,
    total: u32,
    flags: u8,
    body: &'a [u8],
}

impl<'a> Chunk<'a> {
    /// Splits a header-framed packet (no CRC trailer) into fields.
    fn parse(packet: &'a [u8]) -> Result<Self, CodecError> {
        if packet.len() < CHUNK_HEADER_BYTES {
            return Err(CodecError::BadChunk("shorter than its header"));
        }
        let seq = u32::from_be_bytes(packet[0..4].try_into().expect("4-byte slice"));
        let total = u32::from_be_bytes(packet[4..8].try_into().expect("4-byte slice"));
        let flags = packet[8];
        if flags & !FLAG_COMPRESSED != 0 {
            return Err(CodecError::BadChunk("unknown flag bits"));
        }
        if total == 0 {
            return Err(CodecError::BadChunk("zero chunk total"));
        }
        Ok(Chunk {
            seq,
            total,
            flags,
            body: &packet[CHUNK_HEADER_BYTES..],
        })
    }
}

impl Stage for ChunkStage {
    fn name(&self) -> &'static str {
        "chunk"
    }

    fn encode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError> {
        let chunk = self.chunk_bytes.max(1) as usize;
        let mut out = Vec::new();
        for packet in &packets {
            if packet.len() as u64 > MAX_MESSAGE_BYTES {
                return Err(CodecError::Oversize {
                    bytes: packet.len() as u64,
                    cap: MAX_MESSAGE_BYTES,
                });
            }
            let total = packet.len().div_ceil(chunk).max(1) as u32;
            if packet.is_empty() {
                // an empty packet still travels as one empty-bodied chunk
                out.push(Self::header(0, 1, self.flags).to_vec());
                continue;
            }
            for (seq, body) in packet.chunks(chunk).enumerate() {
                let mut framed = Vec::with_capacity(CHUNK_HEADER_BYTES + body.len());
                framed.extend_from_slice(&Self::header(seq as u32, total, self.flags));
                framed.extend_from_slice(body);
                out.push(framed);
            }
        }
        Ok(out)
    }

    fn decode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError> {
        let mut message = Vec::new();
        let mut expected_total: Option<u32> = None;
        for (at, packet) in packets.iter().enumerate() {
            let chunk = Chunk::parse(packet)?;
            if chunk.flags != self.flags {
                return Err(CodecError::BadChunk("flags disagree with negotiation"));
            }
            let total = *expected_total.get_or_insert(chunk.total);
            if chunk.total != total {
                return Err(CodecError::TotalMismatch {
                    expected: total,
                    found: chunk.total,
                });
            }
            if chunk.seq != at as u32 {
                return Err(CodecError::OutOfOrder {
                    expected: at as u32,
                    found: chunk.seq,
                });
            }
            if message.len() as u64 + chunk.body.len() as u64 > MAX_MESSAGE_BYTES {
                return Err(CodecError::Oversize {
                    bytes: message.len() as u64 + chunk.body.len() as u64,
                    cap: MAX_MESSAGE_BYTES,
                });
            }
            message.extend_from_slice(chunk.body);
        }
        let total = expected_total.ok_or(CodecError::BadChunk("empty chunk list"))?;
        if total as usize != packets.len() {
            return Err(CodecError::TotalMismatch {
                expected: total,
                found: packets.len() as u32,
            });
        }
        Ok(vec![message])
    }
}

/// Appends (encode) / verifies and strips (decode) a CRC-32 trailer on
/// each packet.
pub struct Crc32Stage;

impl Crc32Stage {
    /// Verifies a packet's trailer and returns the covered bytes.
    fn check(packet: &[u8]) -> Result<&[u8], CodecError> {
        if packet.len() < CHUNK_TRAILER_BYTES {
            return Err(CodecError::BadChunk("shorter than its checksum"));
        }
        let (covered, trailer) = packet.split_at(packet.len() - CHUNK_TRAILER_BYTES);
        let found = u32::from_be_bytes(trailer.try_into().expect("4-byte slice"));
        let expected = crc32(covered);
        if expected != found {
            // best-effort seq for diagnostics: the covered bytes open
            // with the chunk header when the chain is [chunk, crc32]
            let seq = covered
                .get(0..4)
                .map(|b| u32::from_be_bytes(b.try_into().expect("4-byte slice")))
                .unwrap_or(0);
            return Err(CodecError::Crc {
                seq,
                expected,
                found,
            });
        }
        Ok(covered)
    }
}

impl Stage for Crc32Stage {
    fn name(&self) -> &'static str {
        "crc32"
    }

    fn encode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError> {
        Ok(packets
            .into_iter()
            .map(|mut p| {
                let crc = crc32(&p);
                p.extend_from_slice(&crc.to_be_bytes());
                p
            })
            .collect())
    }

    fn decode(&self, packets: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError> {
        packets
            .iter()
            .map(|p| Self::check(p).map(<[u8]>::to_vec))
            .collect()
    }
}

// --------------------------------------------------------- negotiation

/// The codec parameters agreed during the `Hello`/`HelloAck`
/// exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Whether message bodies are LZSS-compressed before chunking.
    pub compress: bool,
    /// Chunk body size in bytes.
    pub chunk_bytes: u32,
}

impl Default for CodecConfig {
    fn default() -> Self {
        Self::preferred()
    }
}

impl CodecConfig {
    /// The configuration a client offers by default.
    pub fn preferred() -> Self {
        CodecConfig {
            compress: true,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }

    /// Server-side negotiation: accept the peer's offer with
    /// `chunk_bytes` clamped into `[MIN_CHUNK_BYTES, MAX_CHUNK_BYTES]`.
    /// Both sides then speak the returned configuration.
    pub fn negotiate(offer: CodecConfig) -> CodecConfig {
        CodecConfig {
            compress: offer.compress,
            chunk_bytes: offer.chunk_bytes.clamp(MIN_CHUNK_BYTES, MAX_CHUNK_BYTES),
        }
    }
}

// --------------------------------------------------------------- codec

/// Per-message transfer accounting, summed into the server's codec
/// counters and shown by `state-skip stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Chunk frames moved.
    pub frames: u64,
    /// Message bytes before the codec chain (what the caller sees).
    pub raw_bytes: u64,
    /// Bytes after the chain (compressed + chunk overhead + CRC), as
    /// carried in frame payloads on the wire.
    pub wire_bytes: u64,
}

/// A negotiated codec chain bound to one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codec {
    config: CodecConfig,
}

impl Codec {
    /// Builds the codec for an agreed configuration.
    pub fn new(config: CodecConfig) -> Self {
        Codec { config }
    }

    /// The agreed configuration.
    pub fn config(&self) -> CodecConfig {
        self.config
    }

    fn flags(&self) -> u8 {
        if self.config.compress {
            FLAG_COMPRESSED
        } else {
            0
        }
    }

    /// The stage chain in encode order.
    pub fn stages(&self) -> Vec<Box<dyn Stage>> {
        let mut stages: Vec<Box<dyn Stage>> = Vec::with_capacity(3);
        if self.config.compress {
            stages.push(Box::new(CompressStage));
        }
        stages.push(Box::new(ChunkStage {
            chunk_bytes: self.config.chunk_bytes,
            flags: self.flags(),
        }));
        stages.push(Box::new(Crc32Stage));
        stages
    }

    /// Runs a message through the chain, producing the frame payloads
    /// to put on the wire (each within the per-frame cap).
    ///
    /// # Errors
    ///
    /// [`CodecError::Oversize`] when the message exceeds
    /// [`MAX_MESSAGE_BYTES`].
    pub fn encode_frames(&self, message: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
        let mut packets = vec![message.to_vec()];
        for stage in self.stages() {
            packets = stage.encode(packets)?;
        }
        Ok(packets)
    }

    /// Runs received frame payloads back through the chain, yielding
    /// the reassembled message.
    ///
    /// # Errors
    ///
    /// A typed [`CodecError`] for any corruption: CRC mismatch,
    /// reordered or missing chunks, lying totals, malformed
    /// compression. Never panics on adversarial input.
    pub fn decode_frames(&self, frames: Vec<Vec<u8>>) -> Result<Vec<u8>, CodecError> {
        let mut packets = frames;
        for stage in self.stages().iter().rev() {
            packets = stage.decode(packets)?;
        }
        match packets.len() {
            1 => Ok(packets.pop().expect("length checked")),
            _ => Err(CodecError::BadChunk("chain did not yield one message")),
        }
    }

    /// Encodes and writes one message as a chunk-frame sequence.
    ///
    /// # Errors
    ///
    /// [`CodecError::Io`] for stream failures, [`CodecError::Oversize`]
    /// for messages past [`MAX_MESSAGE_BYTES`].
    pub fn write_message<W: Write>(
        &self,
        stream: &mut W,
        message: &[u8],
    ) -> Result<WireStats, CodecError> {
        let frames = self.encode_frames(message)?;
        let mut stats = WireStats {
            frames: frames.len() as u64,
            raw_bytes: message.len() as u64,
            wire_bytes: 0,
        };
        for frame in &frames {
            stats.wire_bytes += frame.len() as u64;
            write_frame(stream, frame)?;
        }
        Ok(stats)
    }

    /// Reads one chunk-frame sequence and decodes it back to the
    /// message.
    ///
    /// The first chunk's header pins `total`; frames are read until
    /// the message is complete, with each chunk's CRC verified as it
    /// arrives so corruption is rejected at the earliest possible
    /// moment instead of after buffering the rest of the stream.
    ///
    /// # Errors
    ///
    /// A typed [`CodecError`]; `Io(UnexpectedEof)` when the peer
    /// disconnected mid-message.
    pub fn read_message<R: Read>(
        &self,
        stream: &mut R,
    ) -> Result<(Vec<u8>, WireStats), CodecError> {
        let mut frames = Vec::new();
        let mut stats = WireStats::default();
        let mut body_bytes = 0u64;
        let total = loop {
            let frame = read_frame(stream)?;
            stats.frames += 1;
            stats.wire_bytes += frame.len() as u64;
            // early per-chunk validation: CRC first (a lying header
            // under a bad checksum is corruption, not structure), then
            // enough header sanity to know when the message ends
            let covered = Crc32Stage::check(&frame)?;
            let chunk = Chunk::parse(covered)?;
            if chunk.seq != frames.len() as u32 {
                return Err(CodecError::OutOfOrder {
                    expected: frames.len() as u32,
                    found: chunk.seq,
                });
            }
            let max_total = (MAX_MESSAGE_BYTES / u64::from(MIN_CHUNK_BYTES)) as u32;
            if chunk.total > max_total {
                return Err(CodecError::BadChunk("chunk total out of range"));
            }
            body_bytes += chunk.body.len() as u64;
            if body_bytes > MAX_MESSAGE_BYTES {
                return Err(CodecError::Oversize {
                    bytes: body_bytes,
                    cap: MAX_MESSAGE_BYTES,
                });
            }
            let total = chunk.total;
            frames.push(frame);
            if frames.len() as u32 >= total {
                break total;
            }
        };
        debug_assert_eq!(frames.len() as u32, total);
        let message = self.decode_frames(frames)?;
        stats.raw_bytes = message.len() as u64;
        Ok((message, stats))
    }
}

// ----------------------------------------------------------- transport

/// How messages travel on one connection: the plain v2 single-frame
/// scheme, or the negotiated v3 codec chain.
///
/// Both the client and the server speak through this type after the
/// (possibly absent) `Hello` exchange, so the rest of the code is
/// oblivious to which generation the peer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Protocol ≤ 2: one message, one frame, no codec.
    Legacy,
    /// Protocol 3: messages framed through the negotiated codec.
    Framed(Codec),
}

impl Transport {
    /// Writes one message, accounting the transfer.
    ///
    /// # Errors
    ///
    /// [`CodecError::Io`] for stream failures; oversize messages are
    /// typed rejections in either mode.
    pub fn write_message<W: Write>(
        &self,
        stream: &mut W,
        message: &[u8],
    ) -> Result<WireStats, CodecError> {
        match self {
            Transport::Legacy => {
                write_frame(stream, message)?;
                Ok(WireStats {
                    frames: 1,
                    raw_bytes: message.len() as u64,
                    wire_bytes: message.len() as u64,
                })
            }
            Transport::Framed(codec) => codec.write_message(stream, message),
        }
    }

    /// Reads one message, accounting the transfer.
    ///
    /// # Errors
    ///
    /// A typed [`CodecError`]; in legacy mode only `Io` occurs.
    pub fn read_message<R: Read>(
        &self,
        stream: &mut R,
    ) -> Result<(Vec<u8>, WireStats), CodecError> {
        match self {
            Transport::Legacy => {
                let message = read_frame(stream)?;
                let stats = WireStats {
                    frames: 1,
                    raw_bytes: message.len() as u64,
                    wire_bytes: message.len() as u64,
                };
                Ok((message, stats))
            }
            Transport::Framed(codec) => codec.read_message(stream),
        }
    }

    /// Whether this is the negotiated v3 framed mode.
    pub fn is_framed(&self) -> bool {
        matches!(self, Transport::Framed(_))
    }
}

// Compile-time guard: the largest negotiable chunk plus its framing
// always fits one wire frame.
const _: () =
    assert!(MAX_CHUNK_BYTES as usize + CHUNK_HEADER_BYTES + CHUNK_TRAILER_BYTES <= MAX_FRAME_BYTES);

#[cfg(test)]
mod tests {
    use super::*;

    fn codec(compress: bool, chunk_bytes: u32) -> Codec {
        Codec::new(CodecConfig {
            compress,
            chunk_bytes,
        })
    }

    fn payload(len: usize) -> Vec<u8> {
        // mildly structured so compression has something to chew on
        (0..len).map(|i| b"01X10XX0state skip"[i % 18]).collect()
    }

    #[test]
    fn chains_round_trip_across_sizes_and_modes() {
        for compress in [false, true] {
            let c = codec(compress, MIN_CHUNK_BYTES);
            for len in [0, 1, 63, 64, 65, 128, 1000, 10_000] {
                let message = payload(len);
                let frames = c.encode_frames(&message).unwrap();
                assert!(!frames.is_empty());
                for frame in &frames {
                    assert!(
                        frame.len()
                            <= MIN_CHUNK_BYTES as usize + CHUNK_HEADER_BYTES + CHUNK_TRAILER_BYTES
                    );
                }
                if !compress {
                    assert_eq!(
                        frames.len(),
                        len.div_ceil(MIN_CHUNK_BYTES as usize).max(1),
                        "chunk count for {len} raw bytes"
                    );
                }
                assert_eq!(
                    c.decode_frames(frames).unwrap(),
                    message,
                    "round trip (compress={compress}, len={len})"
                );
            }
        }
    }

    #[test]
    fn stream_round_trip_accounts_the_transfer() {
        let c = codec(true, MIN_CHUNK_BYTES);
        let message = payload(5000);
        let mut wire = Vec::new();
        let wrote = c.write_message(&mut wire, &message).unwrap();
        assert_eq!(wrote.raw_bytes, 5000);
        assert!(wrote.frames >= 1);
        assert!(
            wrote.wire_bytes < wrote.raw_bytes,
            "structured text must net-compress even with chunk overhead"
        );
        let mut cursor = &wire[..];
        let (back, read) = c.read_message(&mut cursor).unwrap();
        assert_eq!(back, message);
        assert_eq!(read, wrote);
        assert!(cursor.is_empty(), "reader must consume exactly the message");
    }

    #[test]
    fn legacy_transport_is_a_plain_frame() {
        let message = payload(300);
        let mut wire = Vec::new();
        let wrote = Transport::Legacy
            .write_message(&mut wire, &message)
            .unwrap();
        assert_eq!(wrote.frames, 1);
        assert_eq!(wrote.raw_bytes, wrote.wire_bytes);
        // exactly the v2 frame bytes: length prefix + payload
        let mut expect = (message.len() as u32).to_be_bytes().to_vec();
        expect.extend_from_slice(&message);
        assert_eq!(wire, expect);
        let mut cursor = &wire[..];
        let (back, _) = Transport::Legacy.read_message(&mut cursor).unwrap();
        assert_eq!(back, message);
    }

    #[test]
    fn every_single_bit_flip_in_every_frame_is_rejected() {
        let c = codec(false, MIN_CHUNK_BYTES);
        let message = payload(300);
        let frames = c.encode_frames(&message).unwrap();
        assert!(frames.len() >= 2, "test needs a multi-chunk message");
        for (at, frame) in frames.iter().enumerate() {
            for bit in 0..frame.len() * 8 {
                let mut corrupt = frames.clone();
                corrupt[at][bit / 8] ^= 1 << (bit % 8);
                let err = c
                    .decode_frames(corrupt)
                    .expect_err("flipped bit must be rejected");
                assert!(
                    matches!(err, CodecError::Crc { .. }),
                    "frame {at} bit {bit}: CRC must catch a single-bit flip, got {err}"
                );
            }
        }
        // the compressed chain rejects flips the same way
        let c = codec(true, MIN_CHUNK_BYTES);
        let frames = c.encode_frames(&message).unwrap();
        for bit in 0..frames[0].len() * 8 {
            let mut corrupt = frames.clone();
            corrupt[0][bit / 8] ^= 1 << (bit % 8);
            assert!(
                matches!(c.decode_frames(corrupt), Err(CodecError::Crc { .. })),
                "compressed chain: bit {bit} flip went undetected"
            );
        }
    }

    #[test]
    fn structural_corruption_maps_to_typed_errors() {
        let c = codec(false, MIN_CHUNK_BYTES);
        let message = payload(200); // 4 chunks of <= 64
        let frames = c.encode_frames(&message).unwrap();
        assert_eq!(frames.len(), 4);

        // reordered chunks
        let mut swapped = frames.clone();
        swapped.swap(0, 2);
        assert!(matches!(
            c.decode_frames(swapped),
            Err(CodecError::OutOfOrder {
                expected: 0,
                found: 2
            })
        ));

        // missing tail chunk
        assert!(matches!(
            c.decode_frames(frames[..3].to_vec()),
            Err(CodecError::TotalMismatch {
                expected: 4,
                found: 3
            })
        ));

        // duplicated chunk
        let mut doubled = frames.clone();
        doubled.insert(1, frames[1].clone());
        assert!(matches!(
            c.decode_frames(doubled),
            Err(CodecError::OutOfOrder { .. })
        ));

        // no chunks at all
        assert!(matches!(
            c.decode_frames(Vec::new()),
            Err(CodecError::BadChunk(_))
        ));

        // frame too short to even hold a checksum
        assert!(matches!(
            c.decode_frames(vec![vec![1, 2]]),
            Err(CodecError::BadChunk(_))
        ));

        // flags lying about compression — CRC-valid but against the
        // negotiated chain
        let lying = codec(true, MIN_CHUNK_BYTES)
            .encode_frames(&message)
            .unwrap();
        assert!(matches!(
            c.decode_frames(lying),
            Err(CodecError::BadChunk(_))
        ));
    }

    #[test]
    fn reader_rejects_a_lying_total_before_buffering_the_world() {
        // a CRC-valid first chunk declaring an absurd total
        let c = codec(false, MIN_CHUNK_BYTES);
        let total = (MAX_MESSAGE_BYTES / u64::from(MIN_CHUNK_BYTES)) as u32 + 1;
        let mut chunk = Vec::new();
        chunk.extend_from_slice(&0u32.to_be_bytes());
        chunk.extend_from_slice(&total.to_be_bytes());
        chunk.push(0);
        chunk.extend_from_slice(&[7; 8]);
        let crc = crc32(&chunk);
        chunk.extend_from_slice(&crc.to_be_bytes());
        let mut wire = Vec::new();
        write_frame(&mut wire, &chunk).unwrap();
        let mut cursor = &wire[..];
        assert!(matches!(
            c.read_message(&mut cursor),
            Err(CodecError::BadChunk(_))
        ));
    }

    #[test]
    fn truncated_streams_surface_as_io_eof() {
        let c = codec(false, MIN_CHUNK_BYTES);
        let message = payload(200);
        let mut wire = Vec::new();
        c.write_message(&mut wire, &message).unwrap();
        for cut in [1, 10, 80, wire.len() - 1] {
            let mut cursor = &wire[..cut];
            match c.read_message(&mut cursor) {
                Err(CodecError::Io(err)) => {
                    assert_eq!(
                        err.kind(),
                        std::io::ErrorKind::UnexpectedEof,
                        "cut at {cut}"
                    )
                }
                other => panic!("cut at {cut} surfaced as {other:?}"),
            }
        }
    }

    #[test]
    fn negotiation_clamps_the_offer() {
        let agreed = CodecConfig::negotiate(CodecConfig {
            compress: true,
            chunk_bytes: 1,
        });
        assert_eq!(agreed.chunk_bytes, MIN_CHUNK_BYTES);
        let agreed = CodecConfig::negotiate(CodecConfig {
            compress: false,
            chunk_bytes: u32::MAX,
        });
        assert_eq!(agreed.chunk_bytes, MAX_CHUNK_BYTES);
        assert!(!agreed.compress);
        let offer = CodecConfig::preferred();
        assert_eq!(CodecConfig::negotiate(offer), offer, "defaults self-agree");
    }

    #[test]
    fn stage_names_describe_the_chain() {
        let names: Vec<_> = codec(true, DEFAULT_CHUNK_BYTES)
            .stages()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, ["lzss", "chunk", "crc32"]);
        let names: Vec<_> = codec(false, DEFAULT_CHUNK_BYTES)
            .stages()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, ["chunk", "crc32"]);
    }
}
