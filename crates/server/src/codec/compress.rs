//! Std-only LZSS compression — the optional transparent-compression
//! stage of the v3 wire codec.
//!
//! Cube payloads are sparse `01X` text with long runs and heavily
//! repeated line shapes, so a plain dictionary coder with a small
//! window already shrinks them severalfold; no external crate is
//! needed (the build environment is offline).
//!
//! # Format
//!
//! ```text
//! compressed := raw_len u64 BE, token*
//! token      := control u8, item{1..8}       ; control bit i (LSB first)
//!             ;   0 → item is one literal byte
//!             ;   1 → item is a match: u16 BE = offset:12 len:4
//! match      := offset 1..=4095 back, length (len:4) + 3 .. 18 bytes
//! ```
//!
//! Matches may overlap their own output (the classic LZ run idiom).
//! The decoder is adversarial-input-safe: every read is bounds-checked,
//! a zero offset, an offset past the produced output, or output
//! diverging from `raw_len` is a typed [`CodecError::Compression`] —
//! never a panic, never unbounded allocation (`raw_len` is checked
//! against the caller's cap before any buffer is sized).

use super::CodecError;

/// Sliding-window size; offsets are 12 bits.
const WINDOW: usize = 4095;
/// Minimum match worth encoding (a token costs 2 bytes + control bit).
const MIN_MATCH: usize = 3;
/// Maximum match length (4-bit field + `MIN_MATCH`).
const MAX_MATCH: usize = MIN_MATCH + 15;
/// Hash-chain heads per 3-byte prefix hash.
const HASH_SIZE: usize = 1 << 14;
/// How many chain links the matcher follows before settling.
const MAX_CHAIN: usize = 32;

fn hash3(bytes: &[u8]) -> usize {
    let h = u32::from(bytes[0]) << 16 | u32::from(bytes[1]) << 8 | u32::from(bytes[2]);
    (h.wrapping_mul(2654435761) >> 18) as usize & (HASH_SIZE - 1)
}

/// Compresses `raw` into the LZSS token format.
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    out.extend_from_slice(&(raw.len() as u64).to_be_bytes());

    // hash chains over 3-byte prefixes: head[h] is the most recent
    // position whose prefix hashes to h, prev[p] the one before it
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; raw.len()];
    // chains a position into the index (only positions with a full
    // 3-byte prefix are indexable)
    let insert = |head: &mut [usize], prev: &mut [usize], p: usize| {
        if p + MIN_MATCH <= raw.len() {
            let h = hash3(&raw[p..]);
            prev[p] = head[h];
            head[h] = p;
        }
    };

    let mut at = 0;
    while at < raw.len() {
        let control_at = out.len();
        out.push(0);
        let mut control = 0u8;
        let mut items = 0;
        while items < 8 && at < raw.len() {
            let mut best_len = 0;
            let mut best_off = 0;
            if at + MIN_MATCH <= raw.len() {
                let mut cand = head[hash3(&raw[at..])];
                let mut chain = 0;
                while cand != usize::MAX && chain < MAX_CHAIN {
                    let off = at - cand;
                    if off > WINDOW {
                        break; // older candidates are farther still
                    }
                    let limit = (raw.len() - at).min(MAX_MATCH);
                    let mut len = 0;
                    while len < limit && raw[cand + len] == raw[at + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_off = off;
                        if len == MAX_MATCH {
                            break;
                        }
                    }
                    cand = prev[cand];
                    chain += 1;
                }
            }
            if best_len >= MIN_MATCH {
                control |= 1 << items;
                let token = ((best_off as u16) << 4) | ((best_len - MIN_MATCH) as u16);
                out.extend_from_slice(&token.to_be_bytes());
                // index every covered position so later matches can
                // still reach into this span
                for p in at..at + best_len {
                    insert(&mut head, &mut prev, p);
                }
                at += best_len;
            } else {
                out.push(raw[at]);
                insert(&mut head, &mut prev, at);
                at += 1;
            }
            items += 1;
        }
        out[control_at] = control;
    }
    out
}

/// Decompresses LZSS `bytes`, refusing outputs larger than `cap`.
///
/// # Errors
///
/// [`CodecError::Compression`] for any malformed input: truncated
/// header or token stream, declared length above `cap`, zero offsets,
/// offsets past the produced output, or a token stream that produces
/// more or fewer bytes than the header declared. Never panics.
pub fn decompress(bytes: &[u8], cap: u64) -> Result<Vec<u8>, CodecError> {
    let raw_len = bytes
        .get(..8)
        .ok_or(CodecError::Compression("truncated length header"))?;
    let raw_len = u64::from_be_bytes(raw_len.try_into().expect("8-byte slice"));
    if raw_len > cap {
        return Err(CodecError::Oversize {
            bytes: raw_len,
            cap,
        });
    }
    let raw_len = raw_len as usize;
    let mut out = Vec::with_capacity(raw_len);
    let mut at = 8;
    while out.len() < raw_len {
        let control = *bytes
            .get(at)
            .ok_or(CodecError::Compression("truncated control byte"))?;
        at += 1;
        for item in 0..8 {
            if out.len() == raw_len {
                // trailing control bits after the last byte must be
                // literal-flagged padding with no items behind them
                if control >> item != 0 {
                    return Err(CodecError::Compression("tokens past declared length"));
                }
                break;
            }
            if control & (1 << item) != 0 {
                let token = bytes
                    .get(at..at + 2)
                    .ok_or(CodecError::Compression("truncated match token"))?;
                at += 2;
                let token = u16::from_be_bytes(token.try_into().expect("2-byte slice"));
                let offset = (token >> 4) as usize;
                let len = (token & 0xF) as usize + MIN_MATCH;
                if offset == 0 || offset > out.len() {
                    return Err(CodecError::Compression("match offset out of range"));
                }
                if out.len() + len > raw_len {
                    return Err(CodecError::Compression("match overruns declared length"));
                }
                // may overlap the bytes it is producing — copy forward
                let from = out.len() - offset;
                for i in 0..len {
                    let b = out[from + i];
                    out.push(b);
                }
            } else {
                let b = *bytes
                    .get(at)
                    .ok_or(CodecError::Compression("truncated literal"))?;
                at += 1;
                out.push(b);
            }
        }
    }
    if at != bytes.len() {
        return Err(CodecError::Compression("trailing bytes after final token"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(raw: &[u8]) -> usize {
        let packed = compress(raw);
        let back = decompress(&packed, raw.len() as u64).expect("round trip decodes");
        assert_eq!(back, raw, "round trip must be bit-identical");
        packed.len()
    }

    #[test]
    fn round_trips_and_compresses_cube_text() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(&[0xAB; 10_000]);
        // a realistic cube payload: sparse 01X lines
        let mut cube_text = String::from("chains 8 depth 25\n");
        for i in 0..400 {
            let mut line = vec![b'X'; 200];
            line[(i * 7) % 200] = b'0' + (i % 2) as u8;
            line[(i * 13) % 200] = b'1';
            cube_text.push_str(std::str::from_utf8(&line).unwrap());
            cube_text.push('\n');
        }
        let packed = round_trip(cube_text.as_bytes());
        assert!(
            packed * 4 < cube_text.len(),
            "sparse cube text must compress at least 4x (got {} -> {})",
            cube_text.len(),
            packed
        );
        // incompressible input must still round-trip (and not explode)
        let mut noise = Vec::with_capacity(4096);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            noise.push((state >> 56) as u8);
        }
        let packed = round_trip(&noise);
        assert!(packed <= noise.len() + noise.len() / 8 + 16);
    }

    #[test]
    fn malformed_streams_reject_without_panicking() {
        // truncated header
        assert!(matches!(
            decompress(&[0, 0, 0], 1 << 20),
            Err(CodecError::Compression(_))
        ));
        // declared length above the cap
        let mut huge = (u64::MAX).to_be_bytes().to_vec();
        huge.push(0);
        assert!(matches!(
            decompress(&huge, 1 << 20),
            Err(CodecError::Oversize { .. })
        ));
        // zero match offset
        let mut zero_off = 4u64.to_be_bytes().to_vec();
        zero_off.push(0b0000_0001); // first item is a match
        zero_off.extend_from_slice(&0u16.to_be_bytes());
        assert!(matches!(
            decompress(&zero_off, 1 << 20),
            Err(CodecError::Compression(_))
        ));
        // every truncation of a valid stream is rejected
        let packed = compress(b"state skip state skip state skip");
        for cut in 0..packed.len() {
            assert!(
                decompress(&packed[..cut], 1 << 20).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // random garbage never panics
        let mut state = 1u64;
        for case in 0..500 {
            let mut bytes = Vec::new();
            for _ in 0..(case % 64) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1443);
                bytes.push((state >> 33) as u8);
            }
            let _ = decompress(&bytes, 1 << 16);
        }
    }
}
