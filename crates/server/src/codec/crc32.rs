//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! per-chunk integrity check of the v3 wire codec.
//!
//! Std-only, table-driven. The table is built in a `const` context, so
//! there is no lazy-init state and the checksum of a byte slice is a
//! pure function. CRC-32 detects *every* single-bit error over the
//! span it covers (the generator polynomial has more than one term),
//! which is exactly the guarantee the noise-injection harness pins.

/// The reflected IEEE polynomial used by zlib, PNG and Ethernet.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table: `TABLE[b]` is the CRC of the single byte
/// `b` folded into an all-zero register.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` —
/// the standard IEEE parameterisation).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the zlib/PNG parameterisation.
    #[test]
    fn known_answers() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    /// The harness contract: any single-bit flip changes the checksum.
    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let data: Vec<u8> = (0..97u8).collect();
        let clean = crc32(&data);
        for bit in 0..data.len() * 8 {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), clean, "bit {bit} flip went undetected");
        }
    }
}
