//! The concurrent compression service: bounded job queue, worker
//! pool, per-connection protocol handlers and the content-addressed
//! artifact cache, all over blocking std TCP.
//!
//! # Threading model
//!
//! ```text
//! accept loop ── one handler thread per connection ──┐
//!                                                    │ try_enqueue (bounded; Busy when full)
//!                  worker pool (N threads) ◀─────────┘
//!                  │  pop → Running → execute → Done/Failed
//!                  └─ artifact cache (Mutex<ArtifactCache>)
//!
//! sharded only:
//!   replicator ── drains the bounded write-behind queue, pushing
//!                 cold artifacts to ring peers (v5 Replicate)
//!   prober     ── pings ring peers, feeds the health table, adopts
//!                 higher ring epochs gossiped back in Pong
//! ```
//!
//! Backpressure is explicit: the queue never grows past its capacity —
//! a submission that would overflow is answered [`Response::Busy`] and
//! nothing is buffered. Waiters block on a condvar with a stop check,
//! so shutdown cannot deadlock a connection.
//!
//! Each job runs with `total parallelism / workers` engine threads, so
//! the pool saturates the machine without oversubscribing it; results
//! are bit-identical at every thread count, so this knob never changes
//! what a client receives.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ss_core::{Encoded, Engine, PipelineReport};
use ss_store::{Artifact, ArtifactStore};
use ss_telemetry::{
    span_id, wall_micros, Span, SpanDump, SpanKind, SpanRing, TraceClock, TraceContext,
    DEFAULT_RING_CAPACITY,
};
use ss_testdata::TestSet;

use crate::cache::{cache_key, ArtifactCache, CachedArtifacts};
use crate::codec::{Codec, CodecConfig, CodecError, Transport, WireStats};
use crate::protocol::{
    peek_version, read_frame, write_frame, CacheTier, CodecCounters, ConnStats, JobPhase,
    JobReport, JobSpec, PhaseHistogram, Request, Response, ServerStats, TierStats, MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::report_digest;
use crate::shard::{ShardError, ShardRing, ShardSpec};

/// How long a connection may sit idle between requests before the
/// handler closes it (keeps abandoned sockets from pinning threads).
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// How often blocked waiters re-check the stop flag.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// How many finished jobs stay pollable. The server is long-lived, so
/// completed states cannot accumulate forever; the oldest finished
/// entries are dropped past this bound (polling one afterwards answers
/// "unknown job id"). 4096 is orders of magnitude above any queue
/// depth, so a client that submitted a job always has ample time to
/// collect it.
const FINISHED_RETENTION: usize = 4096;

/// Concurrent-connection bound when [`ServeOptions::max_connections`]
/// is 0. Far above any sane client fleet, far below the OS thread
/// ceiling a connection flood would otherwise hit.
const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// Replication factor when [`ServeOptions::replicas`] is 0 on a
/// sharded server: the owner plus one warm copy, so any single shard
/// death costs zero recomputation.
const DEFAULT_REPLICAS: usize = 2;

/// Bound on the write-behind replication queue. Replication is best
/// effort: past this backlog new work is dropped (and counted) rather
/// than buffered without limit.
const REPLICATION_QUEUE_DEPTH: usize = 1024;

/// How often the prober pings ring peers (health + epoch gossip).
const PROBE_INTERVAL: Duration = Duration::from_millis(250);

/// Connect timeout for shard-to-shard frames (probes and replica
/// pushes); a dead peer costs at most this per attempt.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Read/write timeout once a peer connection is up.
const PEER_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Tunables for [`Server::bind`]. `Default` is a loopback address on
/// an OS-assigned port, one worker per hardware thread, a 256 MiB
/// cache and a queue of four jobs per worker.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `"127.0.0.1:7113"`; port 0 lets the OS
    /// pick (read the result from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means one per hardware thread.
    pub workers: usize,
    /// Artifact-cache budget in bytes.
    pub cache_bytes: usize,
    /// Bounded queue capacity; 0 means `4 * workers`.
    pub queue_depth: usize,
    /// Root of the persistent artifact store; `None` serves from the
    /// in-memory tier only. The directory is created if absent, its
    /// existing artifacts warm-start the index on boot, and every cold
    /// job writes through to it.
    pub store_dir: Option<PathBuf>,
    /// Concurrent-connection bound; one handler thread exists per
    /// active connection, and an accepted connection past the bound is
    /// shed with a `Busy` reply instead of a thread. 0 means the
    /// default of 256.
    pub max_connections: usize,
    /// Fleet membership, when this server is one shard of a sharded
    /// tier: the full peer list and this server's index into it.
    /// `None` serves every key itself (single-node mode).
    pub shard: Option<ShardSpec>,
    /// Replication factor on a sharded server: every cold artifact is
    /// pushed to the first `replicas` shards of its key's rendezvous
    /// order (the owner plus `replicas - 1` warm copies). 0 means the
    /// default of 2; 1 disables replication. Ignored when unsharded.
    pub replicas: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            cache_bytes: 256 << 20,
            queue_depth: 0,
            store_dir: None,
            max_connections: 0,
            shard: None,
            replicas: 0,
        }
    }
}

/// A job sitting in the bounded queue: pre-parsed and pre-validated,
/// so workers only ever do compression work.
struct QueuedJob {
    id: u64,
    key: u64,
    set: TestSet,
    spec: JobSpec,
    /// When the job entered the queue (monotonic µs) — the queue-wait
    /// span runs from here to the worker pop.
    enqueued_micros: u64,
}

/// Lifecycle of a submitted job.
enum JobState {
    Queued,
    Running,
    Done(JobReport),
    Failed(String),
}

/// Every submitted job's state, with bounded retention of finished
/// entries so a long-lived server cannot grow without bound.
#[derive(Default)]
struct JobTable {
    states: HashMap<u64, JobState>,
    /// Finished ids in completion order — the eviction queue.
    finished: VecDeque<u64>,
}

impl JobTable {
    /// Records a state; finishing a job enters it into the bounded
    /// retention window, evicting the oldest finished entries.
    fn set(&mut self, id: u64, state: JobState) {
        let finished = matches!(state, JobState::Done(_) | JobState::Failed(_));
        self.states.insert(id, state);
        if finished {
            self.finished.push_back(id);
            while self.finished.len() > FINISHED_RETENTION {
                let oldest = self.finished.pop_front().expect("non-empty by len check");
                self.states.remove(&oldest);
            }
        }
    }
}

/// The persistent tier: the on-disk store plus an in-memory index of
/// the keys known to be present (warm-started by a boot-time scan, so
/// a miss never touches the filesystem) and its counters.
struct DiskTier {
    store: ArtifactStore,
    /// key → stored file size; the warm-start index and the occupancy
    /// accounting in one map.
    index: Mutex<HashMap<u64, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    corruptions: AtomicU64,
    writes: AtomicU64,
}

impl DiskTier {
    /// Opens the store and warm-starts the index from the artifacts
    /// already on disk.
    fn open(dir: &PathBuf) -> Result<Self, ss_store::StoreError> {
        let store = ArtifactStore::open(dir)?;
        let index: HashMap<u64, u64> = store.keys()?.into_iter().collect();
        Ok(DiskTier {
            store,
            index: Mutex::new(index),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Counts a corruption and evicts the offending file + index
    /// entry, so the key recomputes cold (now and after restarts).
    fn evict_corrupt(&self, key: u64, why: &str) {
        eprintln!("ss-server: evicting corrupt artifact {key:016x}: {why}");
        self.corruptions.fetch_add(1, Ordering::Relaxed);
        self.index.lock().expect("disk index mutex").remove(&key);
        if let Err(e) = self.store.remove(key) {
            eprintln!("ss-server: removing corrupt artifact {key:016x}: {e}");
        }
    }
}

/// Per-phase latency histograms, one mutex for all four (recording is
/// a few adds — contention is irrelevant next to the phases
/// themselves).
#[derive(Default)]
struct PhaseTimes {
    synthesis: PhaseHistogram,
    encode: PhaseHistogram,
    embed: PhaseHistogram,
    segment: PhaseHistogram,
}

/// Lock-free wire-codec telemetry, bumped by connection handlers and
/// snapshotted into [`CodecCounters`] for `Stats` replies.
#[derive(Default)]
struct CodecTelemetry {
    connections_v2: AtomicU64,
    connections_v3: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    crc_rejects: AtomicU64,
    raw_tx_bytes: AtomicU64,
    wire_tx_bytes: AtomicU64,
    raw_rx_bytes: AtomicU64,
    wire_rx_bytes: AtomicU64,
}

impl CodecTelemetry {
    /// Accounts one received message (framed connections only — the
    /// counters describe codec traffic, not legacy frames).
    fn add_rx(&self, stats: WireStats) {
        self.frames_received
            .fetch_add(stats.frames, Ordering::Relaxed);
        self.raw_rx_bytes
            .fetch_add(stats.raw_bytes, Ordering::Relaxed);
        self.wire_rx_bytes
            .fetch_add(stats.wire_bytes, Ordering::Relaxed);
    }

    /// Accounts one sent message (framed connections only).
    fn add_tx(&self, stats: WireStats) {
        self.frames_sent.fetch_add(stats.frames, Ordering::Relaxed);
        self.raw_tx_bytes
            .fetch_add(stats.raw_bytes, Ordering::Relaxed);
        self.wire_tx_bytes
            .fetch_add(stats.wire_bytes, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CodecCounters {
        CodecCounters {
            connections_v2: self.connections_v2.load(Ordering::Relaxed),
            connections_v3: self.connections_v3.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            crc_rejects: self.crc_rejects.load(Ordering::Relaxed),
            raw_tx_bytes: self.raw_tx_bytes.load(Ordering::Relaxed),
            wire_tx_bytes: self.wire_tx_bytes.load(Ordering::Relaxed),
            raw_rx_bytes: self.raw_rx_bytes.load(Ordering::Relaxed),
            wire_rx_bytes: self.wire_rx_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A sharded server's placement state: the fleet ring and this
/// server's own position in it. Swapped atomically (under its mutex)
/// by `Reconfigure` — `self_addr` is pinned at startup so the server
/// can re-find (or lose) its index in any future ring.
struct ShardState {
    ring: ShardRing,
    /// This server's index into the ring's peer list, or `None` after
    /// a reconfiguration removed it — a removed shard owns nothing and
    /// redirects every plain submission, but keeps serving direct
    /// traffic and its warm cache until drained.
    id: Option<usize>,
    /// The address this server is known by in fleet peer lists.
    self_addr: String,
}

/// One unit of write-behind replication: push `key`'s artifact to
/// every address in `targets`. `entry` is the in-memory artifact when
/// the producer held it; `None` makes the replicator load the
/// envelope from the disk tier (the re-replication path for keys that
/// were only on disk when the ring changed).
struct ReplicationTask {
    key: u64,
    entry: Option<Arc<CachedArtifacts>>,
    targets: Vec<String>,
    /// The trace that produced (or last served) the artifact being
    /// pushed — carried on the wire so the receiving shard's ingest
    /// span lands on the same timeline. 0 = untraced.
    trace: u64,
}

/// State shared by the accept loop, connection handlers and workers.
struct Shared {
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    jobs: Mutex<JobTable>,
    jobs_cv: Condvar,
    cache: Mutex<ArtifactCache>,
    /// The persistent second tier, when `--store-dir` is configured.
    disk: Option<DiskTier>,
    /// Cache keys whose cold computation is in flight — request
    /// coalescing: a worker holding a duplicate key waits for the
    /// computer instead of re-running synthesis + encode in parallel.
    pending: Mutex<HashSet<u64>>,
    pending_cv: Condvar,
    phases: Mutex<PhaseTimes>,
    codec: CodecTelemetry,
    next_job: AtomicU64,
    jobs_done: AtomicU64,
    busy_rejections: AtomicU64,
    coalesced: AtomicU64,
    /// Fleet placement; `None` in single-node mode. Behind a mutex so
    /// `Reconfigure` can swap the ring live, without restarting.
    shards: Mutex<Option<ShardState>>,
    /// Replication factor (1 = off); fixed per process.
    replicas: usize,
    /// The bounded write-behind replication queue.
    repl_queue: Mutex<VecDeque<ReplicationTask>>,
    repl_cv: Condvar,
    /// Replica pushes acknowledged by a peer.
    replicas_sent: AtomicU64,
    /// Replica pushes accepted from peers after verification.
    replicas_received: AtomicU64,
    /// Replication work dropped (full queue or oversize envelope).
    replica_drops: AtomicU64,
    /// Reconfigurations that actually advanced the epoch.
    reconfigures: AtomicU64,
    /// Ring peers the prober (or a failed push) currently considers
    /// unreachable.
    peers_down: Mutex<HashSet<String>>,
    /// Live connection handlers (the accept gate's level).
    conn_active: AtomicUsize,
    /// The accept gate's bound.
    conn_max: usize,
    /// Connections shed at the gate.
    conn_shed: AtomicU64,
    /// Plain submissions answered with the owner's address.
    redirects: AtomicU64,
    /// Monotonic origin every span timestamp is measured from;
    /// `TraceDump` samples it against the wall clock so readers can
    /// normalise timestamps across processes.
    clock: TraceClock,
    /// Bounded ring of recorded spans (seeded random-replacement
    /// eviction, drained non-destructively by `TraceDump`).
    spans: Mutex<SpanRing>,
    /// Per-process span sequence, folded into span-id derivation.
    span_seq: AtomicU64,
    stop: AtomicBool,
    workers: usize,
    queue_capacity: usize,
    job_threads: usize,
}

/// What a submission attempt produced.
#[derive(Debug)]
enum Enqueue {
    Accepted(u64),
    Busy {
        queued: u32,
        capacity: u32,
    },
    /// Another shard owns this key; the payload is its address.
    Redirect(String),
}

impl Shared {
    fn new(
        workers: usize,
        queue_capacity: usize,
        cache_bytes: usize,
        job_threads: usize,
        disk: Option<DiskTier>,
        conn_max: usize,
        replicas: usize,
    ) -> Self {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(JobTable::default()),
            jobs_cv: Condvar::new(),
            cache: Mutex::new(ArtifactCache::new(cache_bytes)),
            disk,
            pending: Mutex::new(HashSet::new()),
            pending_cv: Condvar::new(),
            phases: Mutex::new(PhaseTimes::default()),
            codec: CodecTelemetry::default(),
            next_job: AtomicU64::new(1),
            jobs_done: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shards: Mutex::new(None),
            replicas: replicas.max(1),
            repl_queue: Mutex::new(VecDeque::new()),
            repl_cv: Condvar::new(),
            replicas_sent: AtomicU64::new(0),
            replicas_received: AtomicU64::new(0),
            replica_drops: AtomicU64::new(0),
            reconfigures: AtomicU64::new(0),
            peers_down: Mutex::new(HashSet::new()),
            conn_active: AtomicUsize::new(0),
            conn_max,
            conn_shed: AtomicU64::new(0),
            redirects: AtomicU64::new(0),
            clock: TraceClock::new(),
            spans: Mutex::new(SpanRing::new(DEFAULT_RING_CAPACITY, span_ring_seed())),
            span_seq: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            workers,
            queue_capacity,
            job_threads,
        }
    }

    /// Validates a spec, canonicalises its workload text and either
    /// queues it (`Accepted`), applies backpressure (`Busy`), or —
    /// sharded, non-`direct`, and the canonical key belongs to another
    /// shard — answers the owner's address (`Redirect`). The error
    /// carries a client-facing message.
    ///
    /// `direct` submissions (`SubmitDirect`, and every plain submit
    /// from a pre-v4 peer, which could not parse a redirect) always
    /// execute locally: that is the balancer's failover path onto a
    /// non-owner, which must never be bounced back toward a dead
    /// owner.
    fn try_enqueue(&self, mut spec: JobSpec, direct: bool) -> Result<Enqueue, String> {
        let set = TestSet::from_text(&spec.set_text).map_err(|e| format!("cube file: {e}"))?;
        if set.is_empty() {
            return Err("cube file: test set is empty".to_string());
        }
        // canonical text: whitespace/comment variants share a cache key
        spec.set_text = set.to_text();
        // reject bad knobs at the door, not in a worker
        engine_from_spec(&spec, self.job_threads).map_err(|e| format!("config: {e}"))?;
        let key = cache_key(&spec);

        // ownership is decided on the canonical key, so a client that
        // hashed non-canonical text still converges in one redirect;
        // a server reconfigured out of its own ring owns nothing
        if !direct {
            let shards = self.shards.lock().expect("shards mutex");
            if let Some(state) = shards.as_ref() {
                let owner = state.ring.owner(key);
                if state.id != Some(owner) {
                    self.redirects.fetch_add(1, Ordering::Relaxed);
                    return Ok(Enqueue::Redirect(state.ring.shards()[owner].clone()));
                }
            }
        }

        let mut queue = self.queue.lock().expect("queue mutex");
        if queue.len() >= self.queue_capacity {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Ok(Enqueue::Busy {
                queued: queue.len() as u32,
                capacity: self.queue_capacity as u32,
            });
        }
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        // the Queued state must land in the jobs table *before* the
        // job becomes poppable: a worker finishing it concurrently
        // would otherwise have its Done state clobbered by this insert
        // and the job would look queued forever (lock order is always
        // queue → jobs, never the reverse)
        self.jobs
            .lock()
            .expect("jobs mutex")
            .set(id, JobState::Queued);
        queue.push_back(QueuedJob {
            id,
            key,
            set,
            spec,
            enqueued_micros: self.clock.now_micros(),
        });
        drop(queue);
        self.queue_cv.notify_one();
        Ok(Enqueue::Accepted(id))
    }

    fn stats(&self) -> ServerStats {
        let queued = self.queue.lock().expect("queue mutex").len() as u32;
        let cache = self.cache.lock().expect("cache mutex").stats();
        let disk = self.disk.as_ref().map_or_else(TierStats::default, |d| {
            let index = d.index.lock().expect("disk index mutex");
            TierStats {
                hits: d.hits.load(Ordering::Relaxed),
                misses: d.misses.load(Ordering::Relaxed),
                entries: index.len() as u64,
                bytes: index.values().sum(),
                capacity_bytes: 0, // unbounded
                evictions: d.corruptions.load(Ordering::Relaxed),
            }
        });
        let (epoch, shard_id, shard_count) = {
            let shards = self.shards.lock().expect("shards mutex");
            match shards.as_ref() {
                Some(s) => (
                    s.ring.epoch(),
                    s.id.map_or(u32::MAX, |id| id as u32),
                    s.ring.len() as u32,
                ),
                None => (0, 0, 0),
            }
        };
        let (spans_recorded, spans_evicted) = {
            let spans = self.spans.lock().expect("spans mutex");
            (spans.recorded(), spans.evicted())
        };
        let phases = self.phases.lock().expect("phases mutex");
        ServerStats {
            workers: self.workers as u32,
            queue_capacity: self.queue_capacity as u32,
            queued,
            jobs_done: self.jobs_done.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            memory: TierStats {
                hits: cache.hits,
                misses: cache.misses,
                entries: cache.entries as u64,
                bytes: cache.bytes as u64,
                capacity_bytes: cache.capacity_bytes as u64,
                evictions: cache.evictions,
            },
            disk,
            store_writes: self
                .disk
                .as_ref()
                .map_or(0, |d| d.writes.load(Ordering::Relaxed)),
            disk_corruptions: self
                .disk
                .as_ref()
                .map_or(0, |d| d.corruptions.load(Ordering::Relaxed)),
            synthesis: phases.synthesis,
            encode: phases.encode,
            embed: phases.embed,
            segment: phases.segment,
            codec: self.codec.snapshot(),
            connections_active: self.conn_active.load(Ordering::Relaxed) as u32,
            connections_max: self.conn_max as u32,
            connections_shed: self.conn_shed.load(Ordering::Relaxed),
            redirects: self.redirects.load(Ordering::Relaxed),
            shard_id,
            // 0 = single-node; a sharded server reports its fleet size
            shard_count,
            epoch,
            replicas_sent: self.replicas_sent.load(Ordering::Relaxed),
            replicas_received: self.replicas_received.load(Ordering::Relaxed),
            replica_queue_drops: self.replica_drops.load(Ordering::Relaxed),
            reconfigures: self.reconfigures.load(Ordering::Relaxed),
            peers_down: self.peers_down.lock().expect("peers_down mutex").len() as u32,
            spans_recorded,
            spans_evicted,
        }
    }

    /// Records one span on `trace` — a no-op (no lock, no allocation)
    /// for the zero trace, which is what keeps untraced traffic free.
    /// The note closure only runs when the span is actually recorded.
    fn record_span<F: FnOnce() -> String>(
        &self,
        trace: u64,
        parent: u64,
        kind: SpanKind,
        start_micros: u64,
        duration_micros: u64,
        note: F,
    ) {
        if trace == 0 {
            return;
        }
        let seq = self.span_seq.fetch_add(1, Ordering::Relaxed);
        self.spans.lock().expect("spans mutex").record(Span {
            trace,
            id: span_id(trace, seq),
            parent,
            kind,
            start_micros,
            duration_micros,
            note: note(),
        });
    }

    /// A non-destructive dump of the span ring (`trace` 0 = every
    /// span), stamped with paired wall/monotonic clocks so a reader
    /// can place this process's spans on a shared timeline.
    fn span_dump(&self, trace: u64) -> SpanDump {
        let spans = self.spans.lock().expect("spans mutex");
        SpanDump {
            wall_micros: wall_micros(),
            mono_micros: self.clock.now_micros(),
            recorded: spans.recorded(),
            evicted: spans.evicted(),
            spans: spans.snapshot(trace),
        }
    }

    /// The current membership view: `(epoch, own shard id, peer
    /// list)` — what `Pong` advertises. Unsharded servers answer
    /// `(0, u32::MAX, [])`.
    fn membership(&self) -> (u64, u32, Vec<String>) {
        let shards = self.shards.lock().expect("shards mutex");
        match shards.as_ref() {
            Some(s) => (
                s.ring.epoch(),
                s.id.map_or(u32::MAX, |id| id as u32),
                s.ring.shards().to_vec(),
            ),
            None => (0, u32::MAX, Vec::new()),
        }
    }

    /// Marks a ring peer reachable/unreachable in the health table.
    fn note_peer(&self, addr: &str, up: bool) {
        let mut down = self.peers_down.lock().expect("peers_down mutex");
        if up {
            down.remove(addr);
        } else {
            down.insert(addr.to_string());
        }
    }

    /// Queues one replication task, dropping (and counting) when the
    /// bounded queue is full — write-behind is best effort by design.
    fn push_replication(&self, task: ReplicationTask) {
        let mut queue = self.repl_queue.lock().expect("repl queue mutex");
        if queue.len() >= REPLICATION_QUEUE_DEPTH {
            self.replica_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        queue.push_back(task);
        drop(queue);
        self.repl_cv.notify_one();
    }
}

/// Eviction seed for the span ring: `SS_CHAOS_SEED` when set (the
/// chaos harness pins span retention alongside everything else it
/// derandomises), a fixed constant otherwise — retention is always
/// deterministic for a given seed and record sequence.
fn span_ring_seed() -> u64 {
    std::env::var("SS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5353_5452_4143_4531)
}

/// Builds the engine a spec describes, with the server's per-job
/// thread budget.
fn engine_from_spec(spec: &JobSpec, threads: usize) -> Result<Engine, String> {
    let mut builder = Engine::builder()
        .window(spec.window as usize)
        .segment(spec.segment as usize)
        .speedup(spec.speedup)
        .lfsr_kind(spec.lfsr_kind)
        .ps_taps(spec.ps_taps as usize)
        .hw_seed(spec.hw_seed)
        .fill_seed(spec.fill_seed)
        .threads(threads);
    if spec.lfsr_size > 0 {
        builder = builder.lfsr_size(spec.lfsr_size as usize);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Removes a key from the in-flight set when the cold computation
/// finishes — in every exit path, including errors and unwinds, so a
/// failed computer can never wedge its waiters.
struct PendingGuard<'a> {
    shared: &'a Shared,
    key: u64,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.shared
            .pending
            .lock()
            .expect("pending mutex")
            .remove(&self.key);
        self.shared.pending_cv.notify_all();
    }
}

/// Cache lookup with request coalescing: a hit returns the artifacts;
/// a miss either claims the key (returning a guard — the caller is
/// now the computer) or, when another worker is already computing the
/// same key, blocks until that computation lands and retries. A
/// computer that fails releases the key, so exactly one waiter
/// inherits the cold path — progress is guaranteed, never a stampede.
fn lookup_or_claim<'a>(
    shared: &'a Shared,
    key: u64,
) -> Result<Arc<CachedArtifacts>, PendingGuard<'a>> {
    let mut waited = false;
    loop {
        // lookup, not get: waiters re-poll this every tick, and only
        // the claimer below should record the (single) miss
        if let Some(entry) = shared.cache.lock().expect("cache mutex").lookup(key) {
            return Ok(entry);
        }
        let mut pending = shared.pending.lock().expect("pending mutex");
        if pending.insert(key) {
            drop(pending);
            shared.cache.lock().expect("cache mutex").record_miss();
            return Err(PendingGuard { shared, key });
        }
        // someone else is computing this key: wait for it to land (or
        // fail), then re-check the cache. Counted once per job, not
        // once per wakeup.
        if !waited {
            waited = true;
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let (p, _) = shared
            .pending_cv
            .wait_timeout(pending, WAIT_TICK)
            .expect("pending mutex");
        drop(p);
    }
}

/// Re-enters the staged flow at the embed stage from cached
/// artifacts, returning the report plus the embed/segment timings in
/// microseconds (the caller records them — a run later discarded by a
/// digest check must not pollute the histograms).
fn finish_stages(entry: &CachedArtifacts) -> Result<(PipelineReport, u64, u64), String> {
    let encoded = Encoded::from_cached(&entry.set, &entry.ctx, entry.encoding.clone())
        .map_err(|e| format!("cache pairing: {e}"))?;
    let t = Instant::now();
    let embedded = encoded.embed();
    let embed_micros = t.elapsed().as_micros() as u64;
    let t = Instant::now();
    let report = embedded.segment().finish().map_err(|e| e.to_string())?;
    let segment_micros = t.elapsed().as_micros() as u64;
    Ok((report, embed_micros, segment_micros))
}

fn record_finish_phases(shared: &Shared, embed_micros: u64, segment_micros: u64) {
    let mut phases = shared.phases.lock().expect("phases mutex");
    phases.embed.record(embed_micros);
    phases.segment.record(segment_micros);
}

/// Disk-tier lookup: loads, re-verifies and promotes the artifact
/// stored under the job's key. Returns the finished report on
/// success; `None` is a miss (absent key, or a corrupt file that was
/// counted, evicted and left for the caller to recompute). Never
/// panics and never returns an unverified result: the envelope
/// checksum guards the bytes, and the stored report digest is checked
/// against the digest of the report the rehydrated artifacts actually
/// reproduce.
fn disk_lookup(shared: &Shared, job: &QueuedJob) -> Option<(PipelineReport, usize)> {
    let disk = shared.disk.as_ref()?;
    if !disk
        .index
        .lock()
        .expect("disk index mutex")
        .contains_key(&job.key)
    {
        disk.misses.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let artifact = match disk.store.get(job.key, Some(shared.job_threads)) {
        Ok(Some(artifact)) => artifact,
        Ok(None) => {
            // index said present, file is gone (external deletion)
            disk.misses.fetch_add(1, Ordering::Relaxed);
            disk.index
                .lock()
                .expect("disk index mutex")
                .remove(&job.key);
            return None;
        }
        Err(e) => {
            disk.evict_corrupt(job.key, &e.to_string());
            return None;
        }
    };
    let entry = Arc::new(CachedArtifacts {
        ctx: artifact.ctx,
        set: artifact.set,
        dropped: artifact.dropped as usize,
        encoding: artifact.encoding,
        report_digest: artifact.report_digest,
        trace: AtomicU64::new(job.spec.trace.trace),
    });
    match finish_stages(&entry) {
        Ok((report, embed_micros, segment_micros))
            if report_digest(&report) == artifact.report_digest =>
        {
            disk.hits.fetch_add(1, Ordering::Relaxed);
            record_finish_phases(shared, embed_micros, segment_micros);
            // promote to the memory tier for the next lookup
            shared
                .cache
                .lock()
                .expect("cache mutex")
                .insert(job.key, Arc::clone(&entry));
            Some((report, entry.dropped))
        }
        Ok((report, ..)) => {
            disk.evict_corrupt(
                job.key,
                &format!(
                    "stored digest {:016x} but artifacts reproduce {:016x}",
                    artifact.report_digest,
                    report_digest(&report)
                ),
            );
            None
        }
        Err(e) => {
            disk.evict_corrupt(job.key, &e);
            None
        }
    }
}

/// Runs one job through the tiered lookup: the in-memory LRU (or a
/// coalesced wait on an identical in-flight job), then the persistent
/// store, then a cold run of the full flow (the same synthesize →
/// filter → encode path as the CLI `run` command) that populates both
/// tiers.
fn execute(shared: &Shared, job: &QueuedJob) -> Result<JobReport, String> {
    let start = Instant::now();
    let trace = job.spec.trace;
    let (report, dropped, tier) = match lookup_or_claim(shared, job.key) {
        Ok(entry) => {
            let t0 = shared.clock.now_micros();
            let (report, embed_micros, segment_micros) = finish_stages(&entry)?;
            record_finish_phases(shared, embed_micros, segment_micros);
            if trace.trace != 0 {
                // telemetry only: the entry remembers the last trace
                // that served it, so a later re-replication push can
                // attribute the copy
                entry.trace.store(trace.trace, Ordering::Relaxed);
            }
            shared.record_span(
                trace.trace,
                trace.parent,
                SpanKind::CacheMemory,
                t0,
                shared.clock.now_micros().saturating_sub(t0),
                || format!("key={:016x} hit", job.key),
            );
            shared.record_span(
                trace.trace,
                trace.parent,
                SpanKind::Embed,
                t0,
                embed_micros,
                String::new,
            );
            shared.record_span(
                trace.trace,
                trace.parent,
                SpanKind::Segment,
                t0 + embed_micros,
                segment_micros,
                String::new,
            );
            (report, entry.dropped, CacheTier::Memory)
        }
        // holding the guard: this worker is the (sole) computer for
        // the key, whether it comes off disk or runs cold
        Err(_pending_guard) => {
            let t_disk = shared.clock.now_micros();
            match disk_lookup(shared, job) {
                Some((report, dropped)) => {
                    shared.record_span(
                        trace.trace,
                        trace.parent,
                        SpanKind::CacheDisk,
                        t_disk,
                        shared.clock.now_micros().saturating_sub(t_disk),
                        || format!("key={:016x} hit", job.key),
                    );
                    (report, dropped, CacheTier::Disk)
                }
                None => {
                    let engine = engine_from_spec(&job.spec, shared.job_threads)?;
                    let t0 = shared.clock.now_micros();
                    let t = Instant::now();
                    let ctx = engine.synthesize(&job.set).map_err(|e| e.to_string())?;
                    let (encodable, dropped_idx) = ctx.encodable_subset(&job.set);
                    let synthesis_micros = t.elapsed().as_micros() as u64;
                    let t1 = shared.clock.now_micros();
                    let t = Instant::now();
                    let encoded =
                        Encoded::from_ctx_ref(&encodable, &ctx).map_err(|e| e.to_string())?;
                    let encode_micros = t.elapsed().as_micros() as u64;
                    let encoding = encoded.encoding().clone();
                    let t2 = shared.clock.now_micros();
                    let t = Instant::now();
                    let embedded = encoded.embed();
                    let embed_micros = t.elapsed().as_micros() as u64;
                    let t3 = shared.clock.now_micros();
                    let t = Instant::now();
                    let report = embedded.segment().finish().map_err(|e| e.to_string())?;
                    let segment_micros = t.elapsed().as_micros() as u64;
                    {
                        let mut phases = shared.phases.lock().expect("phases mutex");
                        phases.synthesis.record(synthesis_micros);
                        phases.encode.record(encode_micros);
                        phases.embed.record(embed_micros);
                        phases.segment.record(segment_micros);
                    }
                    for (kind, at, micros) in [
                        (SpanKind::Synthesis, t0, synthesis_micros),
                        (SpanKind::Encode, t1, encode_micros),
                        (SpanKind::Embed, t2, embed_micros),
                        (SpanKind::Segment, t3, segment_micros),
                    ] {
                        shared.record_span(
                            trace.trace,
                            trace.parent,
                            kind,
                            at,
                            micros,
                            String::new,
                        );
                    }
                    let dropped = dropped_idx.len();
                    let entry = Arc::new(CachedArtifacts {
                        ctx,
                        set: encodable,
                        dropped,
                        encoding,
                        report_digest: report_digest(&report),
                        trace: AtomicU64::new(trace.trace),
                    });
                    store_write_through(shared, job.key, &entry, entry.report_digest);
                    shared
                        .cache
                        .lock()
                        .expect("cache mutex")
                        .insert(job.key, Arc::clone(&entry));
                    // write-behind: push warm copies to the key's replica
                    // set so losing this shard re-pays nothing
                    schedule_replication(shared, job.key, entry, trace.trace);
                    (report, dropped, CacheTier::Cold)
                }
            }
        }
    };
    Ok(job_report(
        &report,
        job.set.len(),
        dropped,
        tier,
        start.elapsed(),
        trace.trace,
    ))
}

/// Persists a cold run's artifacts. Failures are logged and absorbed —
/// a full disk must degrade the cache, never the answer.
fn store_write_through(shared: &Shared, key: u64, entry: &CachedArtifacts, digest: u64) {
    let Some(disk) = shared.disk.as_ref() else {
        return;
    };
    let artifact = Artifact {
        ctx: entry.ctx.clone(),
        set: entry.set.clone(),
        dropped: entry.dropped as u64,
        encoding: entry.encoding.clone(),
        report_digest: digest,
    };
    match disk.store.put(key, &artifact) {
        Ok(size) => {
            disk.writes.fetch_add(1, Ordering::Relaxed);
            disk.index
                .lock()
                .expect("disk index mutex")
                .insert(key, size);
        }
        Err(e) => eprintln!("ss-server: writing artifact {key:016x}: {e}"),
    }
}

/// Queues write-behind replication of a freshly computed cold key to
/// the other members of its replica set. No-op unless the server is
/// sharded with a factor above 1.
fn schedule_replication(shared: &Shared, key: u64, entry: Arc<CachedArtifacts>, trace: u64) {
    if shared.replicas <= 1 {
        return;
    }
    let targets = {
        let shards = shared.shards.lock().expect("shards mutex");
        match shards.as_ref() {
            Some(state) => state
                .ring
                .replicas(key, shared.replicas)
                .into_iter()
                .filter(|addr| *addr != state.self_addr)
                .collect::<Vec<_>>(),
            None => return,
        }
    };
    if targets.is_empty() {
        return;
    }
    shared.push_replication(ReplicationTask {
        key,
        entry: Some(entry),
        targets,
        trace,
    });
}

/// The addresses `key` must newly be pushed to when the ring changes
/// from `old` to `new`: members of the new replica set that are
/// neither in the old set (they already hold a copy) nor this server.
/// `None` when nothing gained the key.
fn replica_targets(
    old: &ShardRing,
    new: &ShardRing,
    key: u64,
    factor: usize,
    self_addr: &str,
) -> Option<Vec<String>> {
    let old_set: HashSet<String> = old.replicas(key, factor).into_iter().collect();
    let targets: Vec<String> = new
        .replicas(key, factor)
        .into_iter()
        .filter(|addr| !old_set.contains(addr) && addr != self_addr)
        .collect();
    if targets.is_empty() {
        None
    } else {
        Some(targets)
    }
}

/// Atomically swaps the ring for a strictly newer membership view and
/// queues re-replication of every locally held key whose replica set
/// gained members — the warm-copy guarantee must survive the ring
/// change. Idempotent: a stale or repeated epoch answers the epoch in
/// force without touching anything.
///
/// # Errors
///
/// A client-facing message when the server is unsharded or the peer
/// list is degenerate.
fn apply_reconfigure(shared: &Shared, epoch: u64, peers: Vec<String>) -> Result<u64, String> {
    let mut shards = shared.shards.lock().expect("shards mutex");
    let Some(state) = shards.as_mut() else {
        return Err("server is not sharded".to_string());
    };
    if epoch <= state.ring.epoch() {
        return Ok(state.ring.epoch());
    }
    let new_ring = ShardRing::new(peers)
        .map_err(|e| format!("reconfigure: {e}"))?
        .with_epoch(epoch);
    let new_id = new_ring
        .shards()
        .iter()
        .position(|addr| *addr == state.self_addr);
    if shared.replicas > 1 {
        // every key this server holds, memory tier first so the
        // replicator can reuse the live Arc; disk-only keys get a
        // load-on-push task (lock order: shards → cache / disk.index,
        // never the reverse — nothing locks shards under those)
        let mut tasks: Vec<ReplicationTask> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for (key, entry) in shared.cache.lock().expect("cache mutex").entries() {
            seen.insert(key);
            if let Some(targets) = replica_targets(
                &state.ring,
                &new_ring,
                key,
                shared.replicas,
                &state.self_addr,
            ) {
                tasks.push(ReplicationTask {
                    key,
                    trace: entry.trace.load(Ordering::Relaxed),
                    entry: Some(entry),
                    targets,
                });
            }
        }
        if let Some(disk) = shared.disk.as_ref() {
            for &key in disk.index.lock().expect("disk index mutex").keys() {
                if seen.contains(&key) {
                    continue;
                }
                if let Some(targets) = replica_targets(
                    &state.ring,
                    &new_ring,
                    key,
                    shared.replicas,
                    &state.self_addr,
                ) {
                    tasks.push(ReplicationTask {
                        key,
                        entry: None,
                        targets,
                        // a disk-only key carries no live trace
                        trace: 0,
                    });
                }
            }
        }
        for task in tasks {
            shared.push_replication(task);
        }
    }
    state.ring = new_ring;
    state.id = new_id;
    {
        let members: HashSet<&String> = state.ring.shards().iter().collect();
        shared
            .peers_down
            .lock()
            .expect("peers_down mutex")
            .retain(|peer| members.contains(peer));
    }
    shared.reconfigures.fetch_add(1, Ordering::Relaxed);
    Ok(epoch)
}

/// Accepts one `Replicate` push: decodes the artifact envelope,
/// re-verifies that the artifacts reproduce the digest they claim
/// (nothing off the wire is trusted), and lands the copy in the normal
/// memory → disk tiers. Deliberately records no synthesis, no phase
/// timings and no cache miss — ingestion is not service traffic.
fn ingest_replica(shared: &Shared, key: u64, bytes: &[u8], trace: u64) -> Response {
    let t0 = shared.clock.now_micros();
    let artifact = match Artifact::from_bytes(bytes, key, Some(shared.job_threads)) {
        Ok(artifact) => artifact,
        Err(e) => return Response::Error(format!("replica {key:016x}: {e}")),
    };
    let entry = Arc::new(CachedArtifacts {
        ctx: artifact.ctx,
        set: artifact.set,
        dropped: artifact.dropped as usize,
        encoding: artifact.encoding,
        report_digest: artifact.report_digest,
        trace: AtomicU64::new(trace),
    });
    match finish_stages(&entry) {
        Ok((report, ..)) if report_digest(&report) == entry.report_digest => {
            store_write_through(shared, key, &entry, entry.report_digest);
            shared.cache.lock().expect("cache mutex").insert(key, entry);
            shared.replicas_received.fetch_add(1, Ordering::Relaxed);
            shared.record_span(
                trace,
                0,
                SpanKind::ReplicaIngest,
                t0,
                shared.clock.now_micros().saturating_sub(t0),
                || format!("key={key:016x}"),
            );
            Response::Ack {
                epoch: shared.membership().0,
            }
        }
        Ok((report, ..)) => Response::Error(format!(
            "replica {key:016x}: claims digest {:016x}, artifacts reproduce {:016x}",
            entry.report_digest,
            report_digest(&report)
        )),
        Err(e) => Response::Error(format!("replica {key:016x}: {e}")),
    }
}

/// One plain-frame request/response exchange with a ring peer, under
/// the peer timeouts. Shard-to-shard frames skip `Hello`: v5 messages
/// are plain frames both ends of a fleet parse by construction.
fn send_peer_request(addr: &str, request: &Request) -> Result<Response, String> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| e.to_string())?
        .next()
        .ok_or_else(|| format!("{addr}: no usable address"))?;
    let mut stream =
        TcpStream::connect_timeout(&sock, PEER_CONNECT_TIMEOUT).map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(PEER_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(PEER_IO_TIMEOUT));
    write_frame(&mut stream, &request.encode()).map_err(|e| e.to_string())?;
    let payload = read_frame(&mut stream).map_err(|e| e.to_string())?;
    Response::decode(&payload).map_err(|e| e.to_string())
}

/// Pushes one replication task to its targets: resolves the artifact
/// (live entry, or loaded off disk for re-replication), serialises the
/// envelope once and sends it to each target. Best effort — a failed
/// push marks the peer down and moves on; the prober's next successful
/// round brings it back.
fn replicate_task(shared: &Shared, task: ReplicationTask) {
    let artifact = match task.entry {
        Some(entry) => Artifact {
            ctx: entry.ctx.clone(),
            set: entry.set.clone(),
            dropped: entry.dropped as u64,
            encoding: entry.encoding.clone(),
            report_digest: entry.report_digest,
        },
        None => match shared
            .disk
            .as_ref()
            .map(|disk| disk.store.get(task.key, Some(shared.job_threads)))
        {
            Some(Ok(Some(artifact))) => artifact,
            // gone or unreadable: nothing to push; the key recomputes
            // cold wherever it lands next
            _ => return,
        },
    };
    let bytes = artifact.to_bytes(task.key);
    // a Replicate travels as one frame; an envelope that cannot fit is
    // dropped and counted, never split
    if bytes.len() + 64 > MAX_FRAME_BYTES {
        shared.replica_drops.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let epoch = shared.membership().0;
    for target in &task.targets {
        let request = Request::Replicate {
            epoch,
            key: task.key,
            bytes: bytes.clone(),
            trace: task.trace,
        };
        let t0 = shared.clock.now_micros();
        match send_peer_request(target, &request) {
            Ok(Response::Ack { .. }) => {
                shared.replicas_sent.fetch_add(1, Ordering::Relaxed);
                shared.note_peer(target, true);
                shared.record_span(
                    task.trace,
                    0,
                    SpanKind::ReplicatePush,
                    t0,
                    shared.clock.now_micros().saturating_sub(t0),
                    || format!("key={:016x} -> {target}", task.key),
                );
            }
            // the peer answered but refused (verification, version):
            // it is alive, just not a replica holder
            Ok(_) => shared.note_peer(target, true),
            Err(_) => shared.note_peer(target, false),
        }
    }
}

/// The write-behind replication thread: drains the bounded queue until
/// stop.
fn replicator_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.repl_queue.lock().expect("repl queue mutex");
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                let (q, _) = shared
                    .repl_cv
                    .wait_timeout(queue, WAIT_TICK)
                    .expect("repl queue mutex");
                queue = q;
            }
        };
        replicate_task(shared, task);
    }
}

/// The health/gossip thread: pings every ring peer each interval,
/// feeds the health table, and adopts any strictly newer membership
/// view a peer advertises in `Pong` — so one `Reconfigure` sent to one
/// shard converges the whole fleet within a probe interval.
fn prober_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::Relaxed) {
        let (epoch, _, peers) = shared.membership();
        let self_addr = {
            let shards = shared.shards.lock().expect("shards mutex");
            shards.as_ref().map(|s| s.self_addr.clone())
        };
        for peer in &peers {
            if Some(peer.as_str()) == self_addr.as_deref() {
                continue;
            }
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            match send_peer_request(peer, &Request::Ping) {
                Ok(Response::Pong {
                    epoch: peer_epoch,
                    peers: peer_list,
                    ..
                }) => {
                    shared.note_peer(peer, true);
                    if peer_epoch > epoch {
                        let _ = apply_reconfigure(shared, peer_epoch, peer_list);
                    }
                }
                // a pre-v5 peer answers Error — alive, no gossip
                Ok(_) => shared.note_peer(peer, true),
                Err(_) => shared.note_peer(peer, false),
            }
        }
        // sleep in small steps so shutdown stays prompt
        let mut slept = Duration::ZERO;
        while slept < PROBE_INTERVAL && !shared.stop.load(Ordering::Relaxed) {
            thread::sleep(WAIT_TICK.min(PROBE_INTERVAL - slept));
            slept += WAIT_TICK;
        }
    }
}

/// Projects a full [`PipelineReport`] onto the wire-sized
/// [`JobReport`].
fn job_report(
    report: &PipelineReport,
    cubes: usize,
    dropped: usize,
    tier: CacheTier,
    service: Duration,
    trace: u64,
) -> JobReport {
    JobReport {
        lfsr_size: report.lfsr_size as u32,
        window: report.window as u32,
        segment: report.segment as u32,
        speedup: report.speedup,
        cubes: cubes as u64,
        dropped: dropped as u64,
        seeds: report.seeds as u64,
        tdv: report.tdv as u64,
        tsl_original: report.tsl_original,
        tsl_truncated: report.tsl_truncated,
        tsl_proposed: report.tsl_proposed,
        digest: report_digest(report),
        tier,
        service_micros: service.as_micros() as u64,
        // stamped by the connection handler at reply time; a worker
        // has no wire context
        conn: ConnStats::default(),
        trace,
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue mutex");
            loop {
                // stop beats pop: shutdown abandons the backlog (the
                // documented ServerHandle contract) instead of
                // draining arbitrarily many queued jobs first
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, WAIT_TICK)
                    .expect("queue mutex");
                queue = q;
            }
        };
        set_state(shared, job.id, JobState::Running);
        let popped = shared.clock.now_micros();
        shared.record_span(
            job.spec.trace.trace,
            job.spec.trace.parent,
            SpanKind::QueueWait,
            job.enqueued_micros,
            popped.saturating_sub(job.enqueued_micros),
            String::new,
        );
        let state = match execute(shared, &job) {
            Ok(report) => JobState::Done(report),
            Err(message) => JobState::Failed(message),
        };
        {
            // the counter must be bumped before the final state is
            // observable (same critical section), or a client that
            // sees Done could still read a stale jobs_done
            let mut jobs = shared.jobs.lock().expect("jobs mutex");
            jobs.set(job.id, state);
            shared.jobs_done.fetch_add(1, Ordering::Relaxed);
        }
        shared.jobs_cv.notify_all();
    }
}

fn set_state(shared: &Shared, id: u64, state: JobState) {
    shared.jobs.lock().expect("jobs mutex").set(id, state);
}

/// The active trace context a request carries, if any — what the
/// connection handler's recv/decode span is attributed to.
fn request_trace(request: &Request) -> Option<TraceContext> {
    match request {
        Request::Submit(spec) | Request::SubmitDirect(spec) if spec.trace.is_active() => {
            Some(spec.trace)
        }
        _ => None,
    }
}

/// Answers one decoded request. `Wait` blocks (with a stop check);
/// everything else is immediate. `version` is the connection's agreed
/// protocol generation: a pre-v4 peer cannot parse `Redirect`, so its
/// plain submissions are served locally even on a non-owner shard
/// (exactly-once cluster-wide is a property of v4/balancer traffic;
/// legacy traffic degrades to at-least-once with bit-identical
/// answers).
fn respond(shared: &Shared, request: Request, version: u8) -> Response {
    match request {
        // negotiation is handled at the connection layer; a second
        // Hello mid-connection is a protocol violation
        Request::Hello(_) => Response::Error("codec already negotiated".to_string()),
        Request::Submit(spec) => {
            let trace = spec.trace;
            match shared.try_enqueue(spec, version < 4) {
                Ok(Enqueue::Accepted(id)) => Response::Accepted(id),
                Ok(Enqueue::Busy { queued, capacity }) => Response::Busy { queued, capacity },
                Ok(Enqueue::Redirect(addr)) => {
                    shared.record_span(
                        trace.trace,
                        trace.parent,
                        SpanKind::Redirect,
                        shared.clock.now_micros(),
                        0,
                        || format!("-> {addr}"),
                    );
                    Response::Redirect {
                        addr,
                        trace: trace.trace,
                    }
                }
                Err(message) => Response::Error(message),
            }
        }
        Request::SubmitDirect(spec) => match shared.try_enqueue(spec, true) {
            Ok(Enqueue::Accepted(id)) => Response::Accepted(id),
            Ok(Enqueue::Busy { queued, capacity }) => Response::Busy { queued, capacity },
            Ok(Enqueue::Redirect(_)) => {
                unreachable!("direct submissions are never redirected")
            }
            Err(message) => Response::Error(message),
        },
        Request::Poll(id) => {
            let jobs = shared.jobs.lock().expect("jobs mutex");
            match jobs.states.get(&id) {
                None => Response::Error(format!("unknown job id {id}")),
                Some(JobState::Queued) => Response::Phase(JobPhase::Queued),
                Some(JobState::Running) => Response::Phase(JobPhase::Running),
                Some(JobState::Done(report)) => Response::Done(*report),
                Some(JobState::Failed(message)) => Response::Failed {
                    message: message.clone(),
                    conn: ConnStats::default(),
                },
            }
        }
        Request::Wait(id) => {
            let mut jobs = shared.jobs.lock().expect("jobs mutex");
            loop {
                match jobs.states.get(&id) {
                    None => return Response::Error(format!("unknown job id {id}")),
                    Some(JobState::Done(report)) => return Response::Done(*report),
                    Some(JobState::Failed(message)) => {
                        return Response::Failed {
                            message: message.clone(),
                            conn: ConnStats::default(),
                        }
                    }
                    Some(JobState::Queued | JobState::Running) => {
                        if shared.stop.load(Ordering::Relaxed) {
                            return Response::Error("server shutting down".to_string());
                        }
                        let (j, _) = shared
                            .jobs_cv
                            .wait_timeout(jobs, WAIT_TICK)
                            .expect("jobs mutex");
                        jobs = j;
                    }
                }
            }
        }
        Request::Stats => Response::Stats(shared.stats()),
        Request::Replicate {
            key, bytes, trace, ..
        } => ingest_replica(shared, key, &bytes, trace),
        Request::TraceDump { trace } => Response::Spans(shared.span_dump(trace)),
        Request::Reconfigure { epoch, peers } => match apply_reconfigure(shared, epoch, peers) {
            Ok(epoch) => Response::Ack { epoch },
            Err(message) => Response::Error(message),
        },
        Request::Ping => {
            let (epoch, shard_id, peers) = shared.membership();
            Response::Pong {
                epoch,
                shard_id,
                peers,
            }
        }
    }
}

/// Serves one connection until the peer closes, errors or idles out.
///
/// The connection opens in legacy (plain-frame) mode; a v3 peer's
/// `Hello` upgrades it to the negotiated codec chain for every
/// subsequent message. Replies are stamped with the peer's own
/// protocol generation, so a v2 client decodes every answer it gets.
///
/// A codec failure — CRC mismatch, reordered chunks, a lying length or
/// total — is answered with one typed [`Response::Error`] and the
/// connection is closed: after corruption the chunk stream can no
/// longer be trusted to be in sync, so resynchronising would risk
/// misparsing, and the client's retry path owns recovery.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut transport = Transport::Legacy;
    // reply generation: mirrors the peer until negotiation pins v3
    let mut version = MIN_PROTOCOL_VERSION;
    let mut counted = false;
    // per-connection codec totals, echoed inside every v5 Done so a
    // client sees its own wire costs without a Stats round-trip
    let mut conn = ConnStats::default();
    loop {
        let (payload, rx) = match transport.read_message(&mut stream) {
            Ok(message) => message,
            Err(CodecError::Io(err)) => {
                // a lying frame-length field is detected corruption and
                // gets a typed answer; a vanished/idle peer just closes
                if err.kind() == io::ErrorKind::InvalidData && transport.is_framed() {
                    let reply = Response::Error(format!("codec: {err}")).encode_versioned(version);
                    let _ = transport.write_message(&mut stream, &reply);
                }
                return;
            }
            Err(err) => {
                if err.is_integrity() {
                    shared.codec.crc_rejects.fetch_add(1, Ordering::Relaxed);
                }
                let reply = Response::Error(format!("codec: {err}")).encode_versioned(version);
                let _ = transport.write_message(&mut stream, &reply);
                return;
            }
        };
        if transport.is_framed() {
            shared.codec.add_rx(rx);
            conn.frames_received += rx.frames;
            conn.raw_rx_bytes += rx.raw_bytes;
            conn.wire_rx_bytes += rx.wire_bytes;
        }
        let decode_start = shared.clock.now_micros();
        let mut response = match Request::decode(&payload) {
            Ok(Request::Hello(offer)) if !transport.is_framed() => {
                let agreed = CodecConfig::negotiate(offer);
                // the connection runs at min(peer, us): the ack's
                // version byte mirrors the agreement back, so a newer
                // client downgrades itself instead of sending messages
                // this build can't parse
                version = match peek_version(&payload) {
                    Some(v) if v < PROTOCOL_VERSION => v,
                    _ => PROTOCOL_VERSION,
                };
                if !counted {
                    counted = true;
                    shared.codec.connections_v3.fetch_add(1, Ordering::Relaxed);
                }
                // the ack travels as a plain frame; the codec applies
                // from the next message on
                let ack = Response::HelloAck(agreed).encode_versioned(version);
                if write_frame(&mut stream, &ack).is_err() {
                    return;
                }
                transport = Transport::Framed(Codec::new(agreed));
                continue;
            }
            Ok(request) => {
                if !counted {
                    counted = true;
                    shared.codec.connections_v2.fetch_add(1, Ordering::Relaxed);
                }
                // answer a legacy peer in its own generation
                if !transport.is_framed() {
                    version = match peek_version(&payload) {
                        Some(v) if v < PROTOCOL_VERSION => v,
                        _ => PROTOCOL_VERSION,
                    };
                }
                if let Some(ctx) = request_trace(&request) {
                    let now = shared.clock.now_micros();
                    shared.record_span(
                        ctx.trace,
                        ctx.parent,
                        SpanKind::RecvDecode,
                        decode_start,
                        now.saturating_sub(decode_start),
                        || format!("hop={}", ctx.hop),
                    );
                }
                respond(shared, request, version)
            }
            Err(e) => Response::Error(e.to_string()),
        };
        // the snapshot is taken at reply-build time: it covers every
        // frame up to and including this request, not the reply itself
        match response {
            Response::Done(ref mut report) if version >= 5 => report.conn = conn,
            // failures carry the same per-connection totals from v6 on
            Response::Failed {
                conn: ref mut failed_conn,
                ..
            } if version >= 6 => *failed_conn = conn,
            _ => {}
        }
        let reply_trace = match &response {
            Response::Done(report) => report.trace,
            _ => 0,
        };
        let tx_start = shared.clock.now_micros();
        match transport.write_message(&mut stream, &response.encode_versioned(version)) {
            Ok(tx) => {
                if transport.is_framed() {
                    shared.codec.add_tx(tx);
                    conn.frames_sent += tx.frames;
                    conn.raw_tx_bytes += tx.raw_bytes;
                    conn.wire_tx_bytes += tx.wire_bytes;
                }
                shared.record_span(
                    reply_trace,
                    0,
                    SpanKind::CodecTx,
                    tx_start,
                    shared.clock.now_micros().saturating_sub(tx_start),
                    || format!("{} wire bytes", tx.wire_bytes),
                );
            }
            Err(_) => return,
        }
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// A live slot in the accept gate: incremented on acquire, released
/// on drop — in every handler exit path, including panics, so a
/// crashing connection can never leak its slot.
struct ConnPermit {
    shared: Arc<Shared>,
}

impl ConnPermit {
    /// Claims a slot, or `None` when the gate is full. Lock-free: a
    /// compare-exchange loop on the active count.
    fn try_acquire(shared: &Arc<Shared>) -> Option<ConnPermit> {
        let mut active = shared.conn_active.load(Ordering::Relaxed);
        loop {
            if active >= shared.conn_max {
                return None;
            }
            match shared.conn_active.compare_exchange_weak(
                active,
                active + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(ConnPermit {
                        shared: Arc::clone(shared),
                    })
                }
                Err(now) => active = now,
            }
        }
    }
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.shared.conn_active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Dispatches one accepted connection: a handler thread inside the
/// gate, or a shed `Busy` reply on the accept thread when the gate is
/// full — the flood case costs one bounded write, never a thread.
fn dispatch_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    match ConnPermit::try_acquire(shared) {
        Some(permit) => {
            let shared = Arc::clone(shared);
            thread::spawn(move || {
                handle_connection(&shared, stream);
                drop(permit);
            });
        }
        None => {
            shared.conn_shed.fetch_add(1, Ordering::Relaxed);
            // a plain v2-stamped frame every client generation parses:
            // the codec never negotiated, and Busy's layout is
            // version-invariant. Bounded write so a dead peer can't
            // stall the accept loop.
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let reply = Response::Busy {
                queued: shared.conn_max as u32,
                capacity: shared.conn_max as u32,
            }
            .encode_versioned(MIN_PROTOCOL_VERSION);
            let _ = write_frame(&mut stream, &reply);
        }
    }
}

/// A bound (not yet serving) compression service.
///
/// [`Server::run`] serves on the calling thread forever (the CLI
/// path); [`Server::spawn`] serves on background threads and returns a
/// [`ServerHandle`] for orderly shutdown (the test/bench path).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket and sizes the worker pool, queue and
    /// cache from `options` (see [`ServeOptions`] for the defaults
    /// each `0` resolves to).
    ///
    /// # Errors
    ///
    /// I/O errors binding the address.
    pub fn bind(options: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let hw = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = if options.workers == 0 {
            hw
        } else {
            options.workers
        };
        let queue_capacity = if options.queue_depth == 0 {
            workers * 4
        } else {
            options.queue_depth
        };
        let job_threads = (hw / workers).max(1);
        let disk = match &options.store_dir {
            Some(dir) => Some(DiskTier::open(dir).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("store dir {}: {e}", dir.display()),
                )
            })?),
            None => None,
        };
        let max_connections = if options.max_connections == 0 {
            DEFAULT_MAX_CONNECTIONS
        } else {
            options.max_connections
        };
        let replicas = if options.replicas == 0 {
            DEFAULT_REPLICAS
        } else {
            options.replicas
        };
        let mut server = Server {
            listener,
            shared: Arc::new(Shared::new(
                workers,
                queue_capacity,
                options.cache_bytes,
                job_threads,
                disk,
                max_connections,
                replicas,
            )),
        };
        if let Some(spec) = &options.shard {
            server.set_shards(spec.clone()).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("shard config: {e}"))
            })?;
        }
        Ok(server)
    }

    /// Configures fleet membership on a bound-but-not-yet-serving
    /// server. This exists apart from [`ServeOptions::shard`] for
    /// tests that bind several servers on port 0 and only then know
    /// the fleet's real addresses.
    ///
    /// # Errors
    ///
    /// [`ShardError`] for a degenerate peer list or an out-of-range
    /// id.
    pub fn set_shards(&mut self, spec: ShardSpec) -> Result<(), ShardError> {
        let ring = spec.ring()?;
        let self_addr = spec.self_addr().to_string();
        let shared = Arc::get_mut(&mut self.shared)
            .expect("set_shards is called before any thread shares the server state");
        *shared.shards.get_mut().expect("shards mutex") = Some(ShardState {
            ring,
            id: Some(spec.id),
            self_addr,
        });
        Ok(())
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// I/O errors querying the socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Worker threads this server will run.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Bounded queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// Serves forever on the calling thread (workers on background
    /// threads). Only returns on an accept error.
    ///
    /// # Errors
    ///
    /// The first fatal `accept` error.
    pub fn run(self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        for _ in 0..shared.workers {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&shared));
        }
        if shared.shards.lock().expect("shards mutex").is_some() {
            let replicator = Arc::clone(&shared);
            thread::spawn(move || replicator_loop(&replicator));
            let prober = Arc::clone(&shared);
            thread::spawn(move || prober_loop(&prober));
        }
        loop {
            let (stream, _) = self.listener.accept()?;
            dispatch_connection(&shared, stream);
        }
    }

    /// Serves on background threads; the returned handle shuts the
    /// service down cleanly when asked (or when dropped).
    pub fn spawn(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("bound listener has an address");
        let shared = Arc::clone(&self.shared);
        let workers: Vec<JoinHandle<()>> = (0..shared.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let mut aux: Vec<JoinHandle<()>> = Vec::new();
        if shared.shards.lock().expect("shards mutex").is_some() {
            let replicator = Arc::clone(&shared);
            aux.push(thread::spawn(move || replicator_loop(&replicator)));
            let prober = Arc::clone(&shared);
            aux.push(thread::spawn(move || prober_loop(&prober)));
        }
        let accept_shared = Arc::clone(&shared);
        let listener = self.listener;
        let accept = thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                if accept_shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                dispatch_connection(&accept_shared, stream);
            }
        });
        ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
            aux,
        }
    }
}

/// Handle to a [`Server::spawn`]ed service: its address, and orderly
/// shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The replicator and prober threads of a sharded server.
    aux: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Telemetry snapshot, without a round-trip.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops accepting, drains nothing (queued jobs are abandoned;
    /// running jobs finish), and joins the accept and worker threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // unblock accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        self.shared.jobs_cv.notify_all();
        self.shared.repl_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for aux in self.aux.drain(..) {
            let _ = aux.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_testdata::{generate_test_set, CubeProfile};

    fn mini_spec() -> JobSpec {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let engine = Engine::builder()
            .window(16)
            .segment(4)
            .speedup(4)
            .build()
            .unwrap();
        JobSpec::new(&set, engine.config())
    }

    /// Backpressure is deterministic at the queue level: with no
    /// workers draining, capacity+1 submissions yield exactly one
    /// `Busy` and nothing is buffered past the bound.
    #[test]
    fn bounded_queue_rejects_with_busy_never_buffers() {
        let shared = Shared::new(1, 2, 1 << 20, 1, None, 256, 1);
        let spec = mini_spec();
        for _ in 0..2 {
            assert!(matches!(
                shared.try_enqueue(spec.clone(), false),
                Ok(Enqueue::Accepted(_))
            ));
        }
        match shared.try_enqueue(spec.clone(), false).unwrap() {
            Enqueue::Busy { queued, capacity } => {
                assert_eq!((queued, capacity), (2, 2));
            }
            other => panic!("queue overflowed its bound: {other:?}"),
        }
        assert_eq!(shared.queue.lock().unwrap().len(), 2);
        assert_eq!(shared.stats().busy_rejections, 1);
        // ids are distinct and monotone
        assert_eq!(shared.jobs.lock().unwrap().states.len(), 2);
    }

    #[test]
    fn queued_state_is_visible_before_the_job_is_poppable() {
        // regression: the Queued insert must precede queue visibility,
        // or a fast worker's finished state gets clobbered by the
        // submitter and the job hangs as Queued forever
        let shared = Shared::new(1, 4, 1 << 20, 1, None, 256, 1);
        let Enqueue::Accepted(id) = shared.try_enqueue(mini_spec(), false).unwrap() else {
            panic!("queue has room");
        };
        // simulate the fast worker: pop and finish before the
        // submitting thread does anything else
        let job = shared.queue.lock().unwrap().pop_front().unwrap();
        assert_eq!(job.id, id);
        set_state(&shared, id, JobState::Failed("finished first".into()));
        // try_enqueue already returned: nothing may overwrite this
        assert!(matches!(
            respond(&shared, Request::Poll(id), PROTOCOL_VERSION),
            Response::Failed { .. }
        ));
    }

    #[test]
    fn finished_retention_is_bounded_and_evicts_oldest() {
        let shared = Shared::new(1, 4, 1 << 20, 1, None, 256, 1);
        let overflow = 50u64;
        for id in 0..(FINISHED_RETENTION as u64 + overflow) {
            set_state(&shared, id, JobState::Failed("x".into()));
        }
        let jobs = shared.jobs.lock().unwrap();
        assert_eq!(jobs.states.len(), FINISHED_RETENTION);
        assert!(
            !jobs.states.contains_key(&0),
            "oldest finished entry must be evicted"
        );
        assert!(jobs
            .states
            .contains_key(&(FINISHED_RETENTION as u64 + overflow - 1)));
    }

    #[test]
    fn workers_abandon_the_backlog_on_stop() {
        let shared = Arc::new(Shared::new(1, 8, 1 << 20, 1, None, 256, 1));
        shared.try_enqueue(mini_spec(), false).unwrap();
        shared.stop.store(true, Ordering::Relaxed);
        let worker = Arc::clone(&shared);
        thread::spawn(move || worker_loop(&worker))
            .join()
            .expect("worker exits cleanly");
        assert_eq!(
            shared.queue.lock().unwrap().len(),
            1,
            "stop abandons queued jobs instead of draining them"
        );
        assert_eq!(shared.jobs_done.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn invalid_submissions_fail_at_the_door() {
        let shared = Shared::new(1, 4, 1 << 20, 1, None, 256, 1);
        let mut bad = mini_spec();
        bad.set_text = "no header".to_string();
        assert!(shared.try_enqueue(bad, false).is_err());
        let mut bad = mini_spec();
        bad.segment = 0;
        assert!(shared
            .try_enqueue(bad, false)
            .unwrap_err()
            .starts_with("config:"));
        let mut empty = mini_spec();
        empty.set_text = "chains 2 depth 3\n".to_string();
        assert!(shared.try_enqueue(empty, false).is_err());
        assert_eq!(shared.queue.lock().unwrap().len(), 0);
    }

    #[test]
    fn poll_and_wait_know_unknown_jobs() {
        let shared = Shared::new(1, 4, 1 << 20, 1, None, 256, 1);
        assert!(matches!(
            respond(&shared, Request::Poll(99), PROTOCOL_VERSION),
            Response::Error(_)
        ));
        assert!(matches!(
            respond(&shared, Request::Wait(99), PROTOCOL_VERSION),
            Response::Error(_)
        ));
    }

    /// A worker executing a queued job twice hits the cache the second
    /// time and produces an identical report (modulo telemetry).
    #[test]
    fn execute_is_deterministic_and_cache_flags_are_honest() {
        let shared = Shared::new(1, 4, 64 << 20, 1, None, 256, 1);
        let spec = mini_spec();
        shared.try_enqueue(spec.clone(), false).unwrap();
        shared.try_enqueue(spec, false).unwrap();
        let mut queue = shared.queue.lock().unwrap();
        let first = queue.pop_front().unwrap();
        let second = queue.pop_front().unwrap();
        drop(queue);
        assert_eq!(first.key, second.key, "same workload, same key");
        let cold = execute(&shared, &first).unwrap();
        let warm = execute(&shared, &second).unwrap();
        assert_eq!(cold.tier, CacheTier::Cold);
        assert_eq!(warm.tier, CacheTier::Memory);
        assert_eq!(cold.digest, warm.digest);
        assert_eq!(
            (cold.seeds, cold.tdv, cold.tsl_proposed),
            (warm.seeds, warm.tdv, warm.tsl_proposed)
        );
        let stats = shared.cache.lock().unwrap().stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    /// With a store dir configured, the same two-execution sequence
    /// writes through on the cold run; a fresh `Shared` on the same
    /// directory (a simulated restart) serves the job from the disk
    /// tier with no synthesis and a bit-identical digest.
    #[test]
    fn disk_tier_survives_a_simulated_restart() {
        let dir = std::env::temp_dir().join(format!("ss-server-disk-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let shared = Shared::new(
            1,
            4,
            64 << 20,
            1,
            Some(DiskTier::open(&dir).unwrap()),
            256,
            1,
        );
        let spec = mini_spec();
        shared.try_enqueue(spec.clone(), false).unwrap();
        let job = shared.queue.lock().unwrap().pop_front().unwrap();
        let cold = execute(&shared, &job).unwrap();
        assert_eq!(cold.tier, CacheTier::Cold);
        assert_eq!(shared.stats().store_writes, 1);
        drop(shared);

        // restart: fresh memory cache, same directory
        let shared = Shared::new(
            1,
            4,
            64 << 20,
            1,
            Some(DiskTier::open(&dir).unwrap()),
            256,
            1,
        );
        assert_eq!(shared.stats().disk.entries, 1, "index warm-started");
        shared.try_enqueue(spec, false).unwrap();
        let job = shared.queue.lock().unwrap().pop_front().unwrap();
        let warm = execute(&shared, &job).unwrap();
        assert_eq!(warm.tier, CacheTier::Disk);
        assert_eq!(warm.digest, cold.digest);
        let stats = shared.stats();
        assert_eq!(stats.disk.hits, 1);
        assert_eq!(stats.synthesis.count, 0, "no synthesis after restart");
        assert_eq!(stats.disk_corruptions, 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    fn sharded(peers: &[&str], id: usize) -> Shared {
        sharded_with_replicas(peers, id, 1)
    }

    fn sharded_with_replicas(peers: &[&str], id: usize, replicas: usize) -> Shared {
        let shared = Shared::new(1, 4, 1 << 20, 1, None, 256, replicas);
        let spec = ShardSpec {
            peers: peers.iter().map(|s| (*s).to_string()).collect(),
            id,
            epoch: 0,
        };
        *shared.shards.lock().unwrap() = Some(ShardState {
            ring: spec.ring().unwrap(),
            id: Some(spec.id),
            self_addr: spec.self_addr().to_string(),
        });
        shared
    }

    /// A sharded server redirects a plain v4 submission it does not
    /// own to the owner's address, serves the key it does own, and
    /// always serves direct submissions — on the canonical key, so a
    /// non-canonical text variant redirects to the same owner.
    #[test]
    fn non_owners_redirect_and_direct_submissions_stick() {
        let peers = ["10.0.0.1:7113", "10.0.0.2:7113", "10.0.0.3:7113"];
        let mut spec = mini_spec();
        let canonical_key = {
            let set = TestSet::from_text(&spec.set_text).unwrap();
            let mut c = spec.clone();
            c.set_text = set.to_text();
            cache_key(&c)
        };
        let ring = ShardRing::new(peers.iter().map(|s| (*s).to_string()).collect()).unwrap();
        let owner = ring.owner(canonical_key);
        let non_owner = (owner + 1) % peers.len();

        let shared = sharded(&peers, non_owner);
        match shared.try_enqueue(spec.clone(), false).unwrap() {
            Enqueue::Redirect(addr) => assert_eq!(addr, peers[owner]),
            other => panic!("expected a redirect, got {other:?}"),
        }
        assert_eq!(shared.stats().redirects, 1);
        assert_eq!(shared.queue.lock().unwrap().len(), 0, "nothing queued");

        // same workload, non-canonical text: same owner
        spec.set_text = format!("# comment\n{}", spec.set_text);
        match shared.try_enqueue(spec.clone(), false).unwrap() {
            Enqueue::Redirect(addr) => assert_eq!(addr, peers[owner]),
            other => panic!("expected a redirect, got {other:?}"),
        }

        // direct lands locally even on the non-owner (failover path)
        assert!(matches!(
            shared.try_enqueue(spec.clone(), true).unwrap(),
            Enqueue::Accepted(_)
        ));

        // the owner serves its own key
        let shared = sharded(&peers, owner);
        assert!(matches!(
            shared.try_enqueue(spec, false).unwrap(),
            Enqueue::Accepted(_)
        ));
        let stats = shared.stats();
        assert_eq!(stats.redirects, 0);
        assert_eq!((stats.shard_id, stats.shard_count), (owner as u32, 3));
    }

    /// Legacy peers never see a Redirect they cannot parse: a plain
    /// submission at a pre-v4 generation is served locally.
    #[test]
    fn legacy_submissions_are_served_locally_on_non_owners() {
        let peers = ["10.0.0.1:7113", "10.0.0.2:7113"];
        let spec = mini_spec();
        let key = {
            let set = TestSet::from_text(&spec.set_text).unwrap();
            let mut c = spec.clone();
            c.set_text = set.to_text();
            cache_key(&c)
        };
        let ring = ShardRing::new(peers.iter().map(|s| (*s).to_string()).collect()).unwrap();
        let non_owner = (ring.owner(key) + 1) % peers.len();
        let shared = sharded(&peers, non_owner);
        for version in [2, 3] {
            assert!(matches!(
                respond(&shared, Request::Submit(spec.clone()), version),
                Response::Accepted(_)
            ));
        }
        assert!(matches!(
            respond(&shared, Request::Submit(spec), PROTOCOL_VERSION),
            Response::Redirect { .. }
        ));
    }

    /// The accept gate: permits are bounded, shed connections get a
    /// parsable Busy reply without a handler thread, and dropping a
    /// permit frees its slot.
    #[test]
    fn accept_gate_bounds_connections_and_sheds_with_busy() {
        let shared = Arc::new(Shared::new(1, 4, 1 << 20, 1, None, 2, 1));
        let a = ConnPermit::try_acquire(&shared).expect("slot 1");
        let b = ConnPermit::try_acquire(&shared).expect("slot 2");
        assert!(
            ConnPermit::try_acquire(&shared).is_none(),
            "gate must be full at its bound"
        );
        assert_eq!(shared.conn_active.load(Ordering::Relaxed), 2);
        drop(a);
        let c = ConnPermit::try_acquire(&shared).expect("freed slot is reusable");
        drop(b);
        drop(c);
        assert_eq!(shared.conn_active.load(Ordering::Relaxed), 0);

        // end to end: a server bound at 1 connection sheds the second
        // with a typed Busy while the first is parked inside a handler
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let gate = Arc::new(Shared::new(1, 4, 1 << 20, 1, None, 1, 1));
        let accept_gate = Arc::clone(&gate);
        let accept = thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                dispatch_connection(&accept_gate, stream);
            }
        });
        let hold = TcpStream::connect(addr).unwrap();
        // wait until the first handler actually owns its permit
        while gate.conn_active.load(Ordering::Relaxed) == 0 {
            thread::yield_now();
        }
        let mut shed = TcpStream::connect(addr).unwrap();
        let payload = crate::protocol::read_frame(&mut shed).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Busy { queued, capacity } => assert_eq!((queued, capacity), (1, 1)),
            other => panic!("shed reply was {other:?}"),
        }
        accept.join().unwrap();
        assert_eq!(gate.stats().connections_shed, 1);
        assert_eq!(gate.stats().connections_max, 1);
        assert_eq!(gate.stats().connections_active, 1);
        drop(hold);
    }

    /// `Reconfigure` swaps the ring live: the epoch advances exactly
    /// once per new view, stale epochs are idempotent, departed peers
    /// are pruned from the health table, and a server reconfigured out
    /// of its own ring owns nothing (it redirects every plain
    /// submission). Unsharded servers refuse outright.
    #[test]
    fn reconfigure_swaps_the_ring_live_and_is_idempotent() {
        let shared = sharded_with_replicas(&["a:1", "b:1", "c:1"], 0, 2);
        shared.note_peer("c:1", false);
        assert_eq!(shared.stats().peers_down, 1);

        let epoch = apply_reconfigure(&shared, 1, vec!["a:1".into(), "b:1".into()]).unwrap();
        assert_eq!(epoch, 1);
        let stats = shared.stats();
        assert_eq!(
            (stats.epoch, stats.shard_count, stats.reconfigures),
            (1, 2, 1)
        );
        assert_eq!(stats.peers_down, 0, "departed peer pruned from health");

        // a stale epoch answers the epoch in force, changes nothing
        assert_eq!(
            apply_reconfigure(&shared, 1, vec!["z:1".into()]).unwrap(),
            1
        );
        assert_eq!(shared.stats().reconfigures, 1);

        // removed from its own ring: still serving, owns nothing
        apply_reconfigure(&shared, 2, vec!["b:1".into(), "c:1".into()]).unwrap();
        assert_eq!(shared.membership().1, u32::MAX);
        assert!(matches!(
            shared.try_enqueue(mini_spec(), false).unwrap(),
            Enqueue::Redirect(_)
        ));

        let plain = Shared::new(1, 4, 1 << 20, 1, None, 256, 1);
        assert!(apply_reconfigure(&plain, 1, vec!["a:1".into()]).is_err());
    }

    /// The re-replication delta: targets are exactly the members of
    /// the new replica set that neither held the key before nor are
    /// this server.
    #[test]
    fn replica_targets_cover_exactly_the_new_holders() {
        use crate::cache::Fnv64;
        let old = ShardRing::new(vec!["a:1".into(), "b:1".into(), "c:1".into()]).unwrap();
        let new =
            ShardRing::new(vec!["a:1".into(), "b:1".into(), "c:1".into(), "d:1".into()]).unwrap();
        for seed in 0..500u64 {
            let mut h = Fnv64::new();
            h.write_u64(seed);
            let key = h.finish();
            let old_set: HashSet<String> = old.replicas(key, 2).into_iter().collect();
            match replica_targets(&old, &new, key, 2, "a:1") {
                Some(targets) => {
                    for t in &targets {
                        assert!(!old_set.contains(t), "already a holder");
                        assert_ne!(t, "a:1", "never pushes to itself");
                        assert!(new.replicas(key, 2).contains(t), "not a new holder");
                    }
                }
                None => {
                    for t in new.replicas(key, 2) {
                        assert!(old_set.contains(&t) || t == "a:1");
                    }
                }
            }
        }
    }

    #[test]
    fn replication_queue_is_bounded_and_drops_are_counted() {
        let shared = Shared::new(1, 4, 1 << 20, 1, None, 256, 2);
        for _ in 0..(REPLICATION_QUEUE_DEPTH + 5) {
            shared.push_replication(ReplicationTask {
                key: 1,
                entry: None,
                targets: vec!["x:1".into()],
                trace: 0,
            });
        }
        assert_eq!(
            shared.repl_queue.lock().unwrap().len(),
            REPLICATION_QUEUE_DEPTH
        );
        assert_eq!(shared.stats().replica_queue_drops, 5);
    }

    /// Replica ingestion verifies before serving: garbage and lying
    /// digests are refused, a genuine envelope lands in the memory
    /// tier and serves bit-identically — with zero synthesis recorded,
    /// because ingestion is not service traffic.
    #[test]
    fn replica_ingestion_verifies_before_serving() {
        let shared = Shared::new(1, 4, 64 << 20, 1, None, 256, 2);
        assert!(matches!(
            ingest_replica(&shared, 7, &[0u8; 16], 0),
            Response::Error(_)
        ));
        assert_eq!(shared.stats().replicas_received, 0);

        // produce a genuine envelope on a second, unrelated server
        let producer = Shared::new(1, 4, 64 << 20, 1, None, 256, 1);
        producer.try_enqueue(mini_spec(), false).unwrap();
        let job = producer.queue.lock().unwrap().pop_front().unwrap();
        let cold = execute(&producer, &job).unwrap();
        let (key, entry) = producer.cache.lock().unwrap().entries().pop().unwrap();
        let artifact = Artifact {
            ctx: entry.ctx.clone(),
            set: entry.set.clone(),
            dropped: entry.dropped as u64,
            encoding: entry.encoding.clone(),
            report_digest: entry.report_digest,
        };

        let bytes = artifact.to_bytes(key);
        assert!(matches!(
            ingest_replica(&shared, key, &bytes, 0),
            Response::Ack { .. }
        ));
        let stats = shared.stats();
        assert_eq!(stats.replicas_received, 1);
        assert_eq!(stats.synthesis.count, 0, "ingestion never synthesizes");

        // the replica actually serves, bit-identical, from memory
        shared.try_enqueue(mini_spec(), true).unwrap();
        let job = shared.queue.lock().unwrap().pop_front().unwrap();
        let warm = execute(&shared, &job).unwrap();
        assert_eq!(warm.tier, CacheTier::Memory);
        assert_eq!(warm.digest, cold.digest);

        // a digest the artifacts cannot reproduce is refused
        let mut lying = artifact;
        lying.report_digest ^= 1;
        assert!(matches!(
            ingest_replica(&shared, key, &lying.to_bytes(key), 0),
            Response::Error(_)
        ));
        assert_eq!(shared.stats().replicas_received, 1);
    }

    /// `Ping` answers the membership view — and on an unsharded server
    /// the "not a member" sentinel, so probes never confuse modes.
    #[test]
    fn ping_answers_the_membership_view() {
        let shared = sharded(&["a:1", "b:1"], 1);
        match respond(&shared, Request::Ping, PROTOCOL_VERSION) {
            Response::Pong {
                epoch,
                shard_id,
                peers,
            } => {
                assert_eq!((epoch, shard_id), (0, 1));
                assert_eq!(peers, vec!["a:1".to_string(), "b:1".to_string()]);
            }
            other => panic!("expected Pong, got {other:?}"),
        }
        let plain = Shared::new(1, 4, 1 << 20, 1, None, 256, 1);
        match respond(&plain, Request::Ping, PROTOCOL_VERSION) {
            Response::Pong {
                epoch,
                shard_id,
                peers,
            } => {
                assert_eq!((epoch, shard_id), (0, u32::MAX));
                assert!(peers.is_empty());
            }
            other => panic!("expected Pong, got {other:?}"),
        }
    }
}
