//! Client side of the compression service: one TCP connection, typed
//! request/response calls, and a backpressure-aware submit loop.
//!
//! # Codec negotiation
//!
//! [`Client::connect`] opens the connection by offering the preferred
//! codec configuration in a plain-frame [`Request::Hello`]. A v3
//! server answers [`Response::HelloAck`] with the agreed parameters
//! and every subsequent message travels through the negotiated chunk
//! codec; an older server rejects the unfamiliar version with
//! [`Response::Error`], and the client transparently downgrades to the
//! legacy v2 single-frame mode — so one client binary speaks to both
//! server generations. [`Client::connect_legacy`] skips the offer
//! entirely and behaves exactly like a v2 client (useful for
//! compatibility testing). The ack is also where the *protocol*
//! generation is agreed: the server mirrors back `min(client, server)`
//! in the ack's version byte, and the client stamps every subsequent
//! request at that generation — a v4 client against a v3 server simply
//! runs the connection at v3.
//!
//! # Fleet routing
//!
//! Against a sharded fleet, [`Balancer`] replaces a bare [`Client`]:
//! it hashes each submission's content key on the shared
//! [`ShardRing`] and submits to the owning
//! shard, and fails over along the ring's rendezvous order when a
//! shard is down, saturated, or dies mid-call. Backpressure from
//! `Busy` replies is paced by [`RetryPolicy`] — decorrelated jitter
//! with an optional overall deadline — instead of the synchronized
//! exponential ladder that made saturated fleets retry in lockstep.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cache::cache_key;
use crate::codec::{Codec, CodecConfig, CodecError, Transport};
use crate::protocol::{
    peek_version, read_frame, write_frame, JobPhase, JobReport, JobSpec, Request, Response,
    ServerStats, Span, SpanDump, SpanKind, TraceContext, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::shard::{ShardError, ShardRing};
use ss_telemetry::{fresh_trace_id, span_id, wall_micros, TraceClock};

/// Error talking to the service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The connection dropped mid-exchange (unexpected EOF, reset,
    /// broken pipe). Retryable: reconnect and resubmit — submissions
    /// are idempotent under the content-addressed cache, so a retry
    /// costs at most a cache hit.
    Disconnected(io::Error),
    /// The codec chain rejected received frames (CRC mismatch,
    /// reordered or truncated chunks, malformed compression).
    Codec(CodecError),
    /// The peer sent a frame this build cannot decode.
    Wire(WireError),
    /// The server answered a protocol-level error (unknown job,
    /// malformed request, shutdown).
    Server(String),
    /// The job itself ran and failed (bad workload, engine error).
    Job(String),
    /// The server shed this connection at the accept gate — its
    /// concurrent-connection bound is full. Retryable: the gate drains
    /// as fast as connections close.
    Overloaded {
        /// Connections active when this one was shed.
        queued: u32,
        /// The server's concurrent-connection bound.
        capacity: u32,
    },
    /// A [`RetryPolicy`] deadline expired while the server kept
    /// answering `Busy`. Retryable by construction — every individual
    /// rejection was — but the caller's time budget ran out first.
    DeadlineExceeded {
        /// Total time spent backing off before giving up.
        waited: Duration,
        /// How many `Busy` rejections were absorbed.
        attempts: u32,
    },
    /// A sharded server declined the submission because another shard
    /// owns its content key; the payload is the owner's address.
    /// [`Balancer`] follows this transparently — it surfaces only when
    /// a bare [`Client`] submits to a non-owner.
    Redirected(String),
    /// The server answered with a message that makes no sense for the
    /// request (a peer bug).
    Unexpected(&'static str),
}

impl ClientError {
    /// Whether reconnecting and retrying the call can reasonably
    /// succeed (the failure was the connection or its timing, not the
    /// request itself).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Disconnected(_)
                | ClientError::Overloaded { .. }
                | ClientError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Disconnected(e) => write!(f, "connection dropped mid-exchange: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Job(m) => write!(f, "job failed: {m}"),
            ClientError::Overloaded { queued, capacity } => {
                write!(f, "server shed the connection ({queued}/{capacity} active)")
            }
            ClientError::DeadlineExceeded { waited, attempts } => write!(
                f,
                "deadline exceeded after {attempts} busy rejections ({waited:?} waited)"
            ),
            ClientError::Redirected(addr) => {
                write!(f, "key owned by shard {addr}; resubmit there")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) | ClientError::Disconnected(e) => Some(e),
            ClientError::Codec(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

/// Whether an I/O failure means the peer vanished (as opposed to a
/// local or protocol problem).
fn is_disconnect(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        if is_disconnect(&e) {
            ClientError::Disconnected(e)
        } else {
            ClientError::Io(e)
        }
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Io(err) => err.into(),
            other => ClientError::Codec(other),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Outcome of a single submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued under this job id.
    Accepted(u64),
    /// The bounded queue was full; retry later.
    Busy {
        /// Jobs queued at rejection time.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
}

/// A polled job's state.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Still in the bounded queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done(JobReport),
    /// Ran and failed.
    Failed(String),
}

/// Backoff pacing for `Busy` rejections: decorrelated jitter with an
/// optional overall deadline.
///
/// Each pause sleeps `min(cap, uniform(base, 3 × previous_sleep))` —
/// the classic decorrelated-jitter recurrence. Unlike the old
/// deterministic 1→256 ms doubling, two clients rejected by the same
/// saturated queue desynchronize immediately instead of hammering it
/// again in lockstep forever; unlike full jitter, the expected pause
/// still grows toward the cap while the queue stays full.
///
/// The jitter source is seedable so tests can pin the exact sleep
/// sequence; [`RetryPolicy::new`] seeds from process entropy. With
/// [`RetryPolicy::with_deadline`], the total time spent backing off is
/// bounded and overrunning it surfaces as the retryable
/// [`ClientError::DeadlineExceeded`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    base: Duration,
    cap: Duration,
    deadline: Option<Duration>,
    prev: Duration,
    waited: Duration,
    attempts: u32,
    rng: SmallRng,
}

impl RetryPolicy {
    const BASE: Duration = Duration::from_millis(1);
    const CAP: Duration = Duration::from_millis(256);

    /// A policy with the default 1 ms base / 256 ms cap, no deadline,
    /// and a jitter seed drawn from process entropy.
    pub fn new() -> RetryPolicy {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seeded(clock ^ (u64::from(std::process::id()) << 32))
    }

    /// A policy whose jitter sequence is a pure function of `seed` —
    /// deterministic backoff for tests.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base: Self::BASE,
            cap: Self::CAP,
            deadline: None,
            prev: Self::BASE,
            waited: Duration::ZERO,
            attempts: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Bounds the *total* time spent backing off across all retries of
    /// one run; overrunning it fails the run with
    /// [`ClientError::DeadlineExceeded`].
    pub fn with_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Rewinds the accumulated state (sleep ladder, waited time,
    /// attempt count) for a fresh run, keeping the jitter stream.
    pub fn reset(&mut self) {
        self.prev = self.base;
        self.waited = Duration::ZERO;
        self.attempts = 0;
    }

    /// `Busy` rejections absorbed since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The next decorrelated-jitter sleep:
    /// `min(cap, uniform(base, 3 × prev))`.
    fn next_sleep(&mut self) -> Duration {
        let base = self.base.as_micros() as u64;
        let hi = (self.prev.as_micros() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let sleep = Duration::from_micros(self.rng.gen_range(base..hi)).min(self.cap);
        self.prev = sleep;
        sleep
    }

    /// Absorbs one `Busy` rejection: sleeps the next jittered backoff,
    /// or fails once the deadline is spent.
    fn pause(&mut self) -> Result<(), ClientError> {
        self.attempts += 1;
        let mut sleep = self.next_sleep();
        if let Some(deadline) = self.deadline {
            if self.waited >= deadline {
                return Err(ClientError::DeadlineExceeded {
                    waited: self.waited,
                    attempts: self.attempts,
                });
            }
            // never sleep past the deadline; the next pause then fails
            sleep = sleep.min(deadline - self.waited);
        }
        std::thread::sleep(sleep);
        self.waited += sleep;
        Ok(())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// One synchronous connection to an `ss-server`.
///
/// Every call writes one request message and reads one response
/// message (each a single frame in legacy mode, one or more
/// CRC-guarded chunk frames after codec negotiation); the connection
/// can be reused for any number of calls.
///
/// ```no_run
/// use ss_server::{Client, JobSpec, ServeOptions, Server};
/// use ss_core::Engine;
/// use ss_testdata::WorkloadRegistry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let handle = Server::bind(&ServeOptions::default())?.spawn();
/// let engine = Engine::builder().window(24).segment(4).speedup(6).build()?;
/// let set = WorkloadRegistry::find("tiny-1").unwrap().test_set();
///
/// let mut client = Client::connect(handle.addr())?;
/// let (job, report) = client.run(&JobSpec::new(&set, engine.config()))?;
/// println!("job {job}: {} seeds, TSL {}", report.seeds, report.tsl_proposed);
/// # handle.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Client {
    stream: TcpStream,
    transport: Transport,
    /// Protocol generation stamped on requests: 3 after negotiation,
    /// 2 in legacy mode (so an old server decodes them).
    version: u8,
    /// Whether submissions are stamped with a fresh trace id when they
    /// carry none. On by default; a no-op below protocol v6 (the
    /// context field doesn't exist on the wire there).
    tracing: bool,
    /// The trace id of the most recent submission (0 when untraced).
    last_trace: u64,
}

impl Client {
    /// Connects and negotiates the preferred codec configuration,
    /// downgrading to legacy v2 single-frame mode when the server
    /// predates the codec.
    ///
    /// # Errors
    ///
    /// Transport errors, or a nonsensical negotiation answer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Self::connect_with(addr, CodecConfig::preferred())
    }

    /// Connects offering a specific codec configuration (the server
    /// may clamp the chunk size; the ack is authoritative).
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        offer: CodecConfig,
    ) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // the offer travels as a plain frame: no codec exists yet
        write_frame(&mut stream, &Request::Hello(offer).encode())?;
        let payload = read_frame(&mut stream)?;
        // the ack's version byte is the agreed generation: the server
        // stamps min(client, server), so a newer client downgrades
        // itself here instead of sending messages the peer can't parse
        let agreed_version = peek_version(&payload)
            .unwrap_or(MIN_PROTOCOL_VERSION)
            .clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
        match Response::decode(&payload)? {
            Response::HelloAck(agreed) => Ok(Client {
                stream,
                transport: Transport::Framed(Codec::new(agreed)),
                version: agreed_version,
                tracing: true,
                last_trace: 0,
            }),
            // the accept gate sheds before reading the offer: surface
            // the overload as its retryable error, not a dead client
            Response::Busy { queued, capacity } => {
                Err(ClientError::Overloaded { queued, capacity })
            }
            // an old server rejects the versioned Hello with a plain
            // error: fall back to speaking its generation
            Response::Error(_) => Ok(Client {
                stream,
                transport: Transport::Legacy,
                version: 2,
                tracing: true,
                last_trace: 0,
            }),
            _ => Err(ClientError::Unexpected("hello answered oddly")),
        }
    }

    /// Connects without negotiating — the connection behaves exactly
    /// like a protocol-v2 client (one plain frame per message).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect_legacy<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            transport: Transport::Legacy,
            version: 2,
            tracing: true,
            last_trace: 0,
        })
    }

    /// The codec configuration in effect, or `None` in legacy mode.
    pub fn codec_config(&self) -> Option<CodecConfig> {
        match self.transport {
            Transport::Framed(codec) => Some(codec.config()),
            Transport::Legacy => None,
        }
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.transport
            .write_message(&mut self.stream, &request.encode_versioned(self.version))?;
        let (payload, _) = self.transport.read_message(&mut self.stream)?;
        Ok(Response::decode(&payload)?)
    }

    /// The protocol generation agreed at connect time (2 in legacy
    /// mode).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Enables or disables trace stamping for future submissions
    /// (default on). Disabling never strips a context the caller put
    /// on the spec themselves.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The trace id of the most recent submission through this client
    /// — 0 when it was untraced (tracing off, or a pre-v6 peer).
    pub fn last_trace(&self) -> u64 {
        self.last_trace
    }

    /// Gives `spec` a trace context for this connection: a spec that
    /// already carries one keeps it verbatim; otherwise a fresh root
    /// trace is minted when tracing is on and the peer speaks v6.
    /// Either way [`Client::last_trace`] remembers what went out.
    fn stamp(&mut self, spec: &JobSpec) -> JobSpec {
        let mut spec = spec.clone();
        if !spec.trace.is_active() && self.tracing && self.version >= 6 {
            spec.trace = TraceContext::root(fresh_trace_id());
        }
        self.last_trace = if self.version >= 6 {
            spec.trace.trace
        } else {
            // the context never travels below v6 — whatever the spec
            // says, the server sees an untraced submission
            0
        };
        spec
    }

    /// Submits a job once; the caller decides what `Busy` means.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, [`ClientError::Server`] when the
    /// submission itself was rejected (malformed workload or config),
    /// or [`ClientError::Redirected`] when a sharded server says
    /// another shard owns this key.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        let spec = self.stamp(spec);
        self.submit_request(&Request::Submit(spec))
    }

    /// Submits bypassing shard ownership: a sharded server executes a
    /// `SubmitDirect` locally instead of redirecting, which is how the
    /// balancer lands work on a non-owner when the owner is down
    /// (redirect-following could otherwise loop). On a pre-v4
    /// connection this degrades to a plain submit — those servers
    /// never redirect anyway.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_direct(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        let spec = self.stamp(spec);
        let request = if self.version >= 4 {
            Request::SubmitDirect(spec)
        } else {
            Request::Submit(spec)
        };
        self.submit_request(&request)
    }

    fn submit_request(&mut self, request: &Request) -> Result<SubmitOutcome, ClientError> {
        match self.call(request)? {
            Response::Accepted(id) => Ok(SubmitOutcome::Accepted(id)),
            Response::Busy { queued, capacity } => Ok(SubmitOutcome::Busy { queued, capacity }),
            Response::Redirect { addr, .. } => Err(ClientError::Redirected(addr)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("submit answered oddly")),
        }
    }

    /// Non-blocking job status.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, or [`ClientError::Server`] for an
    /// unknown job id.
    pub fn poll(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        match self.call(&Request::Poll(job))? {
            Response::Phase(JobPhase::Queued) => Ok(JobStatus::Queued),
            Response::Phase(JobPhase::Running) => Ok(JobStatus::Running),
            Response::Done(report) => Ok(JobStatus::Done(report)),
            Response::Failed { message, .. } => Ok(JobStatus::Failed(message)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("poll answered oddly")),
        }
    }

    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, [`ClientError::Job`] when the job ran
    /// and failed, [`ClientError::Server`] for an unknown id or server
    /// shutdown.
    pub fn wait(&mut self, job: u64) -> Result<JobReport, ClientError> {
        match self.call(&Request::Wait(job))? {
            Response::Done(report) => Ok(report),
            Response::Failed { message, .. } => Err(ClientError::Job(message)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("wait answered oddly")),
        }
    }

    /// Probes the server's membership view: `(epoch, shard id, peer
    /// list)`; the shard id is `u32::MAX` when the server is unsharded
    /// or was reconfigured out of its ring. Needs a v5 peer.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, a protocol-level server error, or
    /// [`ClientError::Server`] when the peer predates v5.
    pub fn ping(&mut self) -> Result<(u64, u32, Vec<String>), ClientError> {
        if self.version < 5 {
            return Err(ClientError::Server(format!(
                "peer speaks v{}; Ping needs v5",
                self.version
            )));
        }
        match self.call(&Request::Ping)? {
            Response::Pong {
                epoch,
                shard_id,
                peers,
            } => Ok((epoch, shard_id, peers)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("ping answered oddly")),
        }
    }

    /// Installs a new membership view on the server (the admin side of
    /// live reconfiguration). Answers the epoch in force afterwards —
    /// `epoch` itself when the swap happened, the server's current
    /// epoch when the request was stale. Needs a v5 peer.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, [`ClientError::Server`] for a
    /// degenerate peer list, an unsharded server, or a pre-v5 peer.
    pub fn reconfigure(&mut self, epoch: u64, peers: Vec<String>) -> Result<u64, ClientError> {
        if self.version < 5 {
            return Err(ClientError::Server(format!(
                "peer speaks v{}; Reconfigure needs v5",
                self.version
            )));
        }
        match self.call(&Request::Reconfigure { epoch, peers })? {
            Response::Ack { epoch } => Ok(epoch),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("reconfigure answered oddly")),
        }
    }

    /// Aggregate server telemetry.
    ///
    /// # Errors
    ///
    /// Transport/wire failures or a protocol-level server error.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("stats answered oddly")),
        }
    }

    /// Drains the server's span ring for one trace (all traces when
    /// `trace` is 0 — a debugging convenience). The dump carries the
    /// server's `(wall, mono)` clock pair, so dumps from different
    /// shards can be [`stitched`](ss_telemetry::stitch) into one
    /// timeline. Needs a v6 peer.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, a protocol-level server error, or
    /// [`ClientError::Server`] when the peer predates v6.
    pub fn trace_dump(&mut self, trace: u64) -> Result<SpanDump, ClientError> {
        if self.version < 6 {
            return Err(ClientError::Server(format!(
                "peer speaks v{}; TraceDump needs v6",
                self.version
            )));
        }
        match self.call(&Request::TraceDump { trace })? {
            Response::Spans(dump) => Ok(dump),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("trace dump answered oddly")),
        }
    }

    /// Submit-and-wait with default backpressure handling: `Busy`
    /// retries pace themselves with fresh [`RetryPolicy`] jitter and
    /// no overall deadline — the queue bound guarantees progress as
    /// workers drain.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Client::wait`].
    pub fn run(&mut self, spec: &JobSpec) -> Result<(u64, JobReport), ClientError> {
        self.run_with(spec, &mut RetryPolicy::new())
    }

    /// Submit-and-wait pacing `Busy` retries with the caller's policy
    /// (its jitter seed makes tests deterministic; its deadline bounds
    /// the total wait).
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Client::wait`], plus
    /// [`ClientError::DeadlineExceeded`] from the policy.
    pub fn run_with(
        &mut self,
        spec: &JobSpec,
        policy: &mut RetryPolicy,
    ) -> Result<(u64, JobReport), ClientError> {
        self.run_inner(spec, policy, false)
    }

    /// [`Client::run_with`] submitting via [`Client::submit_direct`] —
    /// the balancer's failover path onto a non-owner shard.
    ///
    /// # Errors
    ///
    /// As [`Client::run_with`].
    pub fn run_direct_with(
        &mut self,
        spec: &JobSpec,
        policy: &mut RetryPolicy,
    ) -> Result<(u64, JobReport), ClientError> {
        self.run_inner(spec, policy, true)
    }

    fn run_inner(
        &mut self,
        spec: &JobSpec,
        policy: &mut RetryPolicy,
        direct: bool,
    ) -> Result<(u64, JobReport), ClientError> {
        // stamp once up front so every `Busy` retry resubmits the same
        // trace instead of minting a fresh id per attempt
        let spec = self.stamp(spec);
        let job = loop {
            let outcome = if direct {
                self.submit_direct(&spec)?
            } else {
                self.submit(&spec)?
            };
            match outcome {
                SubmitOutcome::Accepted(id) => break id,
                SubmitOutcome::Busy { .. } => policy.pause()?,
            }
        };
        Ok((job, self.wait(job)?))
    }
}

/// Outcome of one balanced submission.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancedRun {
    /// Ring index of the shard that served the job.
    pub shard: usize,
    /// The job id on that shard.
    pub job: u64,
    /// The finished report.
    pub report: JobReport,
    /// How many shards were skipped (down, saturated past the
    /// deadline, or dead mid-call) before one answered.
    pub failovers: u32,
    /// The trace id stamped on the submission (0 when tracing was off
    /// or the serving shard predates v6). Feed it to
    /// [`Balancer::trace_dump`] to reconstruct the job's timeline.
    pub trace: u64,
}

/// First down-mark duration after a failed exchange with a shard.
const DOWN_BASE: Duration = Duration::from_millis(50);

/// Longest a down mark may last before the next recovery probe.
const DOWN_CAP: Duration = Duration::from_secs(2);

/// One shard's entry in the balancer's health table: skip it until
/// `until`, then let one submission through as a recovery probe.
struct DownState {
    until: Instant,
    backoff: Duration,
}

/// Client-side fleet router: owns one lazy connection per shard,
/// hashes every submission's content key on the shared [`ShardRing`],
/// and runs each job on its owning shard — falling over along the
/// ring's rendezvous order when shards fail.
///
/// Failover semantics, in order, per submission:
///
/// 1. the owner is tried first with a plain submit (the server may
///    know a better owner for the *canonical* key and answer
///    [`Response::Redirect`]; the balancer follows that once);
/// 2. a shard that is unreachable, sheds the connection, dies
///    mid-call (one transparent reconnect is attempted first), or
///    stays `Busy` past the policy deadline is skipped, and the next
///    shard in rendezvous order is tried with a *direct* submit —
///    bypassing ownership so the fallback shard cannot redirect back
///    to the dead owner;
/// 3. non-retryable failures (malformed workload, engine error, wire
///    corruption) surface immediately — another shard would answer
///    the same.
///
/// Submissions are idempotent under the content-addressed cache, so a
/// retry on another shard costs at most one redundant cold run while
/// the owner is down.
///
/// ```no_run
/// use ss_server::{Balancer, JobSpec, RetryPolicy};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let spec: JobSpec = todo!();
/// let mut balancer = Balancer::new(vec![
///     "127.0.0.1:7211".into(),
///     "127.0.0.1:7212".into(),
///     "127.0.0.1:7213".into(),
/// ])?
/// .with_policy(RetryPolicy::new().with_deadline(Duration::from_secs(30)));
/// let run = balancer.run(&spec)?;
/// println!("shard {} served job {}", run.shard, run.job);
/// # Ok(())
/// # }
/// ```
pub struct Balancer {
    ring: ShardRing,
    conns: Vec<Option<Client>>,
    policy: RetryPolicy,
    /// Health table, parallel to the ring: `Some` marks a shard down.
    /// Marks expire on a decorrelated-jitter schedule, so a revived
    /// shard drains traffic back within one backoff and a dead one is
    /// probed ever more rarely (capped) instead of in lockstep.
    down: Vec<Option<DownState>>,
    /// Jitter source for down-mark durations.
    rng: SmallRng,
    /// Whether submissions are stamped with a fresh trace (default on).
    tracing: bool,
    /// Monotonic clock for the balancer's own spans.
    clock: TraceClock,
    /// Per-process sequence feeding [`span_id`].
    span_seq: u64,
    /// Spans the balancer recorded locally (failover hops, whole-run
    /// client-submit spans). Bounded: recording stops at capacity.
    local_spans: Vec<Span>,
}

/// Most spans a balancer keeps locally before dropping new ones.
const LOCAL_SPAN_CAPACITY: usize = 4096;

impl Balancer {
    /// Builds a balancer over the fleet's advertised addresses — the
    /// exact strings the shards were configured with, in any order.
    ///
    /// # Errors
    ///
    /// [`ShardError`] for a degenerate peer list.
    pub fn new(peers: Vec<String>) -> Result<Balancer, ShardError> {
        let ring = ShardRing::new(peers)?;
        let conns = (0..ring.len()).map(|_| None).collect();
        let down = (0..ring.len()).map(|_| None).collect();
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Ok(Balancer {
            ring,
            conns,
            policy: RetryPolicy::new(),
            down,
            rng: SmallRng::seed_from_u64(clock ^ u64::from(std::process::id())),
            tracing: true,
            clock: TraceClock::new(),
            span_seq: 0,
            local_spans: Vec::new(),
        })
    }

    /// Enables or disables trace stamping for future submissions
    /// (default on). A context the caller put on the spec themselves
    /// always travels regardless.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Records one balancer-side span (dropped when untraced or at
    /// capacity — the hot path never grows without bound).
    fn record_local(&mut self, trace: u64, kind: SpanKind, start_micros: u64, note: String) {
        if trace == 0 || self.local_spans.len() >= LOCAL_SPAN_CAPACITY {
            return;
        }
        self.span_seq += 1;
        self.local_spans.push(Span {
            trace,
            id: span_id(trace, self.span_seq),
            parent: 0,
            kind,
            start_micros,
            duration_micros: self.clock.now_micros().saturating_sub(start_micros),
            note,
        });
    }

    /// The spans this balancer recorded locally, packaged with its
    /// clock pair so they stitch alongside server dumps (conventional
    /// address label: `"client"`).
    pub fn local_dump(&self) -> SpanDump {
        SpanDump {
            wall_micros: wall_micros(),
            mono_micros: self.clock.now_micros(),
            recorded: self.local_spans.len() as u64,
            evicted: 0,
            spans: self.local_spans.clone(),
        }
    }

    /// Replaces the backoff policy (seeded for deterministic tests,
    /// or deadline-bounded so saturation fails over instead of
    /// blocking forever). The policy is reset before every shard
    /// attempt.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Balancer {
        self.policy = policy;
        self
    }

    /// The placement ring this balancer routes on.
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// The membership epoch of the ring this balancer routes on.
    pub fn epoch(&self) -> u64 {
        self.ring.epoch()
    }

    /// Marks a shard down, extending its mark on a decorrelated-jitter
    /// schedule: `uniform(base, 3 × previous)`, capped.
    fn mark_down(&mut self, shard: usize) {
        let backoff = match &self.down[shard] {
            Some(d) => (d.backoff * 3).min(DOWN_CAP),
            None => DOWN_BASE,
        };
        let lo = DOWN_BASE.as_micros() as u64;
        let hi = (backoff.as_micros() as u64).max(lo + 1);
        let wait = Duration::from_micros(self.rng.gen_range(lo..hi));
        self.down[shard] = Some(DownState {
            until: Instant::now() + wait,
            backoff,
        });
    }

    /// Whether a shard's down mark is still in force (an expired mark
    /// lets one submission through as the recovery probe).
    fn is_down(&self, shard: usize) -> bool {
        self.down[shard]
            .as_ref()
            .is_some_and(|d| Instant::now() < d.until)
    }

    /// One full attempt against one shard, maintaining its health
    /// entry: success or a redirect clears the mark (the shard
    /// answered — it is alive), a retryable failure extends it.
    fn try_shard(
        &mut self,
        shard: usize,
        spec: &JobSpec,
        direct: bool,
    ) -> Result<BalancedRun, ClientError> {
        match self.run_on(shard, spec, direct) {
            Ok((job, report)) => {
                self.down[shard] = None;
                Ok(BalancedRun {
                    shard,
                    job,
                    report,
                    failovers: 0,
                    trace: spec.trace.trace,
                })
            }
            // the server computed ownership on the canonical key and
            // knows better than our raw-text hash: follow that once
            Err(ClientError::Redirected(addr)) => {
                self.down[shard] = None;
                self.follow_redirect(&addr, spec)
            }
            Err(e) => {
                if e.is_retryable() || matches!(e, ClientError::Io(_)) {
                    self.mark_down(shard);
                }
                Err(e)
            }
        }
    }

    /// Routes one submission: owner first, then rendezvous-ordered
    /// failover. Shards under a live down mark are skipped outright —
    /// no connect timeout paid — unless every candidate is marked, in
    /// which case the marked shards are tried anyway (a servable key
    /// must never fail because the health table is pessimistic).
    ///
    /// # Errors
    ///
    /// The last shard's error when every shard failed retryably, or
    /// the first non-retryable error.
    pub fn run(&mut self, spec: &JobSpec) -> Result<BalancedRun, ClientError> {
        // the balancer mints the trace (rather than each per-shard
        // client) so every failover attempt travels under one id and
        // the whole exchange stitches into a single timeline
        let mut spec = spec.clone();
        if self.tracing && !spec.trace.is_active() {
            spec.trace = TraceContext::root(fresh_trace_id());
        }
        let trace = spec.trace.trace;
        let started = self.clock.now_micros();
        let key = cache_key(&spec);
        let ranked = self.ring.ranked(key);
        let mut failovers = 0u32;
        let mut last_err = None;
        let mut skipped: Vec<(usize, usize)> = Vec::new();
        for (attempt, &shard) in ranked.iter().enumerate() {
            let addr = self.ring.shards()[shard].clone();
            if self.is_down(shard) {
                let now = self.clock.now_micros();
                self.record_local(
                    trace,
                    SpanKind::FailoverHop,
                    now,
                    format!("{addr} marked down"),
                );
                skipped.push((attempt, shard));
                failovers += 1;
                continue;
            }
            // fallback shards are submitted direct: they don't own the
            // key, and redirecting back to a dead owner would loop
            spec.trace.hop = attempt as u32;
            let hop_start = self.clock.now_micros();
            match self.try_shard(shard, &spec, attempt > 0) {
                Ok(mut run) => {
                    run.failovers += failovers;
                    self.record_local(
                        trace,
                        SpanKind::ClientSubmit,
                        started,
                        format!("job {} on {addr}", run.job),
                    );
                    return Ok(run);
                }
                Err(e) if e.is_retryable() || matches!(e, ClientError::Io(_)) => {
                    self.record_local(
                        trace,
                        SpanKind::FailoverHop,
                        hop_start,
                        format!("{addr}: {e}"),
                    );
                    failovers += 1;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        // second pass: every unmarked shard failed, so the marked ones
        // are the only hope left — probe them despite their marks
        for (attempt, shard) in skipped {
            let addr = self.ring.shards()[shard].clone();
            spec.trace.hop = attempt as u32;
            let hop_start = self.clock.now_micros();
            match self.try_shard(shard, &spec, attempt > 0) {
                Ok(mut run) => {
                    run.failovers += failovers;
                    self.record_local(
                        trace,
                        SpanKind::ClientSubmit,
                        started,
                        format!("job {} on {addr}", run.job),
                    );
                    return Ok(run);
                }
                Err(e) if e.is_retryable() || matches!(e, ClientError::Io(_)) => {
                    self.record_local(
                        trace,
                        SpanKind::FailoverHop,
                        hop_start,
                        format!("{addr}: {e}"),
                    );
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        self.record_local(
            trace,
            SpanKind::ClientSubmit,
            started,
            "all shards failed".into(),
        );
        Err(last_err.unwrap_or(ClientError::Unexpected("no shards configured")))
    }

    /// Installs a membership view locally: fresh ring (stamped with
    /// `epoch`), fresh connections, clean health table.
    fn adopt(&mut self, epoch: u64, peers: Vec<String>) -> Result<(), ShardError> {
        let ring = ShardRing::new(peers)?.with_epoch(epoch);
        self.conns = (0..ring.len()).map(|_| None).collect();
        self.down = (0..ring.len()).map(|_| None).collect();
        self.ring = ring;
        Ok(())
    }

    /// Pings every shard and adopts the highest strictly-newer
    /// membership view any peer advertises — the balancer-side half of
    /// epoch gossip, the route by which a balancer that never saw the
    /// admin `Reconfigure` still converges. Returns the epoch in force
    /// afterwards.
    pub fn refresh_membership(&mut self) -> u64 {
        let mut best: Option<(u64, Vec<String>)> = None;
        for shard in 0..self.ring.len() {
            if self.ensure_conn(shard).is_err() {
                self.conns[shard] = None;
                continue;
            }
            match self.conns[shard].as_mut().unwrap().ping() {
                Ok((epoch, _, peers)) if epoch > self.ring.epoch() && !peers.is_empty() => {
                    if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
                        best = Some((epoch, peers));
                    }
                }
                Ok(_) => {}
                Err(_) => self.conns[shard] = None,
            }
        }
        if let Some((epoch, peers)) = best {
            let _ = self.adopt(epoch, peers);
        }
        self.ring.epoch()
    }

    /// Pushes a new membership view to the fleet: sends
    /// `Reconfigure{epoch, peers}` to every member of the union of the
    /// old and new rings (departing shards must learn they left too),
    /// then adopts the view locally. Succeeds when at least one peer
    /// acknowledged — epoch gossip converges the rest within a probe
    /// interval.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for a degenerate peer list, or the last
    /// peer's error when no peer acknowledged.
    pub fn reconfigure(&mut self, epoch: u64, peers: Vec<String>) -> Result<u64, ClientError> {
        ShardRing::new(peers.clone()).map_err(|e| ClientError::Server(e.to_string()))?;
        let mut targets: Vec<String> = self.ring.shards().to_vec();
        for peer in &peers {
            if !targets.contains(peer) {
                targets.push(peer.clone());
            }
        }
        let mut acks = 0u32;
        let mut last_err = None;
        for addr in &targets {
            match Client::connect(addr).and_then(|mut c| c.reconfigure(epoch, peers.clone())) {
                Ok(_) => acks += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if acks == 0 {
            return Err(last_err.unwrap_or(ClientError::Unexpected("no peers to reconfigure")));
        }
        self.adopt(epoch, peers)
            .map_err(|e| ClientError::Server(e.to_string()))?;
        Ok(epoch)
    }

    /// Aggregate telemetry from every reachable shard, in ring order.
    pub fn stats(&mut self) -> Vec<(String, Result<ServerStats, ClientError>)> {
        (0..self.ring.len())
            .map(|shard| {
                let addr = self.ring.shards()[shard].clone();
                let stats = self
                    .ensure_conn(shard)
                    .and_then(|_| self.conns[shard].as_mut().unwrap().stats());
                if stats.is_err() {
                    self.conns[shard] = None;
                }
                (addr, stats)
            })
            .collect()
    }

    /// One trace's spans from every reachable shard, in ring order —
    /// the raw material for a stitched cross-shard timeline (append
    /// [`Balancer::local_dump`] under the label `"client"` to include
    /// the balancer's own hops).
    pub fn trace_dump(&mut self, trace: u64) -> Vec<(String, Result<SpanDump, ClientError>)> {
        (0..self.ring.len())
            .map(|shard| {
                let addr = self.ring.shards()[shard].clone();
                let dump = self
                    .ensure_conn(shard)
                    .and_then(|_| self.conns[shard].as_mut().unwrap().trace_dump(trace));
                if dump.is_err() {
                    self.conns[shard] = None;
                }
                (addr, dump)
            })
            .collect()
    }

    fn ensure_conn(&mut self, shard: usize) -> Result<(), ClientError> {
        if self.conns[shard].is_none() {
            let addr = self.ring.shards()[shard].as_str();
            self.conns[shard] = Some(Client::connect(addr)?);
        }
        Ok(())
    }

    /// Runs on one shard, transparently reconnecting once when an
    /// idle-timed-out or dying connection drops mid-call.
    fn run_on(
        &mut self,
        shard: usize,
        spec: &JobSpec,
        direct: bool,
    ) -> Result<(u64, JobReport), ClientError> {
        for fresh in [false, true] {
            self.ensure_conn(shard)?;
            self.policy.reset();
            let client = self.conns[shard].as_mut().unwrap();
            let result = if direct {
                client.run_direct_with(spec, &mut self.policy)
            } else {
                client.run_with(spec, &mut self.policy)
            };
            match result {
                Err(e @ ClientError::Disconnected(_)) => {
                    self.conns[shard] = None;
                    if fresh {
                        return Err(e);
                    }
                }
                other => return other,
            }
        }
        unreachable!("second pass always returns")
    }

    /// Follows one redirect to the canonical owner; submits direct so
    /// a confused peer can't bounce us again.
    fn follow_redirect(&mut self, addr: &str, spec: &JobSpec) -> Result<BalancedRun, ClientError> {
        if let Some(shard) = self.ring.shards().iter().position(|a| a == addr) {
            let (job, report) = self.run_on(shard, spec, true)?;
            return Ok(BalancedRun {
                shard,
                job,
                report,
                failovers: 0,
                trace: spec.trace.trace,
            });
        }
        // an address outside our ring (rolling reconfiguration):
        // honor it with a one-shot connection
        let mut client = Client::connect(addr)?;
        self.policy.reset();
        let (job, report) = client.run_direct_with(spec, &mut self.policy)?;
        Ok(BalancedRun {
            shard: usize::MAX,
            job,
            report,
            failovers: 0,
            trace: spec.trace.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Same seed, same sleep sequence; different seed, different
    /// sequence; every sleep within [base, cap] — pinned so `Busy`
    /// retry tests stay deterministic.
    #[test]
    fn seeded_backoff_is_deterministic_jitter() {
        let mut a = RetryPolicy::seeded(7);
        let mut b = RetryPolicy::seeded(7);
        let mut c = RetryPolicy::seeded(8);
        let sleeps_a: Vec<Duration> = (0..32).map(|_| a.next_sleep()).collect();
        let sleeps_b: Vec<Duration> = (0..32).map(|_| b.next_sleep()).collect();
        let sleeps_c: Vec<Duration> = (0..32).map(|_| c.next_sleep()).collect();
        assert_eq!(sleeps_a, sleeps_b, "seeded jitter must be reproducible");
        assert_ne!(sleeps_a, sleeps_c, "different seeds must decorrelate");
        for s in &sleeps_a {
            assert!(*s >= RetryPolicy::BASE && *s <= RetryPolicy::CAP, "{s:?}");
        }
        // jitter, not a ladder: the tail must not be one constant value
        let tail = &sleeps_a[8..];
        assert!(
            tail.iter().any(|s| s != &tail[0]),
            "backoff degenerated into a deterministic ladder"
        );
        // reset rewinds the ladder: the next sleep is near base again
        a.reset();
        assert_eq!((a.attempts(), a.waited), (0, Duration::ZERO));
        assert!(a.next_sleep() < Duration::from_millis(3));
    }

    #[test]
    fn deadline_zero_fails_without_sleeping() {
        let mut policy = RetryPolicy::seeded(1).with_deadline(Duration::ZERO);
        match policy.pause() {
            Err(ClientError::DeadlineExceeded { waited, attempts }) => {
                assert_eq!(waited, Duration::ZERO);
                assert_eq!(attempts, 1);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(ClientError::DeadlineExceeded {
            waited: Duration::ZERO,
            attempts: 1
        }
        .is_retryable());
    }

    /// A server that answers every submission `Busy` forever: the run
    /// must absorb rejections with backoff and fail over to
    /// `DeadlineExceeded` instead of spinning for eternity.
    #[test]
    fn run_with_deadline_escapes_a_saturated_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // refuse the hello so the client drops to legacy framing,
            // then answer every request Busy
            let _ = read_frame(&mut stream).unwrap();
            write_frame(&mut stream, &Response::Error("no codec".into()).encode()).unwrap();
            while let Ok(payload) = read_frame(&mut stream) {
                assert!(matches!(Request::decode(&payload), Ok(Request::Submit(_))));
                let reply = Response::Busy {
                    queued: 4,
                    capacity: 4,
                };
                if write_frame(&mut stream, &reply.encode_versioned(2)).is_err() {
                    break;
                }
            }
        });

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.version(), 2, "fake server forces legacy");
        let mut policy = RetryPolicy::seeded(42).with_deadline(Duration::from_millis(20));
        let spec = JobSpec {
            set_text: "chains 1 depth 2\n1X\n".to_string(),
            window: 16,
            segment: 4,
            speedup: 4,
            lfsr_size: 0,
            lfsr_kind: ss_lfsr::LfsrKind::Galois,
            ps_taps: 3,
            hw_seed: 1,
            fill_seed: 1,
            trace: TraceContext::default(),
        };
        match client.run_with(&spec, &mut policy) {
            Err(ClientError::DeadlineExceeded { waited, attempts }) => {
                assert!(attempts >= 2, "only {attempts} rejections absorbed");
                assert!(waited >= Duration::from_millis(20));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        drop(client);
        server.join().unwrap();
    }
}
