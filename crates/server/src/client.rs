//! Client side of the compression service: one TCP connection, typed
//! request/response calls, and a backpressure-aware submit loop.
//!
//! # Codec negotiation
//!
//! [`Client::connect`] opens the connection by offering the preferred
//! codec configuration in a plain-frame [`Request::Hello`]. A v3
//! server answers [`Response::HelloAck`] with the agreed parameters
//! and every subsequent message travels through the negotiated chunk
//! codec; an older server rejects the unfamiliar version with
//! [`Response::Error`], and the client transparently downgrades to the
//! legacy v2 single-frame mode — so one client binary speaks to both
//! server generations. [`Client::connect_legacy`] skips the offer
//! entirely and behaves exactly like a v2 client (useful for
//! compatibility testing).

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::codec::{Codec, CodecConfig, CodecError, Transport};
use crate::protocol::{
    read_frame, write_frame, JobPhase, JobReport, JobSpec, Request, Response, ServerStats,
    WireError, PROTOCOL_VERSION,
};

/// Error talking to the service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The connection dropped mid-exchange (unexpected EOF, reset,
    /// broken pipe). Retryable: reconnect and resubmit — submissions
    /// are idempotent under the content-addressed cache, so a retry
    /// costs at most a cache hit.
    Disconnected(io::Error),
    /// The codec chain rejected received frames (CRC mismatch,
    /// reordered or truncated chunks, malformed compression).
    Codec(CodecError),
    /// The peer sent a frame this build cannot decode.
    Wire(WireError),
    /// The server answered a protocol-level error (unknown job,
    /// malformed request, shutdown).
    Server(String),
    /// The job itself ran and failed (bad workload, engine error).
    Job(String),
    /// The server answered with a message that makes no sense for the
    /// request (a peer bug).
    Unexpected(&'static str),
}

impl ClientError {
    /// Whether reconnecting and retrying the call can reasonably
    /// succeed (the failure was the connection, not the request).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Disconnected(_))
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Disconnected(e) => write!(f, "connection dropped mid-exchange: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Job(m) => write!(f, "job failed: {m}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) | ClientError::Disconnected(e) => Some(e),
            ClientError::Codec(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

/// Whether an I/O failure means the peer vanished (as opposed to a
/// local or protocol problem).
fn is_disconnect(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        if is_disconnect(&e) {
            ClientError::Disconnected(e)
        } else {
            ClientError::Io(e)
        }
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Io(err) => err.into(),
            other => ClientError::Codec(other),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Outcome of a single submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued under this job id.
    Accepted(u64),
    /// The bounded queue was full; retry later.
    Busy {
        /// Jobs queued at rejection time.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
}

/// A polled job's state.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Still in the bounded queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done(JobReport),
    /// Ran and failed.
    Failed(String),
}

/// One synchronous connection to an `ss-server`.
///
/// Every call writes one request message and reads one response
/// message (each a single frame in legacy mode, one or more
/// CRC-guarded chunk frames after codec negotiation); the connection
/// can be reused for any number of calls.
///
/// ```no_run
/// use ss_server::{Client, JobSpec, ServeOptions, Server};
/// use ss_core::Engine;
/// use ss_testdata::WorkloadRegistry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let handle = Server::bind(&ServeOptions::default())?.spawn();
/// let engine = Engine::builder().window(24).segment(4).speedup(6).build()?;
/// let set = WorkloadRegistry::find("tiny-1").unwrap().test_set();
///
/// let mut client = Client::connect(handle.addr())?;
/// let (job, report) = client.run(&JobSpec::new(&set, engine.config()))?;
/// println!("job {job}: {} seeds, TSL {}", report.seeds, report.tsl_proposed);
/// # handle.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Client {
    stream: TcpStream,
    transport: Transport,
    /// Protocol generation stamped on requests: 3 after negotiation,
    /// 2 in legacy mode (so an old server decodes them).
    version: u8,
}

impl Client {
    /// Connects and negotiates the preferred codec configuration,
    /// downgrading to legacy v2 single-frame mode when the server
    /// predates the codec.
    ///
    /// # Errors
    ///
    /// Transport errors, or a nonsensical negotiation answer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Self::connect_with(addr, CodecConfig::preferred())
    }

    /// Connects offering a specific codec configuration (the server
    /// may clamp the chunk size; the ack is authoritative).
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        offer: CodecConfig,
    ) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // the offer travels as a plain frame: no codec exists yet
        write_frame(&mut stream, &Request::Hello(offer).encode())?;
        let payload = read_frame(&mut stream)?;
        match Response::decode(&payload)? {
            Response::HelloAck(agreed) => Ok(Client {
                stream,
                transport: Transport::Framed(Codec::new(agreed)),
                version: PROTOCOL_VERSION,
            }),
            // an old server rejects the version-3 Hello with a plain
            // error: fall back to speaking its generation
            Response::Error(_) => Ok(Client {
                stream,
                transport: Transport::Legacy,
                version: 2,
            }),
            _ => Err(ClientError::Unexpected("hello answered oddly")),
        }
    }

    /// Connects without negotiating — the connection behaves exactly
    /// like a protocol-v2 client (one plain frame per message).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect_legacy<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            transport: Transport::Legacy,
            version: 2,
        })
    }

    /// The codec configuration in effect, or `None` in legacy mode.
    pub fn codec_config(&self) -> Option<CodecConfig> {
        match self.transport {
            Transport::Framed(codec) => Some(codec.config()),
            Transport::Legacy => None,
        }
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.transport
            .write_message(&mut self.stream, &request.encode_versioned(self.version))?;
        let (payload, _) = self.transport.read_message(&mut self.stream)?;
        Ok(Response::decode(&payload)?)
    }

    /// Submits a job once; the caller decides what `Busy` means.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, or [`ClientError::Server`] when the
    /// submission itself was rejected (malformed workload or config).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        match self.call(&Request::Submit(spec.clone()))? {
            Response::Accepted(id) => Ok(SubmitOutcome::Accepted(id)),
            Response::Busy { queued, capacity } => Ok(SubmitOutcome::Busy { queued, capacity }),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("submit answered oddly")),
        }
    }

    /// Non-blocking job status.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, or [`ClientError::Server`] for an
    /// unknown job id.
    pub fn poll(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        match self.call(&Request::Poll(job))? {
            Response::Phase(JobPhase::Queued) => Ok(JobStatus::Queued),
            Response::Phase(JobPhase::Running) => Ok(JobStatus::Running),
            Response::Done(report) => Ok(JobStatus::Done(report)),
            Response::Failed(m) => Ok(JobStatus::Failed(m)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("poll answered oddly")),
        }
    }

    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// Transport/wire failures, [`ClientError::Job`] when the job ran
    /// and failed, [`ClientError::Server`] for an unknown id or server
    /// shutdown.
    pub fn wait(&mut self, job: u64) -> Result<JobReport, ClientError> {
        match self.call(&Request::Wait(job))? {
            Response::Done(report) => Ok(report),
            Response::Failed(m) => Err(ClientError::Job(m)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("wait answered oddly")),
        }
    }

    /// Aggregate server telemetry.
    ///
    /// # Errors
    ///
    /// Transport/wire failures or a protocol-level server error.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("stats answered oddly")),
        }
    }

    /// Submit-and-wait with backpressure handling: `Busy` retries with
    /// exponential backoff (1 ms doubling to a 256 ms cap, no overall
    /// deadline — the queue bound guarantees progress as workers
    /// drain).
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Client::wait`].
    pub fn run(&mut self, spec: &JobSpec) -> Result<(u64, JobReport), ClientError> {
        let mut backoff = Duration::from_millis(1);
        let job = loop {
            match self.submit(spec)? {
                SubmitOutcome::Accepted(id) => break id,
                SubmitOutcome::Busy { .. } => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(256));
                }
            }
        };
        Ok((job, self.wait(job)?))
    }
}
