//! Content-addressed synthesis cache: FNV keying over `(cube set,
//! engine config)` and a size-bounded LRU of the expensive artifacts.
//!
//! A cache entry stores everything the encode stage produced —
//! synthesised [`HardwareCtx`], the filtered (encodable) [`TestSet`]
//! and the [`EncodingResult`] — so a repeated submission of the same
//! workload/config re-enters the staged flow at
//! [`Encoded::from_cached`](ss_core::Encoded::from_cached) and pays
//! only for the cheap later stages (embed → segment → finish), which
//! are bit-deterministic: a cache hit returns byte-identical results
//! to a cold run.
//!
//! Keys are 64-bit FNV-1a hashes over the canonical workload text and
//! every result-shaping engine knob (the `threads` knob is excluded —
//! results are bit-identical at every thread count). The map is
//! bounded by an approximate byte budget; insertion evicts
//! least-recently-used entries until the new entry fits, and an entry
//! larger than the whole budget is simply not cached.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use ss_core::{EncodingResult, HardwareCtx};
use ss_testdata::TestSet;

use crate::protocol::JobSpec;

// the hash moved to `ss-store` (both crates key artifacts with it);
// re-exported here so `ss_server::cache::Fnv64` keeps resolving
pub use ss_store::Fnv64;

/// The content-addressed key of a job: an FNV-1a hash over the
/// canonical cube-set text and every result-shaping engine knob.
///
/// The spec's `set_text` is hashed as transmitted; the server
/// canonicalises it (parse → `to_text`) before calling this, so
/// comment/whitespace variants of the same set share a key.
pub fn cache_key(spec: &JobSpec) -> u64 {
    let mut h = Fnv64::new();
    // version salt: bump if key semantics ever change
    h.write(b"ss-cache-v1");
    h.write(spec.set_text.as_bytes());
    h.write_u64(u64::from(spec.window));
    h.write_u64(u64::from(spec.segment));
    h.write_u64(spec.speedup);
    h.write_u64(u64::from(spec.lfsr_size));
    h.write_u64(match spec.lfsr_kind {
        ss_lfsr::LfsrKind::Fibonacci => 0,
        ss_lfsr::LfsrKind::Galois => 1,
    });
    h.write_u64(u64::from(spec.ps_taps));
    h.write_u64(spec.hw_seed);
    h.write_u64(spec.fill_seed);
    h.finish()
}

/// The artifacts one cold run produces and every warm run reuses.
#[derive(Debug)]
pub struct CachedArtifacts {
    /// The synthesised hardware (LFSR, phase shifter, expression
    /// table) for the pinned LFSR size.
    pub ctx: HardwareCtx,
    /// The encodable subset actually encoded (after dropping
    /// intrinsically unencodable cubes).
    pub set: TestSet,
    /// How many cubes were dropped as intrinsically unencodable.
    pub dropped: usize,
    /// The window-based seed encoding.
    pub encoding: EncodingResult,
    /// Digest of the finished report these artifacts deterministically
    /// produce (see [`report_digest`](crate::report_digest)) — carried
    /// so replication can build a verifiable store envelope without
    /// re-running the finish stages.
    pub report_digest: u64,
    /// The last trace that produced or served this entry (0 when every
    /// toucher was untraced). Carried so reconfigure-driven
    /// re-replication pushes attribute the copy to the trace that made
    /// it — pure telemetry, never part of the cache key or the result.
    pub trace: AtomicU64,
}

impl CachedArtifacts {
    /// Approximate resident bytes: the expression table dominates
    /// (`window * cells` rows of `stride` words), plus seeds and the
    /// cube set. Used for the LRU byte budget — an estimate is enough,
    /// the budget is a resource bound, not an accounting invariant.
    pub fn approx_bytes(&self) -> usize {
        let table = self.ctx.table();
        let table_bytes = table.window() * table.scan().cells() * table.stride() * 8;
        let seed_words = self.encoding.lfsr_size.div_ceil(64);
        let seeds_bytes = self.encoding.seeds.len() * (seed_words * 8 + 48);
        let set_bytes = self.set.len() * (self.set.config().cells().div_ceil(4) + 48);
        table_bytes + seeds_bytes + set_bytes + 256
    }
}

/// Counters a cache exposes for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident.
    pub bytes: usize,
    /// Byte budget.
    pub capacity_bytes: usize,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Inserts refused because the entry alone exceeded the whole
    /// budget — the over-capacity contract: such an entry is never
    /// cached, and the attempt evicts nothing.
    pub oversize_skips: u64,
}

struct Slot {
    artifacts: Arc<CachedArtifacts>,
    bytes: usize,
    last_used: u64,
}

/// Size-bounded LRU of [`CachedArtifacts`], keyed by [`cache_key`].
///
/// Not internally synchronised — the server wraps it in a `Mutex`
/// (lookups are O(1); eviction scans are O(entries), and the byte
/// budget keeps the entry count small).
pub struct ArtifactCache {
    map: HashMap<u64, Slot>,
    capacity_bytes: usize,
    bytes: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    oversize_skips: u64,
}

impl ArtifactCache {
    /// Creates a cache bounded at `capacity_bytes` of approximate
    /// resident artifact size.
    pub fn new(capacity_bytes: usize) -> Self {
        ArtifactCache {
            map: HashMap::new(),
            capacity_bytes,
            bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            oversize_skips: 0,
        }
    }

    /// Looks a key up, marking the entry most-recently-used and
    /// counting a hit when found; an absent key counts a miss.
    pub fn get(&mut self, key: u64) -> Option<Arc<CachedArtifacts>> {
        let found = self.lookup(key);
        if found.is_none() {
            self.record_miss();
        }
        found
    }

    /// [`get`](ArtifactCache::get) without the miss accounting: an
    /// absent key leaves the counters untouched. For callers that
    /// retry the lookup — the server's coalesced waiters poll this
    /// while an identical cold job is in flight, and only the worker
    /// that actually claims the cold path records the miss (via
    /// [`record_miss`](ArtifactCache::record_miss)), so the telemetry
    /// counts jobs, not polls.
    pub fn lookup(&mut self, key: u64) -> Option<Arc<CachedArtifacts>> {
        self.clock += 1;
        match self.map.get_mut(&key) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&slot.artifacts))
            }
            None => None,
        }
    }

    /// Counts one miss — the accounting half split off
    /// [`lookup`](ArtifactCache::lookup).
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Inserts an entry, evicting least-recently-used entries until it
    /// fits. An entry larger than the whole budget is not cached —
    /// the attempt is counted and changes *nothing* else: no eviction
    /// of resident entries, no byte-bound violation, no retry loop.
    /// Re-inserting an existing key refreshes the entry.
    pub fn insert(&mut self, key: u64, artifacts: Arc<CachedArtifacts>) {
        let bytes = artifacts.approx_bytes();
        if bytes > self.capacity_bytes {
            self.oversize_skips += 1;
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.capacity_bytes {
            let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, slot)| slot.last_used) else {
                break;
            };
            let slot = self.map.remove(&oldest).expect("key came from the map");
            self.bytes -= slot.bytes;
            self.evictions += 1;
        }
        self.clock += 1;
        self.bytes += bytes;
        self.map.insert(
            key,
            Slot {
                artifacts,
                bytes,
                last_used: self.clock,
            },
        );
    }

    /// Every resident `(key, entry)` pair, unordered, without touching
    /// recency or hit accounting — the enumeration a reconfigured
    /// shard walks to re-replicate keys whose ranked set changed.
    pub fn entries(&self) -> Vec<(u64, Arc<CachedArtifacts>)> {
        self.map
            .iter()
            .map(|(&key, slot)| (key, Arc::clone(&slot.artifacts)))
            .collect()
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            bytes: self.bytes,
            capacity_bytes: self.capacity_bytes,
            evictions: self.evictions,
            oversize_skips: self.oversize_skips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::{Encoded, Engine};
    use ss_testdata::{generate_test_set, CubeProfile};

    fn artifacts_for(seed: u64) -> Arc<CachedArtifacts> {
        let set = generate_test_set(&CubeProfile::mini(), seed);
        let engine = Engine::builder()
            .window(16)
            .segment(4)
            .speedup(4)
            .build()
            .unwrap();
        let ctx = engine.synthesize(&set).unwrap();
        let (encodable, dropped) = ctx.encodable_subset(&set);
        let encoding = Encoded::from_ctx_ref(&encodable, &ctx)
            .unwrap()
            .encoding()
            .clone();
        Arc::new(CachedArtifacts {
            ctx,
            set: encodable,
            dropped: dropped.len(),
            encoding,
            report_digest: seed,
            trace: AtomicU64::new(0),
        })
    }

    fn spec_with(window: u32, text: &str) -> JobSpec {
        JobSpec {
            set_text: text.to_string(),
            window,
            segment: 4,
            speedup: 6,
            lfsr_size: 0,
            lfsr_kind: ss_lfsr::LfsrKind::Fibonacci,
            ps_taps: 3,
            hw_seed: 1,
            fill_seed: 1,
            trace: crate::protocol::TraceContext::default(),
        }
    }

    #[test]
    fn key_separates_workloads_and_configs_but_not_threads() {
        let a = spec_with(24, "chains 1 depth 2\n1X\n");
        assert_eq!(cache_key(&a), cache_key(&a.clone()));
        assert_ne!(
            cache_key(&a),
            cache_key(&spec_with(25, "chains 1 depth 2\n1X\n"))
        );
        assert_ne!(
            cache_key(&a),
            cache_key(&spec_with(24, "chains 1 depth 2\n0X\n"))
        );
        let mut b = a.clone();
        b.fill_seed = 2;
        assert_ne!(cache_key(&a), cache_key(&b));
        // threads is not even a JobSpec field — the key is structurally
        // thread-agnostic; this line documents the intent
        assert_eq!(
            cache_key(&JobSpec::new(
                &ss_testdata::TestSet::from_text(&a.set_text).unwrap(),
                Engine::builder()
                    .window(24)
                    .segment(4)
                    .speedup(6)
                    .hw_seed(1)
                    .fill_seed(1)
                    .threads(7)
                    .build()
                    .unwrap()
                    .config(),
            )),
            cache_key(&JobSpec::new(
                &ss_testdata::TestSet::from_text(&a.set_text).unwrap(),
                Engine::builder()
                    .window(24)
                    .segment(4)
                    .speedup(6)
                    .hw_seed(1)
                    .fill_seed(1)
                    .threads(1)
                    .build()
                    .unwrap()
                    .config(),
            ))
        );
    }

    #[test]
    fn lru_bounds_bytes_and_evicts_oldest() {
        let a = artifacts_for(1);
        let per_entry = a.approx_bytes();
        // room for exactly two entries
        let mut cache = ArtifactCache::new(per_entry * 2 + per_entry / 2);
        cache.insert(1, Arc::clone(&a));
        cache.insert(2, artifacts_for(2));
        assert!(cache.get(1).is_some(), "touch 1 so 2 is the LRU");
        cache.insert(3, artifacts_for(3));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= stats.capacity_bytes);
        assert!(cache.get(2).is_none(), "2 was least recently used");
        assert!(cache.get(1).is_some() && cache.get(3).is_some());
    }

    #[test]
    fn oversize_entries_are_skipped_and_hits_share_ownership() {
        let a = artifacts_for(1);
        let mut cache = ArtifactCache::new(a.approx_bytes() - 1);
        cache.insert(1, Arc::clone(&a));
        assert_eq!(cache.stats().entries, 0, "too big to cache");
        assert!(cache.get(1).is_none());

        let mut cache = ArtifactCache::new(a.approx_bytes() * 4);
        cache.insert(1, Arc::clone(&a));
        let hit = cache.get(1).unwrap();
        assert!(Arc::ptr_eq(&hit, &a), "hit shares, never clones");
        // refresh with the same key does not double-count bytes
        cache.insert(1, Arc::clone(&a));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().bytes, a.approx_bytes());
    }

    /// Pins the over-capacity contract: an entry whose `approx_bytes`
    /// exceeds `capacity_bytes` is refused without touching anything
    /// resident — no mass eviction, no byte-bound violation, no spin —
    /// while an entry of exactly `capacity_bytes` is still cached.
    #[test]
    fn over_capacity_insert_evicts_nothing_and_is_counted() {
        let a = artifacts_for(1);
        let per_entry = a.approx_bytes();

        // the boundary itself is cacheable: == capacity fits
        let mut exact = ArtifactCache::new(per_entry);
        exact.insert(1, Arc::clone(&a));
        assert_eq!(exact.stats().entries, 1, "== capacity must cache");
        assert_eq!(exact.stats().oversize_skips, 0);

        // one byte over is not, even into an empty cache
        let mut small = ArtifactCache::new(per_entry - 1);
        small.insert(1, Arc::clone(&a));
        let s = small.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!(s.evictions, 0);
        assert_eq!(s.oversize_skips, 1);

        // and into a *populated* cache the refusal must not evict the
        // resident entries (the historical LRU failure mode this test
        // pins: "evict everything, then still not fit"). A wider
        // synthesis window makes a genuinely over-budget entry.
        let big = {
            let set = generate_test_set(&CubeProfile::mini(), 9);
            let engine = Engine::builder()
                .window(64)
                .segment(4)
                .speedup(4)
                .build()
                .unwrap();
            let ctx = engine.synthesize(&set).unwrap();
            let (encodable, dropped) = ctx.encodable_subset(&set);
            let encoding = Encoded::from_ctx_ref(&encodable, &ctx)
                .unwrap()
                .encoding()
                .clone();
            Arc::new(CachedArtifacts {
                ctx,
                set: encodable,
                dropped: dropped.len(),
                encoding,
                report_digest: 9,
                trace: AtomicU64::new(0),
            })
        };
        let mut cache = ArtifactCache::new(per_entry * 2 + per_entry / 2);
        assert!(
            big.approx_bytes() > cache.stats().capacity_bytes,
            "window-64 artifacts must exceed the 2.5-entry budget"
        );
        cache.insert(1, Arc::clone(&a));
        cache.insert(2, artifacts_for(2));
        let before = cache.stats();
        assert_eq!(before.entries, 2);

        cache.insert(3, big);
        let after = cache.stats();
        assert_eq!(after.entries, before.entries, "residents were evicted");
        assert_eq!(after.bytes, before.bytes);
        assert_eq!(after.evictions, 0);
        assert_eq!(after.oversize_skips, 1);
        assert!(after.bytes <= after.capacity_bytes);
        assert!(cache.get(3).is_none());
        assert!(cache.get(1).is_some() && cache.get(2).is_some());
    }
}
