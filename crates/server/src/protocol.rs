//! The `ss-server` wire protocol: length-prefixed, versioned binary
//! frames over any byte stream.
//!
//! # Frame grammar
//!
//! ```text
//! frame    := length payload
//! length   := u32 BE                  ; bytes in payload, <= 64 MiB
//! payload  := version tag body
//! version  := u8                      ; PROTOCOL_VERSION (currently 2)
//! tag      := u8                      ; message discriminant
//! body     := tag-specific fields
//! ```
//!
//! Scalar fields are big-endian fixed-width integers; strings are a
//! `u32` byte length followed by UTF-8 bytes. Every message — request
//! or response — is exactly one frame, and every request receives
//! exactly one response on the same connection, so a connection is a
//! simple synchronous request/response channel that can be reused for
//! any number of requests.
//!
//! Since version 3 a *message* is no longer necessarily a single
//! frame: after a [`Request::Hello`] / [`Response::HelloAck`]
//! negotiation (which itself travels as plain frames), both sides
//! speak through the [`codec`](crate::codec) chain, and one message
//! spans one or more CRC-guarded chunk frames. A v2 peer never sends
//! `Hello` and keeps the one-message-one-frame scheme unchanged; a
//! v3 server accepts both generations on the same port.
//!
//! Version 4 adds the fleet surface: [`Request::SubmitDirect`] (a
//! submission that bypasses the shard-ownership check — the balancer's
//! failover path), [`Response::Redirect`] (a sharded server telling a
//! v4 peer which shard owns the submitted key), and connection-gate /
//! shard counters appended to [`ServerStats`]. A server mirrors each
//! peer's generation — a v3 `Hello` is acked at v3 and the connection
//! stays on the v3 layout — so every older client keeps working.
//!
//! Version 5 adds the resilience surface: [`Request::Replicate`] (a
//! shard pushing a finished artifact envelope to a ring peer),
//! [`Request::Reconfigure`] (the admin path that swaps the fleet's
//! peer list under a new ring epoch without restarting any process),
//! [`Request::Ping`] / [`Response::Pong`] (lightweight membership
//! probes that also gossip the current epoch and peer list),
//! [`Response::Ack`], per-connection codec totals appended to
//! [`JobReport`], and replication/epoch counters appended to
//! [`ServerStats`]. All of it is v5-born: the new tags refuse to
//! decode below v5 and stamp at least v5 on encode, so every older
//! peer keeps speaking its own generation untouched.
//!
//! Version 6 adds the tracing surface: a [`TraceContext`] appended to
//! `Submit`/`SubmitDirect` (and echoed through `Replicate` and
//! `Redirect`), per-connection [`ConnStats`] appended to
//! [`Response::Failed`], a trace id echoed in [`JobReport`],
//! span-ring counters appended to [`ServerStats`], and the
//! [`Request::TraceDump`] / [`Response::Spans`] admin pair that drains
//! a server's span ring for one trace. As always the new fields are
//! trailing and version-gated — a v2–v5 peer negotiates tracing away
//! entirely and its byte layouts stay frozen.
//!
//! The version byte leads the payload so a future protocol bump is
//! detected before any tag is interpreted; a server that receives an
//! unknown version replies [`Response::Error`] (whose encoding is
//! frozen across versions).

use std::fmt;
use std::io::{Read, Write};

use ss_core::EngineConfig;
use ss_lfsr::LfsrKind;
use ss_testdata::TestSet;

pub use ss_telemetry::{Span, SpanDump, SpanKind, TraceContext};

use crate::codec::{CodecConfig, MAX_MESSAGE_BYTES};

/// Protocol version spoken by this build.
///
/// Version history: 1 — initial; 2 — [`JobReport::tier`] replaces the
/// boolean `cached` flag, and [`ServerStats`] carries per-tier
/// counters, per-phase latency histograms and persistent-store
/// telemetry; 3 — `Hello`/`HelloAck` codec negotiation (chunked
/// streaming, per-chunk CRC-32, optional compression) and
/// [`CodecCounters`] appended to [`ServerStats`]; 4 — the fleet
/// surface: `SubmitDirect`, `Redirect`, and connection-gate + shard
/// counters appended to [`ServerStats`]; 5 — the resilience surface:
/// `Replicate`/`Reconfigure`/`Ping`/`Pong`/`Ack`, per-connection
/// [`ConnStats`] appended to [`JobReport`], and ring-epoch +
/// replication counters appended to [`ServerStats`]; 6 — the tracing
/// surface: [`TraceContext`] on submissions (echoed through
/// `Replicate`/`Redirect`), `TraceDump`/`Spans`, [`ConnStats`] on
/// [`Response::Failed`], the trace id echoed in [`JobReport`], and
/// span-ring counters appended to [`ServerStats`].
pub const PROTOCOL_VERSION: u8 = 6;

/// Oldest protocol version this build still decodes. Messages from a
/// v2 peer are answered in v2 layout, so old clients keep working
/// against a new server (and a new client downgrades when an old
/// server rejects its `Hello`).
pub const MIN_PROTOCOL_VERSION: u8 = 2;

/// Hard ceiling on a single frame's payload, guarding both peers
/// against unbounded allocation from a hostile or corrupt stream.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Error decoding a frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// The peer speaks a different protocol version.
    Version(u8),
    /// Unknown message tag for this version.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Declared frame length exceeds [`MAX_FRAME_BYTES`].
    Oversize(usize),
    /// A field held a value outside its domain (enum discriminant out
    /// of range, trailing bytes, ...).
    BadField(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame payload is truncated"),
            WireError::Version(v) => write!(
                f,
                "peer speaks protocol version {v}, this build speaks {PROTOCOL_VERSION}"
            ),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Oversize(n) => write!(
                f,
                "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            ),
            WireError::BadField(name) => write!(f, "field {name} holds an invalid value"),
        }
    }
}

impl std::error::Error for WireError {}

/// A compression job as it travels over the wire: the workload (cube
/// set in the workspace text format) plus every engine knob that
/// shapes the result.
///
/// The `threads` knob deliberately does **not** travel: results are
/// bit-identical at every thread count, so the server picks its own
/// per-job parallelism (total capacity divided among workers) and the
/// cache key stays thread-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The cube set, serialised with `TestSet::to_text` (header +
    /// one `01X` cube per line).
    pub set_text: String,
    /// Window length `L`.
    pub window: u32,
    /// Segment size `S`.
    pub segment: u32,
    /// State Skip speedup factor `k`.
    pub speedup: u64,
    /// Explicit LFSR size, or 0 for the engine default (`smax + 4`).
    pub lfsr_size: u32,
    /// LFSR feedback structure.
    pub lfsr_kind: LfsrKind,
    /// Phase shifter taps per scan chain.
    pub ps_taps: u32,
    /// RNG seed for phase shifter synthesis.
    pub hw_seed: u64,
    /// RNG seed for the pseudorandom fill of free seed variables.
    pub fill_seed: u64,
    /// Distributed-tracing context (v6-only on the wire; the zero
    /// context means untraced). Never shapes results and never enters
    /// the cache key — two submissions differing only here are the
    /// same job.
    pub trace: TraceContext,
}

impl JobSpec {
    /// Builds a spec from a test set and an engine configuration
    /// (the `threads` knob is intentionally dropped; see the type
    /// docs).
    pub fn new(set: &TestSet, config: &EngineConfig) -> Self {
        JobSpec {
            set_text: set.to_text(),
            window: config.window as u32,
            segment: config.segment as u32,
            speedup: config.speedup,
            lfsr_size: config.lfsr_size.unwrap_or(0) as u32,
            lfsr_kind: config.lfsr_kind,
            ps_taps: config.ps_taps as u32,
            hw_seed: config.hw_seed,
            fill_seed: config.fill_seed,
            trace: TraceContext::default(),
        }
    }

    /// The same spec carrying `trace` — how a client stamps a
    /// submission into a trace.
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = trace;
        self
    }
}

/// Which cache tier served a job's synthesis + encode artifacts.
///
/// Ordered by cost: `Memory` skips everything but the cheap final
/// stages, `Disk` additionally rebuilds the expression table from the
/// stored parts, `Cold` pays the full synthesis + encode price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Nothing cached — full synthesis + encode ran.
    Cold,
    /// Served from the persistent artifact store (a restart survivor).
    Disk,
    /// Served from the in-memory LRU.
    Memory,
}

/// Per-connection wire totals as seen by the server at the moment a
/// job's `Done` reply is built (protocol v5): frame counts and
/// raw-vs-wire byte accounting for *this* connection only — the
/// connection-scoped slice of the server-global [`CodecCounters`].
///
/// All zeros on a legacy (pre-v3) connection, where no codec chain is
/// in play, and when talking to a pre-v5 server, where the field does
/// not travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnStats {
    /// Chunk frames the server wrote on this connection.
    pub frames_sent: u64,
    /// Chunk frames the server read on this connection.
    pub frames_received: u64,
    /// Message bytes handed to the codec for transmission.
    pub raw_tx_bytes: u64,
    /// Bytes actually put on the wire to carry them.
    pub wire_tx_bytes: u64,
    /// Message bytes reassembled from frames received.
    pub raw_rx_bytes: u64,
    /// Bytes read off the wire to carry them.
    pub wire_rx_bytes: u64,
}

/// Completed-job numbers the server returns — the serving-layer view
/// of a `PipelineReport`, plus cache and timing telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobReport {
    /// LFSR size `n` actually used (pinned before filtering).
    pub lfsr_size: u32,
    /// Window length `L`.
    pub window: u32,
    /// Segment size `S`.
    pub segment: u32,
    /// Speedup factor `k`.
    pub speedup: u64,
    /// Cubes in the submitted set (before unencodable filtering).
    pub cubes: u64,
    /// Intrinsically unencodable cubes dropped before encoding.
    pub dropped: u64,
    /// Seeds stored.
    pub seeds: u64,
    /// Test data volume in bits.
    pub tdv: u64,
    /// TSL of the plain window-based scheme.
    pub tsl_original: u64,
    /// TSL with truncation only (no State Skip).
    pub tsl_truncated: u64,
    /// TSL of the proposed State Skip scheme.
    pub tsl_proposed: u64,
    /// FNV digest over the full encoding (seed bits, placements) and
    /// TSL accounting — equal digests mean bit-identical results (see
    /// [`report_digest`](crate::report_digest)).
    pub digest: u64,
    /// Which cache tier served the synthesis + encode artifacts.
    pub tier: CacheTier,
    /// Server-side service time in microseconds (excludes queueing).
    pub service_micros: u64,
    /// This connection's wire totals at reply time (v5-only on the
    /// wire; zeroed when talking to an older server or over a legacy
    /// unframed connection).
    pub conn: ConnStats,
    /// The trace this job was submitted under, echoed back (v6-only
    /// on the wire; 0 when untraced or talking to an older server) —
    /// what a caller feeds `TraceDump` to reconstruct the timeline.
    pub trace: u64,
}

impl JobReport {
    /// Whether the synthesis + encode stages were served from *any*
    /// cache tier (the protocol-v1 `cached` flag).
    pub fn cached(&self) -> bool {
        !matches!(self.tier, CacheTier::Cold)
    }
}

/// Where a job currently is, as answered to [`Request::Poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// In the bounded queue, not yet claimed by a worker.
    Queued,
    /// Claimed by a worker, executing.
    Running,
}

/// Number of log₂-microsecond buckets in a [`PhaseHistogram`]. The
/// top bucket (≥ 2²³ µs ≈ 8.4 s) absorbs everything slower.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A latency histogram for one pipeline phase: sample count, summed
/// microseconds, and log₂-microsecond buckets (bucket `i` counts
/// samples with `2^i ≤ µs < 2^(i+1)`; bucket 0 also counts sub-µs
/// samples; the last bucket is open-ended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples in microseconds (for the mean).
    pub total_micros: u64,
    /// Log₂-microsecond buckets.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for PhaseHistogram {
    fn default() -> Self {
        PhaseHistogram {
            count: 0,
            total_micros: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl PhaseHistogram {
    /// Index of the bucket a sample of `micros` lands in.
    pub fn bucket_index(micros: u64) -> usize {
        if micros <= 1 {
            0
        } else {
            ((63 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, micros: u64) {
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
        self.buckets[Self::bucket_index(micros)] += 1;
    }

    /// Mean sample in microseconds, or 0 with no samples.
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another histogram into this one — the fleet-aggregate
    /// summary sums every shard's histograms bucket by bucket.
    pub fn merge(&mut self, other: &PhaseHistogram) {
        self.count += other.count;
        self.total_micros = self.total_micros.saturating_add(other.total_micros);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Approximate `p`-th percentile (`0.0 < p <= 1.0`) in
    /// microseconds: the inclusive upper bound of the first bucket the
    /// cumulative count reaches the rank in. Log₂ buckets bound the
    /// answer within 2× of the true sample; the open-ended top bucket
    /// answers `u64::MAX` ("slower than the histogram resolves"), and
    /// an empty histogram answers 0.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return if i == HISTOGRAM_BUCKETS - 1 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}

/// Hit/miss and occupancy counters for one cache tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Lookups served by this tier since startup.
    pub hits: u64,
    /// Lookups that fell through this tier since startup.
    pub misses: u64,
    /// Entries currently resident in the tier.
    pub entries: u64,
    /// (Approximate) bytes currently resident in the tier.
    pub bytes: u64,
    /// Tier capacity in bytes; 0 means unbounded (the disk tier).
    pub capacity_bytes: u64,
    /// Entries evicted since startup (LRU pressure for the memory
    /// tier; integrity-check removals for the disk tier).
    pub evictions: u64,
}

/// Wire-codec telemetry (protocol v3): connection generations, chunk
/// traffic, integrity rejections, and raw-vs-wire byte accounting for
/// the compression stage.
///
/// Travels only in v3 `Stats` replies; a v2 peer receives the stats
/// layout it expects, without these fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecCounters {
    /// Connections that never sent `Hello` (legacy v2 peers).
    pub connections_v2: u64,
    /// Connections that completed codec negotiation.
    pub connections_v3: u64,
    /// Chunk frames written by the server on framed connections.
    pub frames_sent: u64,
    /// Chunk frames read by the server on framed connections.
    pub frames_received: u64,
    /// Chunks rejected by the per-chunk CRC-32 check since startup.
    pub crc_rejects: u64,
    /// Message bytes handed to the codec for transmission.
    pub raw_tx_bytes: u64,
    /// Bytes actually put on the wire for those messages (compressed,
    /// plus chunk framing overhead).
    pub wire_tx_bytes: u64,
    /// Message bytes reassembled from received frames.
    pub raw_rx_bytes: u64,
    /// Bytes read off the wire to carry them.
    pub wire_rx_bytes: u64,
}

impl CodecCounters {
    /// Bytes the compression stage saved on transmit (0 when framing
    /// overhead ate the savings).
    pub fn tx_bytes_saved(&self) -> u64 {
        self.raw_tx_bytes.saturating_sub(self.wire_tx_bytes)
    }

    /// Transmit compression ratio `raw / wire` (1.0 when nothing has
    /// been sent).
    pub fn tx_ratio(&self) -> f64 {
        if self.wire_tx_bytes == 0 {
            1.0
        } else {
            self.raw_tx_bytes as f64 / self.wire_tx_bytes as f64
        }
    }
}

/// Aggregate server telemetry, answered to [`Request::Stats`]: queue
/// and worker state, per-tier cache counters, persistent-store
/// counters, and per-phase latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Worker threads serving the job queue.
    pub workers: u32,
    /// Bounded queue capacity.
    pub queue_capacity: u32,
    /// Jobs currently queued (not running).
    pub queued: u32,
    /// Jobs completed (successfully or not) since startup.
    pub jobs_done: u64,
    /// Submissions rejected with `Busy` since startup.
    pub busy_rejections: u64,
    /// Jobs that joined an identical in-flight cold computation
    /// instead of re-running it (request coalescing).
    pub coalesced: u64,
    /// The in-memory LRU tier.
    pub memory: TierStats,
    /// The persistent artifact-store tier (entries/bytes are 0 when no
    /// `--store-dir` is configured).
    pub disk: TierStats,
    /// Artifacts written through to the persistent store since
    /// startup.
    pub store_writes: u64,
    /// Artifact files rejected by an integrity check (envelope
    /// checksum or report-digest mismatch) since startup; each was
    /// evicted and recomputed cold.
    pub disk_corruptions: u64,
    /// Latency of the synthesis phase (LFSR + phase shifter +
    /// expression table), cold jobs only.
    pub synthesis: PhaseHistogram,
    /// Latency of the seed-encoding phase, cold jobs only.
    pub encode: PhaseHistogram,
    /// Latency of the embedding phase (every job).
    pub embed: PhaseHistogram,
    /// Latency of the segmentation + finish phase (every job).
    pub segment: PhaseHistogram,
    /// Wire-codec telemetry (v3-only on the wire; zeroed when talking
    /// to a v2 server).
    pub codec: CodecCounters,
    /// Connections currently inside the bounded accept gate (v4-only
    /// on the wire; zeroed when talking to an older server).
    pub connections_active: u32,
    /// Concurrent-connection bound of the accept gate (v4-only).
    pub connections_max: u32,
    /// Connections shed at the gate with a `Busy` reply because the
    /// bound was reached (v4-only).
    pub connections_shed: u64,
    /// Misrouted v4 submissions answered with [`Response::Redirect`]
    /// to the owning shard (v4-only).
    pub redirects: u64,
    /// This server's index into the fleet peer list (v4-only; 0 when
    /// unsharded — check `shard_count` first).
    pub shard_id: u32,
    /// Shards in the fleet this server belongs to (v4-only; 0 means
    /// the server is not sharded).
    pub shard_count: u32,
    /// Ring epoch this server is currently serving under (v5-only; 0
    /// until the first `Reconfigure`, and always 0 when unsharded).
    pub epoch: u64,
    /// Artifact envelopes this shard pushed to ring peers and saw
    /// acknowledged (v5-only).
    pub replicas_sent: u64,
    /// Artifact envelopes this shard accepted from ring peers after
    /// integrity verification (v5-only).
    pub replicas_received: u64,
    /// Replication work items dropped because the bounded write-behind
    /// queue was full or the envelope exceeded a frame (v5-only).
    pub replica_queue_drops: u64,
    /// `Reconfigure` messages that actually advanced the ring epoch
    /// (v5-only; stale or repeated epochs are acked but not counted).
    pub reconfigures: u64,
    /// Ring peers the health prober currently considers unreachable
    /// (v5-only).
    pub peers_down: u32,
    /// Spans ever recorded into this server's trace ring (v6-only).
    pub spans_recorded: u64,
    /// Spans overwritten in the trace ring under capacity pressure
    /// (v6-only).
    pub spans_evicted: u64,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Offer a codec configuration (v3 connection opener); answered
    /// with `HelloAck` carrying the agreed configuration. Travels as a
    /// plain frame — the codec starts with the *next* message.
    Hello(CodecConfig),
    /// Submit a job; answered with `Accepted` or `Busy` — or, on a
    /// sharded server that does not own the job's content key,
    /// `Redirect` (v4 peers only; older peers are served locally).
    Submit(JobSpec),
    /// Submit a job to *this* shard regardless of key ownership
    /// (v4-born): the balancer's failover path when the owning shard
    /// is down, and the reason a redirect chain can never loop.
    /// Answered with `Accepted` or `Busy`, never `Redirect`.
    SubmitDirect(JobSpec),
    /// Ask where a job is; answered with `Phase`, `Done` or `Failed`.
    Poll(u64),
    /// Block until a job finishes; answered with `Done` or `Failed`.
    Wait(u64),
    /// Fetch aggregate telemetry; answered with `Stats`.
    Stats,
    /// A ring peer pushing a finished artifact envelope for a key this
    /// server is a replica of (v5-born, shard-to-shard). The bytes are
    /// an `ss-store` artifact envelope for `key`; the receiver verifies
    /// it end to end before admitting it to its cache tiers. Answered
    /// with `Ack` (or `Error` if the envelope fails verification).
    Replicate {
        /// Ring epoch the sender was serving under.
        epoch: u64,
        /// Content key of the replicated artifact.
        key: u64,
        /// Serialised artifact envelope (`Artifact::to_bytes`).
        bytes: Vec<u8>,
        /// The trace that last produced or served the artifact, so the
        /// receiver's ingest span lands in the causing trace (v6-only
        /// on the wire; 0 when untraced).
        trace: u64,
    },
    /// Administratively swap the fleet's peer list (v5-born). An epoch
    /// above the server's current one atomically installs the new ring
    /// and triggers re-replication of keys whose ranked set changed; a
    /// stale or equal epoch is acked idempotently without any change.
    /// Answered with `Ack` carrying the epoch actually in force.
    Reconfigure {
        /// Monotonic ring epoch the new peer list is stamped with.
        epoch: u64,
        /// The full new fleet address list, in ring order.
        peers: Vec<String>,
    },
    /// Lightweight liveness + membership probe (v5-born); answered
    /// with `Pong` carrying the server's epoch, shard id, and peer
    /// list — the gossip channel epochs converge through.
    Ping,
    /// Drain the server's span ring for one trace (v6-born, admin);
    /// `trace` 0 asks for every resident span. Answered with `Spans`.
    TraceDump {
        /// The trace to dump, or 0 for everything.
        trace: u64,
    },
}

/// Server → client messages.
// `Stats` dwarfs the other variants (four phase histograms), but a
// `Response` is built once per request and dropped after one write —
// boxing would complicate every construction site to shrink a
// short-lived stack value nothing stores in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was queued under this id.
    Accepted(u64),
    /// The bounded queue is full — backpressure, retry later.
    Busy {
        /// Jobs currently queued.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
    /// The job is still in flight.
    Phase(JobPhase),
    /// The job finished.
    Done(JobReport),
    /// The job ran and failed (bad workload, engine error, ...).
    Failed {
        /// What went wrong.
        message: String,
        /// This connection's wire totals at reply time, exactly as a
        /// `Done` carries them (v6-only on the wire; zeroed when
        /// talking to an older server or over a legacy connection) —
        /// a failed submission still reports its frame/byte costs.
        conn: ConnStats,
    },
    /// Aggregate telemetry.
    Stats(ServerStats),
    /// Protocol-level error (unknown job id, malformed frame, version
    /// mismatch, shutdown).
    Error(String),
    /// The agreed codec configuration (answer to [`Request::Hello`]).
    /// Travels as a plain frame — the codec starts with the *next*
    /// message.
    HelloAck(CodecConfig),
    /// This shard does not own the submitted key (v4-born): the
    /// payload is the owning shard's advertised address. Only ever
    /// answers [`Request::Submit`] — a `SubmitDirect` is always served
    /// locally, so following one redirect always terminates.
    Redirect {
        /// The owning shard's advertised address.
        addr: String,
        /// The declined submission's trace, echoed back so the hop
        /// stays attributable (v6-only on the wire; 0 when untraced).
        trace: u64,
    },
    /// Liveness + membership answer to [`Request::Ping`] (v5-born):
    /// the ring epoch this server serves under, its shard id
    /// (`u32::MAX` when the server is not a member of its own ring or
    /// is unsharded), and its current peer list.
    Pong {
        /// Ring epoch in force on the answering server.
        epoch: u64,
        /// The answering server's index into `peers`, or `u32::MAX`.
        shard_id: u32,
        /// The answering server's current fleet address list.
        peers: Vec<String>,
    },
    /// Acknowledgement for [`Request::Replicate`] and
    /// [`Request::Reconfigure`] (v5-born), carrying the ring epoch in
    /// force after the request was applied.
    Ack {
        /// Ring epoch in force on the answering server.
        epoch: u64,
    },
    /// The span-ring contents for one trace (v6-born, answers
    /// [`Request::TraceDump`]): the matching spans plus the clock pair
    /// that lets a stitcher place them on the wall clock.
    Spans(SpanDump),
}

// ---------------------------------------------------------------- tags

const TAG_SUBMIT: u8 = 1;
const TAG_POLL: u8 = 2;
const TAG_WAIT: u8 = 3;
const TAG_STATS: u8 = 4;
const TAG_HELLO: u8 = 5;
const TAG_SUBMIT_DIRECT: u8 = 6;
const TAG_REPLICATE: u8 = 7;
const TAG_RECONFIGURE: u8 = 8;
const TAG_PING: u8 = 9;
const TAG_TRACE_DUMP: u8 = 10;

const TAG_ACCEPTED: u8 = 101;
const TAG_BUSY: u8 = 102;
const TAG_PHASE: u8 = 103;
const TAG_DONE: u8 = 104;
const TAG_FAILED: u8 = 105;
const TAG_STATS_REPLY: u8 = 106;
const TAG_ERROR: u8 = 107;
const TAG_HELLO_ACK: u8 = 108;
const TAG_REDIRECT: u8 = 109;
const TAG_PONG: u8 = 110;
const TAG_ACK: u8 = 111;
const TAG_SPANS: u8 = 112;

// ------------------------------------------------------------- writer

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_peers(buf: &mut Vec<u8>, peers: &[String]) {
    put_u32(buf, peers.len() as u32);
    for peer in peers {
        put_str(buf, peer);
    }
}

// ------------------------------------------------------------- reader

/// Forward-only cursor over a frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        // chunked v3 messages may legitimately exceed one frame, so
        // the string cap is the message ceiling, not the frame cap
        if len as u64 > MAX_MESSAGE_BYTES {
            return Err(WireError::Oversize(len));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        if len as u64 > MAX_MESSAGE_BYTES {
            return Err(WireError::Oversize(len));
        }
        Ok(self.take(len)?.to_vec())
    }

    fn peers(&mut self) -> Result<Vec<String>, WireError> {
        let count = self.u32()? as usize;
        // a fleet list is short; push per element rather than trusting
        // a wire-declared capacity
        let mut peers = Vec::new();
        for _ in 0..count {
            peers.push(self.string()?);
        }
        Ok(peers)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::BadField("trailing bytes"))
        }
    }
}

fn kind_to_u8(kind: LfsrKind) -> u8 {
    match kind {
        LfsrKind::Fibonacci => 0,
        LfsrKind::Galois => 1,
    }
}

fn kind_from_u8(v: u8) -> Result<LfsrKind, WireError> {
    match v {
        0 => Ok(LfsrKind::Fibonacci),
        1 => Ok(LfsrKind::Galois),
        _ => Err(WireError::BadField("lfsr_kind")),
    }
}

fn put_spec(buf: &mut Vec<u8>, spec: &JobSpec, version: u8) {
    put_u32(buf, spec.window);
    put_u32(buf, spec.segment);
    put_u64(buf, spec.speedup);
    put_u32(buf, spec.lfsr_size);
    put_u8(buf, kind_to_u8(spec.lfsr_kind));
    put_u32(buf, spec.ps_taps);
    put_u64(buf, spec.hw_seed);
    put_u64(buf, spec.fill_seed);
    put_str(buf, &spec.set_text);
    // pre-v6 peers expect the spec to end at the set text — which is
    // exactly how tracing is negotiated away on old connections
    if version >= 6 {
        put_u64(buf, spec.trace.trace);
        put_u64(buf, spec.trace.parent);
        put_u32(buf, spec.trace.hop);
    }
}

fn read_spec(r: &mut Reader<'_>, version: u8) -> Result<JobSpec, WireError> {
    Ok(JobSpec {
        window: r.u32()?,
        segment: r.u32()?,
        speedup: r.u64()?,
        lfsr_size: r.u32()?,
        lfsr_kind: kind_from_u8(r.u8()?)?,
        ps_taps: r.u32()?,
        hw_seed: r.u64()?,
        fill_seed: r.u64()?,
        set_text: r.string()?,
        trace: if version >= 6 {
            TraceContext {
                trace: r.u64()?,
                parent: r.u64()?,
                hop: r.u32()?,
            }
        } else {
            TraceContext::default()
        },
    })
}

fn put_span(buf: &mut Vec<u8>, span: &Span) {
    put_u64(buf, span.trace);
    put_u64(buf, span.id);
    put_u64(buf, span.parent);
    put_u8(buf, span.kind as u8);
    put_u64(buf, span.start_micros);
    put_u64(buf, span.duration_micros);
    put_str(buf, &span.note);
}

fn read_span(r: &mut Reader<'_>) -> Result<Span, WireError> {
    Ok(Span {
        trace: r.u64()?,
        id: r.u64()?,
        parent: r.u64()?,
        kind: SpanKind::from_u8(r.u8()?).ok_or(WireError::BadField("span kind"))?,
        start_micros: r.u64()?,
        duration_micros: r.u64()?,
        note: r.string()?,
    })
}

fn put_span_dump(buf: &mut Vec<u8>, dump: &SpanDump) {
    put_u64(buf, dump.wall_micros);
    put_u64(buf, dump.mono_micros);
    put_u64(buf, dump.recorded);
    put_u64(buf, dump.evicted);
    put_u32(buf, dump.spans.len() as u32);
    for span in &dump.spans {
        put_span(buf, span);
    }
}

fn read_span_dump(r: &mut Reader<'_>) -> Result<SpanDump, WireError> {
    let wall_micros = r.u64()?;
    let mono_micros = r.u64()?;
    let recorded = r.u64()?;
    let evicted = r.u64()?;
    let count = r.u32()? as usize;
    // a span ring is small; push per element rather than trusting a
    // wire-declared capacity
    let mut spans = Vec::new();
    for _ in 0..count {
        spans.push(read_span(r)?);
    }
    Ok(SpanDump {
        wall_micros,
        mono_micros,
        recorded,
        evicted,
        spans,
    })
}

fn put_conn_stats(buf: &mut Vec<u8>, c: &ConnStats) {
    put_u64(buf, c.frames_sent);
    put_u64(buf, c.frames_received);
    put_u64(buf, c.raw_tx_bytes);
    put_u64(buf, c.wire_tx_bytes);
    put_u64(buf, c.raw_rx_bytes);
    put_u64(buf, c.wire_rx_bytes);
}

fn read_conn_stats(r: &mut Reader<'_>) -> Result<ConnStats, WireError> {
    Ok(ConnStats {
        frames_sent: r.u64()?,
        frames_received: r.u64()?,
        raw_tx_bytes: r.u64()?,
        wire_tx_bytes: r.u64()?,
        raw_rx_bytes: r.u64()?,
        wire_rx_bytes: r.u64()?,
    })
}

fn put_report(buf: &mut Vec<u8>, report: &JobReport, version: u8) {
    put_u32(buf, report.lfsr_size);
    put_u32(buf, report.window);
    put_u32(buf, report.segment);
    put_u64(buf, report.speedup);
    put_u64(buf, report.cubes);
    put_u64(buf, report.dropped);
    put_u64(buf, report.seeds);
    put_u64(buf, report.tdv);
    put_u64(buf, report.tsl_original);
    put_u64(buf, report.tsl_truncated);
    put_u64(buf, report.tsl_proposed);
    put_u64(buf, report.digest);
    put_u8(
        buf,
        match report.tier {
            CacheTier::Cold => 0,
            CacheTier::Disk => 1,
            CacheTier::Memory => 2,
        },
    );
    put_u64(buf, report.service_micros);
    // pre-v5 peers expect the report to end at the service time
    if version >= 5 {
        put_conn_stats(buf, &report.conn);
    }
    // ... and pre-v6 peers at the connection stats: the trace echo is
    // v6-born
    if version >= 6 {
        put_u64(buf, report.trace);
    }
}

fn read_report(r: &mut Reader<'_>, version: u8) -> Result<JobReport, WireError> {
    Ok(JobReport {
        lfsr_size: r.u32()?,
        window: r.u32()?,
        segment: r.u32()?,
        speedup: r.u64()?,
        cubes: r.u64()?,
        dropped: r.u64()?,
        seeds: r.u64()?,
        tdv: r.u64()?,
        tsl_original: r.u64()?,
        tsl_truncated: r.u64()?,
        tsl_proposed: r.u64()?,
        digest: r.u64()?,
        tier: match r.u8()? {
            0 => CacheTier::Cold,
            1 => CacheTier::Disk,
            2 => CacheTier::Memory,
            _ => return Err(WireError::BadField("tier")),
        },
        service_micros: r.u64()?,
        conn: if version >= 5 {
            read_conn_stats(r)?
        } else {
            ConnStats::default()
        },
        trace: if version >= 6 { r.u64()? } else { 0 },
    })
}

fn put_tier_stats(buf: &mut Vec<u8>, t: &TierStats) {
    put_u64(buf, t.hits);
    put_u64(buf, t.misses);
    put_u64(buf, t.entries);
    put_u64(buf, t.bytes);
    put_u64(buf, t.capacity_bytes);
    put_u64(buf, t.evictions);
}

fn read_tier_stats(r: &mut Reader<'_>) -> Result<TierStats, WireError> {
    Ok(TierStats {
        hits: r.u64()?,
        misses: r.u64()?,
        entries: r.u64()?,
        bytes: r.u64()?,
        capacity_bytes: r.u64()?,
        evictions: r.u64()?,
    })
}

fn put_histogram(buf: &mut Vec<u8>, h: &PhaseHistogram) {
    put_u64(buf, h.count);
    put_u64(buf, h.total_micros);
    for &b in &h.buckets {
        put_u64(buf, b);
    }
}

fn read_histogram(r: &mut Reader<'_>) -> Result<PhaseHistogram, WireError> {
    let count = r.u64()?;
    let total_micros = r.u64()?;
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for b in &mut buckets {
        *b = r.u64()?;
    }
    Ok(PhaseHistogram {
        count,
        total_micros,
        buckets,
    })
}

fn put_codec_config(buf: &mut Vec<u8>, c: &CodecConfig) {
    put_u8(buf, c.compress as u8);
    put_u32(buf, c.chunk_bytes);
}

fn read_codec_config(r: &mut Reader<'_>) -> Result<CodecConfig, WireError> {
    let compress = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::BadField("compress")),
    };
    Ok(CodecConfig {
        compress,
        chunk_bytes: r.u32()?,
    })
}

fn put_codec_counters(buf: &mut Vec<u8>, c: &CodecCounters) {
    put_u64(buf, c.connections_v2);
    put_u64(buf, c.connections_v3);
    put_u64(buf, c.frames_sent);
    put_u64(buf, c.frames_received);
    put_u64(buf, c.crc_rejects);
    put_u64(buf, c.raw_tx_bytes);
    put_u64(buf, c.wire_tx_bytes);
    put_u64(buf, c.raw_rx_bytes);
    put_u64(buf, c.wire_rx_bytes);
}

fn read_codec_counters(r: &mut Reader<'_>) -> Result<CodecCounters, WireError> {
    Ok(CodecCounters {
        connections_v2: r.u64()?,
        connections_v3: r.u64()?,
        frames_sent: r.u64()?,
        frames_received: r.u64()?,
        crc_rejects: r.u64()?,
        raw_tx_bytes: r.u64()?,
        wire_tx_bytes: r.u64()?,
        raw_rx_bytes: r.u64()?,
        wire_rx_bytes: r.u64()?,
    })
}

fn put_stats(buf: &mut Vec<u8>, s: &ServerStats, version: u8) {
    put_u32(buf, s.workers);
    put_u32(buf, s.queue_capacity);
    put_u32(buf, s.queued);
    put_u64(buf, s.jobs_done);
    put_u64(buf, s.busy_rejections);
    put_u64(buf, s.coalesced);
    put_tier_stats(buf, &s.memory);
    put_tier_stats(buf, &s.disk);
    put_u64(buf, s.store_writes);
    put_u64(buf, s.disk_corruptions);
    put_histogram(buf, &s.synthesis);
    put_histogram(buf, &s.encode);
    put_histogram(buf, &s.embed);
    put_histogram(buf, &s.segment);
    // v2 peers expect the stats layout to end here
    if version >= 3 {
        put_codec_counters(buf, &s.codec);
    }
    // ... and v3 peers here: the fleet counters are v4-born
    if version >= 4 {
        put_u32(buf, s.connections_active);
        put_u32(buf, s.connections_max);
        put_u64(buf, s.connections_shed);
        put_u64(buf, s.redirects);
        put_u32(buf, s.shard_id);
        put_u32(buf, s.shard_count);
    }
    // ... and v4 peers here: epoch + replication counters are v5-born
    if version >= 5 {
        put_u64(buf, s.epoch);
        put_u64(buf, s.replicas_sent);
        put_u64(buf, s.replicas_received);
        put_u64(buf, s.replica_queue_drops);
        put_u64(buf, s.reconfigures);
        put_u32(buf, s.peers_down);
    }
    // ... and v5 peers here: the span-ring counters are v6-born
    if version >= 6 {
        put_u64(buf, s.spans_recorded);
        put_u64(buf, s.spans_evicted);
    }
}

fn read_stats(r: &mut Reader<'_>, version: u8) -> Result<ServerStats, WireError> {
    let mut stats = ServerStats {
        workers: r.u32()?,
        queue_capacity: r.u32()?,
        queued: r.u32()?,
        jobs_done: r.u64()?,
        busy_rejections: r.u64()?,
        coalesced: r.u64()?,
        memory: read_tier_stats(r)?,
        disk: read_tier_stats(r)?,
        store_writes: r.u64()?,
        disk_corruptions: r.u64()?,
        synthesis: read_histogram(r)?,
        encode: read_histogram(r)?,
        embed: read_histogram(r)?,
        segment: read_histogram(r)?,
        codec: if version >= 3 {
            read_codec_counters(r)?
        } else {
            CodecCounters::default()
        },
        ..ServerStats::default()
    };
    if version >= 4 {
        stats.connections_active = r.u32()?;
        stats.connections_max = r.u32()?;
        stats.connections_shed = r.u64()?;
        stats.redirects = r.u64()?;
        stats.shard_id = r.u32()?;
        stats.shard_count = r.u32()?;
    }
    if version >= 5 {
        stats.epoch = r.u64()?;
        stats.replicas_sent = r.u64()?;
        stats.replicas_received = r.u64()?;
        stats.replica_queue_drops = r.u64()?;
        stats.reconfigures = r.u64()?;
        stats.peers_down = r.u32()?;
    }
    if version >= 6 {
        stats.spans_recorded = r.u64()?;
        stats.spans_evicted = r.u64()?;
    }
    Ok(stats)
}

/// Validates a payload's leading version byte against the supported
/// window.
fn check_version(version: u8) -> Result<u8, WireError> {
    if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        Ok(version)
    } else {
        Err(WireError::Version(version))
    }
}

/// Version byte of a frame payload, if it has one — what the server
/// peeks to answer each peer in its own generation.
pub fn peek_version(payload: &[u8]) -> Option<u8> {
    payload.first().copied()
}

impl Request {
    /// Serialises into a frame payload at this build's version.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(PROTOCOL_VERSION)
    }

    /// Serialises into a frame payload stamped with `version`, floored
    /// at each message's birth version (`Hello` is v3-born — the
    /// stamp *is* the version offer, so [`encode`](Self::encode) offers
    /// this build's generation — `SubmitDirect` is v4-born, and the
    /// resilience messages `Replicate`/`Reconfigure`/`Ping` are
    /// v5-born).
    pub fn encode_versioned(&self, version: u8) -> Vec<u8> {
        let mut buf = vec![version];
        match self {
            Request::Hello(config) => {
                buf[0] = version.max(3);
                put_u8(&mut buf, TAG_HELLO);
                put_codec_config(&mut buf, config);
            }
            Request::Submit(spec) => {
                put_u8(&mut buf, TAG_SUBMIT);
                put_spec(&mut buf, spec, version);
            }
            Request::SubmitDirect(spec) => {
                let stamped = version.max(4);
                buf[0] = stamped;
                put_u8(&mut buf, TAG_SUBMIT_DIRECT);
                put_spec(&mut buf, spec, stamped);
            }
            Request::Poll(job) => {
                put_u8(&mut buf, TAG_POLL);
                put_u64(&mut buf, *job);
            }
            Request::Wait(job) => {
                put_u8(&mut buf, TAG_WAIT);
                put_u64(&mut buf, *job);
            }
            Request::Stats => put_u8(&mut buf, TAG_STATS),
            Request::Replicate {
                epoch,
                key,
                bytes,
                trace,
            } => {
                buf[0] = version.max(5);
                put_u8(&mut buf, TAG_REPLICATE);
                put_u64(&mut buf, *epoch);
                put_u64(&mut buf, *key);
                put_bytes(&mut buf, bytes);
                // v5 replicas expect the payload to end at the bytes
                if buf[0] >= 6 {
                    put_u64(&mut buf, *trace);
                }
            }
            Request::Reconfigure { epoch, peers } => {
                buf[0] = version.max(5);
                put_u8(&mut buf, TAG_RECONFIGURE);
                put_u64(&mut buf, *epoch);
                put_peers(&mut buf, peers);
            }
            Request::Ping => {
                buf[0] = version.max(5);
                put_u8(&mut buf, TAG_PING);
            }
            Request::TraceDump { trace } => {
                buf[0] = version.max(6);
                put_u8(&mut buf, TAG_TRACE_DUMP);
                put_u64(&mut buf, *trace);
            }
        }
        buf
    }

    /// Parses a frame payload (any supported version).
    ///
    /// # Errors
    ///
    /// [`WireError`] for a version outside the supported window, an
    /// unknown tag for that version, truncated or trailing bytes, or
    /// an out-of-domain field.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let version = check_version(r.u8()?)?;
        let request = match r.u8()? {
            TAG_HELLO if version >= 3 => Request::Hello(read_codec_config(&mut r)?),
            TAG_SUBMIT_DIRECT if version >= 4 => Request::SubmitDirect(read_spec(&mut r, version)?),
            TAG_REPLICATE if version >= 5 => Request::Replicate {
                epoch: r.u64()?,
                key: r.u64()?,
                bytes: r.bytes()?,
                trace: if version >= 6 { r.u64()? } else { 0 },
            },
            TAG_RECONFIGURE if version >= 5 => Request::Reconfigure {
                epoch: r.u64()?,
                peers: r.peers()?,
            },
            TAG_PING if version >= 5 => Request::Ping,
            TAG_TRACE_DUMP if version >= 6 => Request::TraceDump { trace: r.u64()? },
            TAG_SUBMIT => Request::Submit(read_spec(&mut r, version)?),
            TAG_POLL => Request::Poll(r.u64()?),
            TAG_WAIT => Request::Wait(r.u64()?),
            TAG_STATS => Request::Stats,
            tag => return Err(WireError::BadTag(tag)),
        };
        r.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Serialises into a frame payload at this build's version.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(PROTOCOL_VERSION)
    }

    /// Serialises into a frame payload stamped with `version`, using
    /// that version's layout (a v2 `Stats` reply omits the codec
    /// counters, a v3 one the fleet counters; `HelloAck` is v3-born
    /// and stamps at least version 3 — a v4 server acking a v3 peer
    /// stamps 3, which is how the connection's generation is agreed;
    /// `Redirect` is v4-born).
    pub fn encode_versioned(&self, version: u8) -> Vec<u8> {
        let mut buf = vec![version];
        match self {
            Response::Accepted(job) => {
                put_u8(&mut buf, TAG_ACCEPTED);
                put_u64(&mut buf, *job);
            }
            Response::Busy { queued, capacity } => {
                put_u8(&mut buf, TAG_BUSY);
                put_u32(&mut buf, *queued);
                put_u32(&mut buf, *capacity);
            }
            Response::Phase(phase) => {
                put_u8(&mut buf, TAG_PHASE);
                put_u8(
                    &mut buf,
                    match phase {
                        JobPhase::Queued => 0,
                        JobPhase::Running => 1,
                    },
                );
            }
            Response::Done(report) => {
                put_u8(&mut buf, TAG_DONE);
                put_report(&mut buf, report, version);
            }
            Response::Failed { message, conn } => {
                put_u8(&mut buf, TAG_FAILED);
                put_str(&mut buf, message);
                // pre-v6 peers expect failures to end at the message
                if version >= 6 {
                    put_conn_stats(&mut buf, conn);
                }
            }
            Response::Stats(stats) => {
                put_u8(&mut buf, TAG_STATS_REPLY);
                put_stats(&mut buf, stats, version);
            }
            Response::Error(message) => {
                put_u8(&mut buf, TAG_ERROR);
                put_str(&mut buf, message);
            }
            Response::HelloAck(config) => {
                buf[0] = version.max(3);
                put_u8(&mut buf, TAG_HELLO_ACK);
                put_codec_config(&mut buf, config);
            }
            Response::Redirect { addr, trace } => {
                buf[0] = version.max(4);
                put_u8(&mut buf, TAG_REDIRECT);
                put_str(&mut buf, addr);
                // v4/v5 peers expect the redirect to end at the address
                if buf[0] >= 6 {
                    put_u64(&mut buf, *trace);
                }
            }
            Response::Pong {
                epoch,
                shard_id,
                peers,
            } => {
                buf[0] = version.max(5);
                put_u8(&mut buf, TAG_PONG);
                put_u64(&mut buf, *epoch);
                put_u32(&mut buf, *shard_id);
                put_peers(&mut buf, peers);
            }
            Response::Ack { epoch } => {
                buf[0] = version.max(5);
                put_u8(&mut buf, TAG_ACK);
                put_u64(&mut buf, *epoch);
            }
            Response::Spans(dump) => {
                buf[0] = version.max(6);
                put_u8(&mut buf, TAG_SPANS);
                put_span_dump(&mut buf, dump);
            }
        }
        buf
    }

    /// Parses a frame payload (any supported version).
    ///
    /// # Errors
    ///
    /// [`WireError`], as for [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let version = check_version(r.u8()?)?;
        let response = match r.u8()? {
            TAG_ACCEPTED => Response::Accepted(r.u64()?),
            TAG_BUSY => Response::Busy {
                queued: r.u32()?,
                capacity: r.u32()?,
            },
            TAG_PHASE => Response::Phase(match r.u8()? {
                0 => JobPhase::Queued,
                1 => JobPhase::Running,
                _ => return Err(WireError::BadField("phase")),
            }),
            TAG_DONE => Response::Done(read_report(&mut r, version)?),
            TAG_FAILED => Response::Failed {
                message: r.string()?,
                conn: if version >= 6 {
                    read_conn_stats(&mut r)?
                } else {
                    ConnStats::default()
                },
            },
            TAG_STATS_REPLY => Response::Stats(read_stats(&mut r, version)?),
            TAG_ERROR => Response::Error(r.string()?),
            TAG_HELLO_ACK if version >= 3 => Response::HelloAck(read_codec_config(&mut r)?),
            TAG_REDIRECT if version >= 4 => Response::Redirect {
                addr: r.string()?,
                trace: if version >= 6 { r.u64()? } else { 0 },
            },
            TAG_PONG if version >= 5 => Response::Pong {
                epoch: r.u64()?,
                shard_id: r.u32()?,
                peers: r.peers()?,
            },
            TAG_ACK if version >= 5 => Response::Ack { epoch: r.u64()? },
            TAG_SPANS if version >= 6 => Response::Spans(read_span_dump(&mut r)?),
            tag => return Err(WireError::BadTag(tag)),
        };
        r.finish()?;
        Ok(response)
    }
}

// -------------------------------------------------------------- frame

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors from the stream; `InvalidData` if the payload exceeds
/// [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(stream: &mut W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::Oversize(payload.len()).to_string(),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// I/O errors from the stream; `InvalidData` for a declared length
/// above [`MAX_FRAME_BYTES`]; `UnexpectedEof` when the peer closed
/// mid-frame.
pub fn read_frame<R: Read>(stream: &mut R) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::Oversize(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            set_text: "chains 2 depth 3\n1X0X10\nXX1XXX\n".to_string(),
            window: 24,
            segment: 4,
            speedup: 6,
            lfsr_size: 0,
            lfsr_kind: LfsrKind::Fibonacci,
            ps_taps: 3,
            hw_seed: 0x14A2_4108_A00E_3508,
            fill_seed: 1,
            trace: TraceContext::default(),
        }
    }

    fn traced_spec() -> JobSpec {
        JobSpec {
            trace: TraceContext {
                trace: 0x1111_2222_3333_4444,
                parent: 0x5555_6666_7777_8888,
                hop: 2,
            },
            ..spec()
        }
    }

    fn span() -> Span {
        Span {
            trace: 0x1111_2222_3333_4444,
            id: 0x9999_AAAA_BBBB_CCCC,
            parent: 0x5555_6666_7777_8888,
            kind: SpanKind::CacheMemory,
            start_micros: 1_234_567,
            duration_micros: 89,
            note: "hop=2".to_string(),
        }
    }

    fn report() -> JobReport {
        JobReport {
            lfsr_size: 38,
            window: 24,
            segment: 4,
            speedup: 6,
            cubes: 40,
            dropped: 0,
            seeds: 25,
            tdv: 950,
            tsl_original: 600,
            tsl_truncated: 400,
            tsl_proposed: 135,
            digest: 0xDEAD_BEEF_CAFE_F00D,
            tier: CacheTier::Disk,
            service_micros: 12_345,
            conn: ConnStats {
                frames_sent: 12,
                frames_received: 11,
                raw_tx_bytes: 9000,
                wire_tx_bytes: 4200,
                raw_rx_bytes: 800,
                wire_rx_bytes: 850,
            },
            trace: 0x1111_2222_3333_4444,
        }
    }

    #[test]
    fn every_message_round_trips() {
        let requests = [
            Request::Submit(spec()),
            Request::Submit(traced_spec()),
            Request::SubmitDirect(traced_spec()),
            Request::Poll(7),
            Request::Wait(u64::MAX),
            Request::Stats,
            Request::Replicate {
                epoch: 3,
                key: 0x9E37_79B9_7F4A_7C15,
                bytes: vec![0xAB; 100],
                trace: 0x1111_2222_3333_4444,
            },
            Request::Reconfigure {
                epoch: 4,
                peers: vec!["127.0.0.1:7211".to_string(), "127.0.0.1:7212".to_string()],
            },
            Request::Ping,
            Request::TraceDump {
                trace: 0x1111_2222_3333_4444,
            },
            Request::TraceDump { trace: 0 },
        ];
        for request in requests {
            assert_eq!(Request::decode(&request.encode()), Ok(request));
        }
        let responses = [
            Response::Accepted(42),
            Response::Busy {
                queued: 8,
                capacity: 8,
            },
            Response::Phase(JobPhase::Queued),
            Response::Phase(JobPhase::Running),
            Response::Done(report()),
            Response::Failed {
                message: "cube file: missing header line".to_string(),
                conn: ConnStats {
                    frames_sent: 2,
                    frames_received: 2,
                    raw_tx_bytes: 64,
                    wire_tx_bytes: 70,
                    raw_rx_bytes: 512,
                    wire_rx_bytes: 300,
                },
            },
            Response::Stats(ServerStats {
                workers: 4,
                queue_capacity: 16,
                queued: 3,
                jobs_done: 100,
                busy_rejections: 2,
                coalesced: 7,
                memory: TierStats {
                    hits: 60,
                    misses: 40,
                    entries: 9,
                    bytes: 1 << 20,
                    capacity_bytes: 256 << 20,
                    evictions: 5,
                },
                disk: TierStats {
                    hits: 11,
                    misses: 29,
                    entries: 40,
                    bytes: 3 << 20,
                    capacity_bytes: 0,
                    evictions: 1,
                },
                store_writes: 40,
                disk_corruptions: 1,
                synthesis: {
                    let mut h = PhaseHistogram::default();
                    h.record(0);
                    h.record(1500);
                    h.record(1 << 40); // top bucket is open-ended
                    h
                },
                encode: PhaseHistogram::default(),
                embed: {
                    let mut h = PhaseHistogram::default();
                    h.record(37);
                    h
                },
                segment: PhaseHistogram::default(),
                codec: CodecCounters {
                    connections_v2: 1,
                    connections_v3: 5,
                    frames_sent: 900,
                    frames_received: 850,
                    crc_rejects: 3,
                    raw_tx_bytes: 1 << 22,
                    wire_tx_bytes: 1 << 20,
                    raw_rx_bytes: 1 << 21,
                    wire_rx_bytes: 1 << 19,
                },
                connections_active: 3,
                connections_max: 256,
                connections_shed: 12,
                redirects: 4,
                shard_id: 1,
                shard_count: 3,
                epoch: 2,
                replicas_sent: 15,
                replicas_received: 14,
                replica_queue_drops: 1,
                reconfigures: 2,
                peers_down: 1,
                spans_recorded: 300,
                spans_evicted: 44,
            }),
            Response::Error("unknown job id 9".to_string()),
            Response::HelloAck(CodecConfig {
                compress: true,
                chunk_bytes: 4096,
            }),
            Response::Redirect {
                addr: "127.0.0.1:7212".to_string(),
                trace: 0x1111_2222_3333_4444,
            },
            Response::Pong {
                epoch: 2,
                shard_id: u32::MAX,
                peers: vec!["127.0.0.1:7211".to_string()],
            },
            Response::Ack { epoch: 2 },
            Response::Spans(SpanDump {
                wall_micros: 1_700_000_000_000_000,
                mono_micros: 2_345_678,
                recorded: 10,
                evicted: 3,
                spans: vec![
                    span(),
                    Span {
                        kind: SpanKind::FailoverHop,
                        note: String::new(),
                        ..span()
                    },
                ],
            }),
            Response::Spans(SpanDump::default()),
        ];
        for response in responses {
            assert_eq!(Response::decode(&response.encode()), Ok(response));
        }
    }

    #[test]
    fn hello_round_trips_and_is_v3_only() {
        let hello = Request::Hello(CodecConfig {
            compress: false,
            chunk_bytes: 1024,
        });
        let payload = hello.encode();
        assert_eq!(payload[0], PROTOCOL_VERSION);
        assert_eq!(Request::decode(&payload), Ok(hello));

        // a v2-stamped Hello is an unknown tag, exactly what a real v2
        // build would say
        let mut downgraded = payload.clone();
        downgraded[0] = 2;
        assert_eq!(
            Request::decode(&downgraded),
            Err(WireError::BadTag(TAG_HELLO))
        );
        let mut ack = Response::HelloAck(CodecConfig::preferred()).encode();
        ack[0] = 2;
        assert_eq!(
            Response::decode(&ack),
            Err(WireError::BadTag(TAG_HELLO_ACK))
        );
    }

    #[test]
    fn v2_peers_speak_the_old_stats_layout() {
        let mut stats = ServerStats {
            workers: 2,
            jobs_done: 9,
            connections_active: 1,
            connections_max: 64,
            connections_shed: 3,
            redirects: 5,
            shard_id: 2,
            shard_count: 4,
            epoch: 6,
            replicas_sent: 13,
            replicas_received: 12,
            replica_queue_drops: 1,
            reconfigures: 2,
            peers_down: 1,
            spans_recorded: 120,
            spans_evicted: 7,
            ..ServerStats::default()
        };
        stats.codec.connections_v3 = 7;
        stats.codec.crc_rejects = 2;
        let reply = Response::Stats(stats);

        let v2 = reply.encode_versioned(2);
        let v3 = reply.encode_versioned(3);
        let v4 = reply.encode_versioned(4);
        let v5 = reply.encode_versioned(5);
        let v6 = reply.encode_versioned(6);
        assert_eq!(v2[0], 2);
        assert_eq!(v3[0], 3);
        assert_eq!(v4[0], 4);
        assert_eq!(v5[0], 5);
        assert_eq!(v6[0], 6);
        // each generation's layout is exactly the next one minus its
        // trailing counter block (and the version stamp)
        assert_eq!(v3.len() - v2.len(), 9 * 8);
        assert_eq!(v2[1..], v3[1..v2.len()]);
        assert_eq!(v4.len() - v3.len(), 4 + 4 + 8 + 8 + 4 + 4);
        assert_eq!(v3[1..], v4[1..v3.len()]);
        assert_eq!(v5.len() - v4.len(), 8 + 8 + 8 + 8 + 8 + 4);
        assert_eq!(v4[1..], v5[1..v4.len()]);
        assert_eq!(v6.len() - v5.len(), 8 + 8);
        assert_eq!(v5[1..], v6[1..v5.len()]);

        match Response::decode(&v2).unwrap() {
            Response::Stats(back) => {
                assert_eq!(back.jobs_done, 9);
                assert_eq!(back.codec, CodecCounters::default());
                assert_eq!(back.shard_count, 0);
            }
            other => panic!("v2 stats decoded as {other:?}"),
        }
        match Response::decode(&v3).unwrap() {
            Response::Stats(back) => {
                assert_eq!(back.codec.connections_v3, 7);
                assert_eq!(back.connections_shed, 0, "fleet counters are v4-born");
                assert_eq!(back.shard_count, 0);
            }
            other => panic!("v3 stats decoded as {other:?}"),
        }
        match Response::decode(&v4).unwrap() {
            Response::Stats(back) => {
                assert_eq!(back.shard_count, 4);
                assert_eq!(back.epoch, 0, "epoch + replica counters are v5-born");
                assert_eq!(back.replicas_sent, 0);
            }
            other => panic!("v4 stats decoded as {other:?}"),
        }
        match Response::decode(&v5).unwrap() {
            Response::Stats(back) => {
                assert_eq!(back.peers_down, 1);
                assert_eq!(back.spans_recorded, 0, "span counters are v6-born");
                assert_eq!(back.spans_evicted, 0);
            }
            other => panic!("v5 stats decoded as {other:?}"),
        }
        assert_eq!(Response::decode(&v6), Ok(reply));

        // every v2-stamped request round-trips at the old layout too
        for request in [Request::Poll(3), Request::Wait(4), Request::Stats] {
            let payload = request.encode_versioned(2);
            assert_eq!(payload[0], 2);
            assert_eq!(Request::decode(&payload), Ok(request));
        }
    }

    #[test]
    fn fleet_messages_are_v4_born() {
        // SubmitDirect and Redirect refuse to encode below v4 (the
        // stamp is forced up) and refuse to decode below v4 (an older
        // build would answer BadTag, exactly what a real one does)
        let direct = Request::SubmitDirect(spec());
        let payload = direct.encode_versioned(2);
        assert_eq!(payload[0], 4);
        assert_eq!(Request::decode(&payload), Ok(direct));
        let mut downgraded = payload;
        downgraded[0] = 3;
        assert_eq!(
            Request::decode(&downgraded),
            Err(WireError::BadTag(TAG_SUBMIT_DIRECT))
        );

        let redirect = Response::Redirect {
            addr: "127.0.0.1:7213".to_string(),
            trace: 0,
        };
        let payload = redirect.encode_versioned(3);
        assert_eq!(payload[0], 4);
        assert_eq!(Response::decode(&payload), Ok(redirect));
        let mut downgraded = payload;
        downgraded[0] = 2;
        assert_eq!(
            Response::decode(&downgraded),
            Err(WireError::BadTag(TAG_REDIRECT))
        );

        // a v4 server acking a v3 peer stamps the ack at the peer's
        // generation — that is the whole version-mirroring contract
        let ack = Response::HelloAck(CodecConfig::preferred());
        assert_eq!(ack.encode_versioned(3)[0], 3);
        assert_eq!(ack.encode_versioned(4)[0], 4);
        assert_eq!(ack.encode_versioned(2)[0], 3, "HelloAck is v3-born");
    }

    #[test]
    fn resilience_messages_are_v5_born() {
        // every resilience message forces its stamp up to v5 on encode
        // and refuses to decode below v5 — an older build answers
        // BadTag, exactly what a real one does
        let requests = [
            Request::Replicate {
                epoch: 1,
                key: 42,
                bytes: vec![1, 2, 3],
                trace: 0,
            },
            Request::Reconfigure {
                epoch: 2,
                peers: vec!["127.0.0.1:7211".to_string()],
            },
            Request::Ping,
        ];
        for request in requests {
            let payload = request.encode_versioned(2);
            assert_eq!(payload[0], 5, "{request:?} must be stamped v5");
            assert_eq!(Request::decode(&payload), Ok(request.clone()));
            let mut downgraded = payload;
            downgraded[0] = 4;
            assert!(
                matches!(Request::decode(&downgraded), Err(WireError::BadTag(_))),
                "{request:?} decoded below its birth version"
            );
        }
        let responses = [
            Response::Pong {
                epoch: 1,
                shard_id: 0,
                peers: vec!["127.0.0.1:7211".to_string()],
            },
            Response::Ack { epoch: 1 },
        ];
        for response in responses {
            let payload = response.encode_versioned(3);
            assert_eq!(payload[0], 5, "{response:?} must be stamped v5");
            assert_eq!(Response::decode(&payload), Ok(response.clone()));
            let mut downgraded = payload;
            downgraded[0] = 4;
            assert!(
                matches!(Response::decode(&downgraded), Err(WireError::BadTag(_))),
                "{response:?} decoded below its birth version"
            );
        }
    }

    #[test]
    fn pre_v5_peers_speak_the_old_report_layout() {
        let reply = Response::Done(report());
        let v4 = reply.encode_versioned(4);
        let v5 = reply.encode_versioned(5);
        let v6 = reply.encode_versioned(6);
        // the v5 report is exactly the v4 one plus the trailing
        // 6-counter connection block, and the v6 one adds the trace
        // echo (and the version stamp)
        assert_eq!(v5.len() - v4.len(), 6 * 8);
        assert_eq!(v4[1..], v5[1..v4.len()]);
        assert_eq!(v6.len() - v5.len(), 8);
        assert_eq!(v5[1..], v6[1..v5.len()]);
        match Response::decode(&v4).unwrap() {
            Response::Done(back) => {
                assert_eq!(back.digest, report().digest);
                assert_eq!(back.conn, ConnStats::default(), "conn stats are v5-born");
            }
            other => panic!("v4 report decoded as {other:?}"),
        }
        match Response::decode(&v5).unwrap() {
            Response::Done(back) => {
                assert_eq!(back.conn, report().conn);
                assert_eq!(back.trace, 0, "the trace echo is v6-born");
            }
            other => panic!("v5 report decoded as {other:?}"),
        }
        assert_eq!(Response::decode(&v6), Ok(reply));
    }

    #[test]
    fn codec_counter_ratios() {
        let mut c = CodecCounters::default();
        assert_eq!(c.tx_ratio(), 1.0);
        assert_eq!(c.tx_bytes_saved(), 0);
        c.raw_tx_bytes = 4000;
        c.wire_tx_bytes = 1000;
        assert_eq!(c.tx_ratio(), 4.0);
        assert_eq!(c.tx_bytes_saved(), 3000);
        c.wire_tx_bytes = 5000; // overhead ate the savings
        assert_eq!(c.tx_bytes_saved(), 0);
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        // version mismatch
        let mut bad = Request::Poll(1).encode();
        bad[0] = 9;
        assert_eq!(Request::decode(&bad), Err(WireError::Version(9)));
        // unknown tag
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION, 200]),
            Err(WireError::BadTag(200))
        );
        // truncation at every prefix of a valid frame
        let full = Request::Submit(spec()).encode();
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // trailing garbage
        let mut long = Request::Poll(1).encode();
        long.push(0);
        assert_eq!(
            Request::decode(&long),
            Err(WireError::BadField("trailing bytes"))
        );
        // bad enum discriminants
        let mut resp = Response::Phase(JobPhase::Queued).encode();
        *resp.last_mut().unwrap() = 7;
        assert_eq!(Response::decode(&resp), Err(WireError::BadField("phase")));
        // tier byte sits just before the trailing 8-byte service time,
        // the 48-byte v5 connection block, and the 8-byte v6 trace echo
        let mut done = Response::Done(report()).encode();
        let at = done.len() - 65;
        done[at] = 9;
        assert_eq!(Response::decode(&done), Err(WireError::BadField("tier")));
        // span kind byte is validated too
        let mut spans = Response::Spans(SpanDump {
            spans: vec![span()],
            ..SpanDump::default()
        })
        .encode();
        // kind byte sits 24 bytes into the span record: after the
        // dump header (4 * 8 + 4 bytes), trace, id and parent
        let at = 2 + 36 + 24;
        spans[at] = 200;
        assert_eq!(
            Response::decode(&spans),
            Err(WireError::BadField("span kind"))
        );
    }

    #[test]
    fn trace_messages_are_v6_born() {
        // TraceDump and Spans force their stamp up to v6 on encode and
        // refuse to decode below v6 — an older build answers BadTag
        let dump = Request::TraceDump { trace: 99 };
        let payload = dump.encode_versioned(2);
        assert_eq!(payload[0], 6, "TraceDump must be stamped v6");
        assert_eq!(Request::decode(&payload), Ok(dump));
        let mut downgraded = payload;
        downgraded[0] = 5;
        assert_eq!(
            Request::decode(&downgraded),
            Err(WireError::BadTag(TAG_TRACE_DUMP))
        );

        let spans = Response::Spans(SpanDump::default());
        let payload = spans.encode_versioned(3);
        assert_eq!(payload[0], 6, "Spans must be stamped v6");
        assert_eq!(Response::decode(&payload), Ok(spans));
        let mut downgraded = payload;
        downgraded[0] = 5;
        assert_eq!(
            Response::decode(&downgraded),
            Err(WireError::BadTag(TAG_SPANS))
        );
    }

    #[test]
    fn pre_v6_peers_negotiate_tracing_away() {
        // the v6 spec is exactly the v5 one plus the trailing trace
        // context — a v5 peer never sees it, and the trace comes back
        // zeroed, which is the "tracing off" sentinel everywhere
        let traced = Request::Submit(traced_spec());
        let v5 = traced.encode_versioned(5);
        let v6 = traced.encode_versioned(6);
        assert_eq!(v6.len() - v5.len(), 8 + 8 + 4);
        assert_eq!(v5[1..], v6[1..v5.len()]);
        assert_eq!(Request::decode(&v5), Ok(Request::Submit(spec())));
        assert_eq!(Request::decode(&v6), Ok(traced));

        // same for the replicate push: the trace rides behind the bytes
        let push = Request::Replicate {
            epoch: 1,
            key: 42,
            bytes: vec![1, 2, 3],
            trace: 0x1111_2222_3333_4444,
        };
        let v5 = push.encode_versioned(5);
        let v6 = push.encode_versioned(6);
        assert_eq!(v6.len() - v5.len(), 8);
        assert_eq!(v5[1..], v6[1..v5.len()]);
        match Request::decode(&v5).unwrap() {
            Request::Replicate { trace, .. } => assert_eq!(trace, 0),
            other => panic!("v5 replicate decoded as {other:?}"),
        }
        assert_eq!(Request::decode(&v6), Ok(push));

        // a failure answered to a v5 peer ends at the message; the v6
        // one carries the connection block
        let failed = Response::Failed {
            message: "boom".to_string(),
            conn: ConnStats {
                frames_sent: 1,
                frames_received: 1,
                raw_tx_bytes: 10,
                wire_tx_bytes: 12,
                raw_rx_bytes: 20,
                wire_rx_bytes: 22,
            },
        };
        let v5 = failed.encode_versioned(5);
        let v6 = failed.encode_versioned(6);
        assert_eq!(v6.len() - v5.len(), 6 * 8);
        assert_eq!(v5[1..], v6[1..v5.len()]);
        match Response::decode(&v5).unwrap() {
            Response::Failed { message, conn } => {
                assert_eq!(message, "boom");
                assert_eq!(conn, ConnStats::default(), "failure conn stats are v6-born");
            }
            other => panic!("v5 failure decoded as {other:?}"),
        }
        assert_eq!(Response::decode(&v6), Ok(failed));

        // a redirect answered to a v4/v5 peer ends at the address
        let redirect = Response::Redirect {
            addr: "127.0.0.1:7213".to_string(),
            trace: 0x1111_2222_3333_4444,
        };
        let v5 = redirect.encode_versioned(5);
        let v6 = redirect.encode_versioned(6);
        assert_eq!(v6.len() - v5.len(), 8);
        assert_eq!(v5[1..], v6[1..v5.len()]);
        match Response::decode(&v5).unwrap() {
            Response::Redirect { trace, .. } => assert_eq!(trace, 0),
            other => panic!("v5 redirect decoded as {other:?}"),
        }
        assert_eq!(Response::decode(&v6), Ok(redirect));
    }

    #[test]
    fn histogram_buckets_are_log2_micros() {
        assert_eq!(PhaseHistogram::bucket_index(0), 0);
        assert_eq!(PhaseHistogram::bucket_index(1), 0);
        assert_eq!(PhaseHistogram::bucket_index(2), 1);
        assert_eq!(PhaseHistogram::bucket_index(3), 1);
        assert_eq!(PhaseHistogram::bucket_index(1024), 10);
        assert_eq!(
            PhaseHistogram::bucket_index(u64::MAX),
            HISTOGRAM_BUCKETS - 1
        );
        let mut h = PhaseHistogram::default();
        h.record(100);
        h.record(200);
        assert_eq!(h.count, 2);
        assert_eq!(h.mean_micros(), 150);
        assert_eq!(h.buckets[6], 1, "100us in [64,128)");
        assert_eq!(h.buckets[7], 1, "200us in [128,256)");
    }

    #[test]
    fn histogram_zero_duration_samples_land_in_the_first_bucket() {
        let mut h = PhaseHistogram::default();
        h.record(0);
        h.record(0);
        h.record(1);
        assert_eq!(h.count, 3);
        assert_eq!(h.total_micros, 1);
        assert_eq!(h.buckets[0], 3);
        assert_eq!(h.mean_micros(), 0);
        // the first bucket's upper bound is 1us — a zero-duration
        // sample still reports a nonzero percentile ceiling
        assert_eq!(h.percentile_micros(0.5), 1);
        assert_eq!(h.percentile_micros(0.99), 1);
    }

    #[test]
    fn histogram_overflow_bucket_is_open_ended() {
        let mut h = PhaseHistogram::default();
        h.record(u64::MAX);
        h.record(1 << 60);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 2);
        // the top bucket has no finite upper bound
        assert_eq!(h.percentile_micros(0.5), u64::MAX);
        assert_eq!(h.percentile_micros(1.0), u64::MAX);
        // total saturates rather than wrapping
        assert_eq!(h.total_micros, u64::MAX);
    }

    #[test]
    fn histogram_merge_sums_counts_and_buckets() {
        let mut a = PhaseHistogram::default();
        a.record(100);
        a.record(1500);
        let mut b = PhaseHistogram::default();
        b.record(200);
        b.record(u64::MAX);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count, 4);
        assert_eq!(merged.buckets[6], 1, "100us survives the merge");
        assert_eq!(merged.buckets[7], 1, "200us survives the merge");
        assert_eq!(merged.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(merged.total_micros, u64::MAX, "merge saturates too");
        // merging an empty histogram is the identity
        let before = merged;
        merged.merge(&PhaseHistogram::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn histogram_percentiles_walk_the_buckets() {
        let empty = PhaseHistogram::default();
        assert_eq!(empty.percentile_micros(0.5), 0, "empty histogram");

        let mut h = PhaseHistogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 6, bound 127
        }
        for _ in 0..9 {
            h.record(1000); // bucket 9, bound 1023
        }
        h.record(100_000); // bucket 16, bound 131071
        assert_eq!(h.percentile_micros(0.5), 127);
        assert_eq!(h.percentile_micros(0.9), 127);
        assert_eq!(h.percentile_micros(0.95), 1023);
        assert_eq!(h.percentile_micros(0.99), 1023);
        assert_eq!(h.percentile_micros(1.0), 131_071);
        // out-of-range fractions clamp to the extremes
        assert_eq!(h.percentile_micros(0.0), 127);
        assert_eq!(h.percentile_micros(2.0), 131_071);
    }

    #[test]
    fn tier_implies_cached() {
        let mut r = report();
        for (tier, cached) in [
            (CacheTier::Cold, false),
            (CacheTier::Disk, true),
            (CacheTier::Memory, true),
        ] {
            r.tier = tier;
            assert_eq!(r.cached(), cached);
        }
    }

    #[test]
    fn frames_round_trip_and_cap_length() {
        let payload = Request::Submit(spec()).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);

        // a forged oversize header is refused before allocation
        let forged = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        let mut cursor = &forged[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn job_spec_new_mirrors_engine_config() {
        let engine = ss_core::Engine::builder()
            .window(24)
            .segment(4)
            .speedup(6)
            .lfsr_size(44)
            .threads(8)
            .build()
            .unwrap();
        let set = TestSet::from_text("chains 2 depth 3\n1X0X10\n").unwrap();
        let spec = JobSpec::new(&set, engine.config());
        assert_eq!(spec.window, 24);
        assert_eq!(spec.lfsr_size, 44);
        assert_eq!(spec.set_text, set.to_text());
        assert_eq!(spec.hw_seed, engine.config().hw_seed);
    }
}
