//! `ss-server` — the State Skip compression **service**: a
//! multi-threaded TCP server with a bounded job queue, explicit
//! backpressure and a content-addressed cache of synthesis/encode
//! artifacts, plus the matching client library.
//!
//! The rest of the workspace computes; this crate *serves*. A running
//! `ss-server` accepts workloads over a length-prefixed, versioned
//! wire protocol ([`protocol`]), executes them on a worker pool
//! against the staged [`Engine`](ss_core::Engine) flow, and answers
//! repeated submissions of the same `(cube set, engine config)` pair
//! from a size-bounded LRU of synthesised hardware and encodings
//! ([`cache`]) — skipping the two expensive stages entirely while
//! returning bit-identical results (the flow is deterministic end to
//! end, so this is an equality, not an approximation). With a
//! `--store-dir`, a second, persistent tier sits under the LRU: the
//! content-addressed artifact store of `ss-store`, which survives
//! restarts and is digest-verified on every load, so lookups fall
//! through memory → disk → cold compute and a restarted server warms
//! itself from disk instead of re-paying synthesis.
//!
//! # Quickstart
//!
//! ```
//! use ss_core::Engine;
//! use ss_server::{Client, JobSpec, ServeOptions, Server};
//! use ss_testdata::WorkloadRegistry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // serve on a loopback ephemeral port
//! let handle = Server::bind(&ServeOptions::default())?.spawn();
//!
//! // submit the same workload twice: cold, then cached
//! let engine = Engine::builder().window(24).segment(4).speedup(6).build()?;
//! let set = WorkloadRegistry::find("tiny-1").unwrap().test_set();
//! let spec = JobSpec::new(&set, engine.config());
//! let mut client = Client::connect(handle.addr())?;
//! let (_, cold) = client.run(&spec)?;
//! let (_, warm) = client.run(&spec)?;
//! assert!(!cold.cached() && warm.cached());
//! assert_eq!(cold.digest, warm.digest); // bit-identical result
//! # handle.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! Beyond one node, the same artifacts shard horizontally: they are
//! pure functions of `(cube text, knobs)`, so [`shard::ShardRing`]
//! partitions the content-key space across a fleet by rendezvous
//! hashing, the client-side [`Balancer`] routes each submission to
//! its owning shard (failing over down the ring when shards die), and
//! a sharded server redirects misrouted v4 submissions to the owner —
//! keeping the cold computation exactly-once *cluster-wide* and
//! growing aggregate cache capacity linearly with the shard count.
//!
//! The fleet also self-heals: each cold artifact is pushed
//! (write-behind, v5 `Replicate`) to the next `--replicas - 1` shards
//! of its key's rendezvous order, so a shard death fails over onto a
//! *warm* replica instead of re-paying synthesis; rings carry a
//! membership epoch and an admin `Reconfigure` swaps the peer list on
//! every live process — no restarts — with epoch gossip (`Ping`/`Pong`
//! between shards, [`Balancer::refresh_membership`] on the client)
//! converging the whole fleet from a single acknowledgement.
//!
//! The `state-skip` binary wires this up as `state-skip serve` /
//! `state-skip submit`; `crates/bench/benches/server_stress.rs` fans
//! concurrent clients over the whole registry corpus and records
//! `BENCH_server.json`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod codec;
#[cfg(test)]
mod proptests;
pub mod protocol;
mod server;
pub mod shard;

pub use cache::{cache_key, ArtifactCache, CacheStats, CachedArtifacts, Fnv64};
pub use client::{
    BalancedRun, Balancer, Client, ClientError, JobStatus, RetryPolicy, SubmitOutcome,
};
pub use codec::{
    Codec, CodecConfig, CodecError, Transport, WireStats, DEFAULT_CHUNK_BYTES, MAX_CHUNK_BYTES,
    MAX_MESSAGE_BYTES, MIN_CHUNK_BYTES,
};
pub use protocol::{
    CacheTier, CodecCounters, ConnStats, JobPhase, JobReport, JobSpec, PhaseHistogram, Request,
    Response, ServerStats, Span, SpanDump, SpanKind, TierStats, TraceContext, WireError,
    HISTOGRAM_BUCKETS, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{ServeOptions, Server, ServerHandle};
pub use shard::{ShardError, ShardRing, ShardSpec};

// the digest moved to `ss-store` (every artifact file embeds it);
// re-exported so `ss_server::report_digest` keeps resolving
pub use ss_store::report_digest;

/// Default listen address of `state-skip serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7113";

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::Engine;
    use ss_testdata::{generate_test_set, CubeProfile, WorkloadRegistry};

    fn spec_for(seed: u64) -> JobSpec {
        let set = generate_test_set(&CubeProfile::mini(), seed);
        let engine = Engine::builder()
            .window(16)
            .segment(4)
            .speedup(4)
            .build()
            .unwrap();
        JobSpec::new(&set, engine.config())
    }

    #[test]
    fn digest_separates_different_reports() {
        let engine = Engine::builder()
            .window(16)
            .segment(4)
            .speedup(4)
            .build()
            .unwrap();
        let a = engine
            .run(&generate_test_set(&CubeProfile::mini(), 1))
            .unwrap();
        let b = engine
            .run(&generate_test_set(&CubeProfile::mini(), 2))
            .unwrap();
        assert_eq!(report_digest(&a), report_digest(&a));
        assert_ne!(report_digest(&a), report_digest(&b));
    }

    /// Full loopback round-trip: submit → wait → cached resubmit, plus
    /// poll, stats, and error surfacing for a bad workload.
    #[test]
    fn loopback_end_to_end() {
        let handle = Server::bind(&ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        })
        .unwrap()
        .spawn();
        let mut client = Client::connect(handle.addr()).unwrap();

        let spec = spec_for(1);
        let (job, cold) = client.run(&spec).unwrap();
        assert_eq!(cold.tier, CacheTier::Cold);
        assert!(cold.seeds > 0 && cold.tsl_proposed < cold.tsl_original);

        // the finished job stays pollable on a fresh connection; the
        // reply's ConnStats stamp is per-connection by design, so it
        // differs from the submitting connection's — everything else
        // must be identical
        let mut other = Client::connect(handle.addr()).unwrap();
        match other.poll(job).unwrap() {
            JobStatus::Done(mut report) => {
                assert_ne!(report.conn, cold.conn);
                report.conn = cold.conn;
                assert_eq!(report, cold);
            }
            state => panic!("finished job polled as {state:?}"),
        }

        let (_, warm) = client.run(&spec).unwrap();
        assert_eq!(
            warm.tier,
            CacheTier::Memory,
            "second submission must hit the memory tier"
        );
        assert_eq!(warm.digest, cold.digest);
        assert_eq!(warm.seeds, cold.seeds);

        // a different workload is a different key
        let (_, fresh) = client.run(&spec_for(2)).unwrap();
        assert!(!fresh.cached());
        assert_ne!(fresh.digest, cold.digest);

        let stats = client.stats().unwrap();
        assert_eq!(stats.jobs_done, 3);
        assert_eq!(stats.memory.hits, 1);
        assert_eq!(stats.memory.misses, 2);
        assert_eq!(stats.workers, 2);
        // no --store-dir: the disk tier is inert
        assert_eq!(stats.disk, TierStats::default());
        assert_eq!(stats.store_writes, 0);
        // two cold jobs timed every phase; the warm hit skipped the
        // expensive ones
        assert_eq!(stats.synthesis.count, 2);
        assert_eq!(stats.encode.count, 2);
        assert_eq!(stats.embed.count, 3);
        assert_eq!(stats.segment.count, 3);

        // a malformed workload is rejected at submit time
        let mut bad = spec_for(1);
        bad.set_text = "garbage".to_string();
        assert!(matches!(client.submit(&bad), Err(ClientError::Server(_))));

        handle.shutdown();
    }

    /// The registry path the CLI uses: a named workload served equals
    /// the same workload run locally, digest and all.
    #[test]
    fn served_registry_workload_matches_local_engine_run() {
        let w = WorkloadRegistry::find("tiny-1").unwrap();
        let set = w.test_set();
        let engine = Engine::builder()
            .window(24)
            .segment(4)
            .speedup(6)
            .build()
            .unwrap();

        // local reference: the CLI `run` path (filter + pinned LFSR)
        let ctx = engine.synthesize(&set).unwrap();
        let (encodable, dropped) = ctx.encodable_subset(&set);
        let mut config = *engine.config();
        config.lfsr_size = Some(ctx.lfsr_size());
        let pinned = Engine::from_config(config).unwrap();
        let local = pinned.run(&encodable).unwrap();

        let handle = Server::bind(&ServeOptions::default()).unwrap().spawn();
        let mut client = Client::connect(handle.addr()).unwrap();
        let (_, served) = client.run(&JobSpec::new(&set, engine.config())).unwrap();
        handle.shutdown();

        assert_eq!(served.digest, report_digest(&local));
        assert_eq!(served.seeds as usize, local.seeds);
        assert_eq!(served.tdv as usize, local.tdv);
        assert_eq!(served.tsl_proposed, local.tsl_proposed);
        assert_eq!(served.lfsr_size as usize, local.lfsr_size);
        assert_eq!(served.dropped as usize, dropped.len());
    }
}
