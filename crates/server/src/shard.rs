//! Content-key sharding: rendezvous (highest-random-weight) hashing of
//! cache keys across a fleet of `ss-server` shards.
//!
//! The paper's artifacts are pure functions of `(cube text, knobs)`,
//! so a fleet can partition the key space by content: every key has
//! exactly one *owner* shard, the owner's LRU + coalescing guarantee
//! the cold computation runs once cluster-wide, and the fleet's
//! aggregate cache capacity grows linearly with the shard count — the
//! horizontal counterpart of the single-node tiers.
//!
//! [`ShardRing`] is the deterministic placement function both sides
//! share: the client-side [`Balancer`](crate::client::Balancer) routes
//! each submission to `owner(key)`, and a sharded server checks the
//! same ring to answer misrouted v4 submissions with
//! [`Response::Redirect`](crate::protocol::Response::Redirect).
//! Rendezvous hashing (score every `(shard, key)` pair, pick the
//! maximum) needs no virtual-node table and has the minimal-disruption
//! property this tier leans on for failover: removing one shard remaps
//! only the keys that shard owned, every other key keeps its owner —
//! so a dead shard never invalidates the rest of the fleet's caches.
//!
//! ```
//! use ss_server::shard::ShardRing;
//!
//! let ring = ShardRing::new(vec![
//!     "127.0.0.1:7211".into(),
//!     "127.0.0.1:7212".into(),
//!     "127.0.0.1:7213".into(),
//! ]).unwrap();
//! let key = 0x9E37_79B9_7F4A_7C15;
//! let owner = ring.owner(key);
//! // failover order: the owner first, then the runners-up
//! assert_eq!(ring.ranked(key)[0], owner);
//! ```

use std::fmt;

use crate::cache::Fnv64;

/// Errors constructing a shard ring or spec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShardError {
    /// The peer list is empty.
    NoShards,
    /// A peer address is the empty string.
    EmptyAddr,
    /// The same address appears twice — ownership would be ambiguous.
    DuplicateAddr(String),
    /// `--shard-id` is not an index into the peer list.
    BadShardId {
        /// The out-of-range id.
        id: usize,
        /// How many peers the list holds.
        peers: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "shard ring needs at least one peer"),
            ShardError::EmptyAddr => write!(f, "shard peer address is empty"),
            ShardError::DuplicateAddr(addr) => {
                write!(f, "shard peer {addr:?} listed twice")
            }
            ShardError::BadShardId { id, peers } => {
                write!(f, "shard id {id} out of range for {peers} peers")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// The deterministic key → shard placement function, shared verbatim
/// by the balancer and every sharded server (both sides must be built
/// from the *same address strings* — the ring hashes them as text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRing {
    shards: Vec<String>,
    epoch: u64,
}

impl ShardRing {
    /// Builds a ring over the given shard addresses.
    ///
    /// # Errors
    ///
    /// [`ShardError`] for an empty list, an empty address, or a
    /// duplicate address.
    pub fn new(shards: Vec<String>) -> Result<ShardRing, ShardError> {
        if shards.is_empty() {
            return Err(ShardError::NoShards);
        }
        for (i, addr) in shards.iter().enumerate() {
            if addr.is_empty() {
                return Err(ShardError::EmptyAddr);
            }
            if shards[..i].contains(addr) {
                return Err(ShardError::DuplicateAddr(addr.clone()));
            }
        }
        Ok(ShardRing { shards, epoch: 0 })
    }

    /// Stamps the ring with a membership epoch (epoch 0 is the
    /// pre-reconfiguration default). The epoch never enters the
    /// placement hash — two rings over the same addresses place keys
    /// identically at every epoch — it only orders membership views:
    /// a server or balancer replaces its ring exactly when it sees one
    /// with a strictly higher epoch.
    pub fn with_epoch(mut self, epoch: u64) -> ShardRing {
        self.epoch = epoch;
        self
    }

    /// The membership epoch this ring was stamped with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shard addresses, in declaration order (the order every
    /// index returned by this ring points into).
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring is empty (never true for a constructed ring).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Rendezvous score of one `(shard, key)` pair: FNV-1a over the
    /// address text and the key, then a SplitMix64 finisher so near-by
    /// keys don't score near-by (FNV alone is too linear for
    /// highest-random-weight comparisons).
    fn score(addr: &str, key: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write(b"ss-shard-v1");
        h.write(addr.as_bytes());
        h.write_u64(key);
        let mut z = h.finish();
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The owning shard of a cache key: the index whose score is
    /// highest (ties, vanishingly rare, break toward the lower index).
    pub fn owner(&self, key: u64) -> usize {
        self.ranked(key)[0]
    }

    /// All shard indices in rendezvous order — the owner first, then
    /// the failover sequence a balancer walks when shards are down.
    pub fn ranked(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        // stable sort + lower-index tiebreak: deterministic everywhere
        order.sort_by_key(|&i| std::cmp::Reverse(Self::score(&self.shards[i], key)));
        order
    }

    /// The addresses of a key's replica set: the first
    /// `min(factor, len)` shards in rendezvous order. Index 0 is the
    /// owner; the rest are where the owner pushes `Replicate` copies —
    /// and exactly where a balancer fails over to, which is why a
    /// shard death lands on a warm replica.
    pub fn replicas(&self, key: u64, factor: usize) -> Vec<String> {
        self.ranked(key)
            .into_iter()
            .take(factor.max(1))
            .map(|i| self.shards[i].clone())
            .collect()
    }
}

/// A sharded server's identity: the full peer list (every shard must
/// be configured with the *same* list, same order not required — the
/// ring hashes addresses, not positions) and this server's index into
/// it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardSpec {
    /// Advertised addresses of every shard in the fleet, including
    /// this one. These must be the exact strings clients balance over.
    pub peers: Vec<String>,
    /// This server's index into `peers`.
    pub id: usize,
    /// Membership epoch the initial ring is stamped with (0 unless the
    /// server is joining a fleet that has already been reconfigured).
    pub epoch: u64,
}

impl ShardSpec {
    /// Validates the spec and builds its ring.
    ///
    /// # Errors
    ///
    /// [`ShardError`] for ring problems or an out-of-range id.
    pub fn ring(&self) -> Result<ShardRing, ShardError> {
        if self.id >= self.peers.len() {
            return Err(ShardError::BadShardId {
                id: self.id,
                peers: self.peers.len(),
            });
        }
        Ok(ShardRing::new(self.peers.clone())?.with_epoch(self.epoch))
    }

    /// This server's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.peers[self.id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> ShardRing {
        ShardRing::new((0..n).map(|i| format!("10.0.0.{i}:7113")).collect()).unwrap()
    }

    #[test]
    fn construction_rejects_degenerate_rings() {
        assert_eq!(ShardRing::new(vec![]), Err(ShardError::NoShards));
        assert_eq!(
            ShardRing::new(vec!["a:1".into(), String::new()]),
            Err(ShardError::EmptyAddr)
        );
        assert_eq!(
            ShardRing::new(vec!["a:1".into(), "b:1".into(), "a:1".into()]),
            Err(ShardError::DuplicateAddr("a:1".into()))
        );
        assert_eq!(
            ShardSpec {
                peers: vec!["a:1".into()],
                id: 1,
                epoch: 0
            }
            .ring(),
            Err(ShardError::BadShardId { id: 1, peers: 1 })
        );
    }

    #[test]
    fn ownership_is_deterministic_and_ranked_is_a_permutation() {
        let ring = ring(5);
        for key in 0..200u64 {
            let order = ring.ranked(key);
            assert_eq!(order[0], ring.owner(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "not a permutation");
            assert_eq!(order, ring.ranked(key), "unstable ranking");
        }
    }

    #[test]
    fn keys_spread_roughly_evenly() {
        let ring = ring(4);
        let mut counts = [0usize; 4];
        let keys = 4000u64;
        for key in 0..keys {
            // decorrelate the sequential test keys the way real cache
            // keys are decorrelated: they come out of FNV
            let mut h = Fnv64::new();
            h.write_u64(key);
            counts[ring.owner(h.finish())] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / keys as f64;
            assert!(
                (0.15..=0.35).contains(&share),
                "shard {i} owns {share:.3} of the key space"
            );
        }
    }

    #[test]
    fn epoch_orders_views_without_touching_placement() {
        let base = ring(4);
        let stamped = ring(4).with_epoch(7);
        assert_eq!(base.epoch(), 0);
        assert_eq!(stamped.epoch(), 7);
        for key in 0..200u64 {
            assert_eq!(base.ranked(key), stamped.ranked(key));
        }
        let spec = ShardSpec {
            peers: (0..3).map(|i| format!("10.0.0.{i}:7113")).collect(),
            id: 1,
            epoch: 9,
        };
        assert_eq!(spec.ring().unwrap().epoch(), 9);
    }

    #[test]
    fn replica_sets_lead_with_the_owner() {
        let ring = ring(4);
        for key in 0..200u64 {
            let mut h = Fnv64::new();
            h.write_u64(key);
            let key = h.finish();
            let replicas = ring.replicas(key, 2);
            assert_eq!(replicas.len(), 2);
            assert_eq!(replicas[0], ring.shards()[ring.owner(key)]);
            assert_ne!(replicas[0], replicas[1]);
            // a factor past the fleet size saturates, never panics;
            // factor 0 still names the owner
            assert_eq!(ring.replicas(key, 10).len(), 4);
            assert_eq!(ring.replicas(key, 0), replicas[..1]);
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_own_keys() {
        // the minimal-disruption property failover relies on: with
        // shard 2 gone, every key shard 2 did not own keeps its owner,
        // and shard 2's keys land on their rank-1 shard
        let full = ring(4);
        let addrs: Vec<String> = full
            .shards()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, a)| a.clone())
            .collect();
        let reduced = ShardRing::new(addrs).unwrap();
        for key in 0..1000u64 {
            let mut h = Fnv64::new();
            h.write_u64(key ^ 0xABCD);
            let key = h.finish();
            let owner = full.owner(key);
            let after = &reduced.shards()[reduced.owner(key)];
            if owner != 2 {
                assert_eq!(after, &full.shards()[owner], "stable key remapped");
            } else {
                let runner_up = full.ranked(key)[1];
                assert_eq!(after, &full.shards()[runner_up], "failover target");
            }
        }
    }
}
