//! Property-based tests for the v3 wire protocol: every message, under
//! adversarial bytes, through both the plain payload codecs and the
//! chunked codec chain.
//!
//! This extends the artifact-format properties pinned in
//! `crates/store/src/proptests.rs` to the protocol layer. The
//! contracts:
//!
//! * decode(encode(m)) is identity for every message, at every
//!   supported version;
//! * every proper prefix of a valid payload is rejected — never a
//!   panic, never a partial message;
//! * a payload that decodes at all re-encodes to exactly the bytes
//!   that were decoded (the encoding is canonical), so a single-bit
//!   flip can never smuggle a *different* message through undetected
//!   at the payload layer without being a well-formed message itself;
//! * through the codec chain, every single-bit flip of any wire frame
//!   is caught by the per-chunk CRC — the flip never reaches the
//!   payload parser at all;
//! * arbitrary random bytes never panic any decoder.

#![cfg(test)]

use proptest::prelude::*;

use ss_lfsr::LfsrKind;

use crate::codec::{Codec, CodecConfig, CodecError, MIN_CHUNK_BYTES};
use crate::protocol::{
    CacheTier, CodecCounters, ConnStats, JobPhase, JobReport, JobSpec, PhaseHistogram, Request,
    Response, ServerStats, Span, SpanDump, SpanKind, TierStats, TraceContext, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::shard::ShardRing;

fn spec() -> JobSpec {
    JobSpec {
        set_text: "chains 2 depth 3\n1X0X10\nXX1XXX\n".to_string(),
        window: 24,
        segment: 4,
        speedup: 6,
        lfsr_size: 0,
        lfsr_kind: LfsrKind::Galois,
        ps_taps: 3,
        hw_seed: 77,
        fill_seed: 1,
        // nonzero so the corpus exercises the v6 context fields (and
        // the < v6 expectations below must strip them)
        trace: TraceContext {
            trace: 0x7AC3_0001_0002_0003,
            parent: 0x5EED_0004_0005_0006,
            hop: 2,
        },
    }
}

fn span_dump() -> SpanDump {
    SpanDump {
        wall_micros: 1_700_000_000_000_000,
        mono_micros: 55_123,
        recorded: 9,
        evicted: 1,
        spans: vec![Span {
            trace: 0x7AC3_0001_0002_0003,
            id: 0x1122_3344_5566_7788,
            parent: 0,
            kind: SpanKind::ReplicatePush,
            start_micros: 50_000,
            duration_micros: 1_234,
            note: "key=00000000deadbeef -> 127.0.0.1:7212".to_string(),
        }],
    }
}

fn report() -> JobReport {
    JobReport {
        lfsr_size: 38,
        window: 24,
        segment: 4,
        speedup: 6,
        cubes: 40,
        dropped: 1,
        seeds: 25,
        tdv: 950,
        tsl_original: 600,
        tsl_truncated: 400,
        tsl_proposed: 135,
        digest: 0xDEAD_BEEF_CAFE_F00D,
        tier: CacheTier::Memory,
        service_micros: 12_345,
        conn: ConnStats {
            frames_sent: 3,
            frames_received: 4,
            raw_tx_bytes: 2048,
            wire_tx_bytes: 900,
            raw_rx_bytes: 512,
            wire_rx_bytes: 300,
        },
        trace: 0x7AC3_0001_0002_0003,
    }
}

fn stats() -> ServerStats {
    let mut histogram = PhaseHistogram::default();
    histogram.record(1500);
    ServerStats {
        workers: 4,
        queue_capacity: 16,
        queued: 3,
        jobs_done: 100,
        busy_rejections: 2,
        coalesced: 7,
        memory: TierStats {
            hits: 60,
            misses: 40,
            entries: 9,
            bytes: 1 << 20,
            capacity_bytes: 256 << 20,
            evictions: 5,
        },
        disk: TierStats::default(),
        store_writes: 40,
        disk_corruptions: 1,
        synthesis: histogram,
        encode: PhaseHistogram::default(),
        embed: histogram,
        segment: PhaseHistogram::default(),
        codec: CodecCounters {
            connections_v2: 1,
            connections_v3: 2,
            frames_sent: 30,
            frames_received: 31,
            crc_rejects: 1,
            raw_tx_bytes: 4096,
            wire_tx_bytes: 1024,
            raw_rx_bytes: 512,
            wire_rx_bytes: 600,
        },
        connections_active: 2,
        connections_max: 128,
        connections_shed: 6,
        redirects: 3,
        shard_id: 1,
        shard_count: 3,
        epoch: 4,
        replicas_sent: 11,
        replicas_received: 12,
        replica_queue_drops: 1,
        reconfigures: 2,
        peers_down: 1,
        spans_recorded: 44,
        spans_evicted: 3,
    }
}

/// Every request variant.
fn requests() -> Vec<Request> {
    vec![
        Request::Hello(CodecConfig::preferred()),
        Request::Submit(spec()),
        Request::SubmitDirect(spec()),
        Request::Poll(7),
        Request::Wait(u64::MAX),
        Request::Stats,
        Request::Replicate {
            epoch: 3,
            key: 0x1234_5678_9ABC_DEF0,
            bytes: vec![7, 0, 255, 42],
            trace: 0x7AC3_0001_0002_0003,
        },
        Request::Reconfigure {
            epoch: 9,
            peers: vec!["127.0.0.1:7211".to_string(), "127.0.0.1:7212".to_string()],
        },
        Request::Ping,
        Request::TraceDump {
            trace: 0x7AC3_0001_0002_0003,
        },
    ]
}

/// Every response variant.
fn responses() -> Vec<Response> {
    vec![
        Response::Accepted(42),
        Response::Busy {
            queued: 8,
            capacity: 8,
        },
        Response::Phase(JobPhase::Queued),
        Response::Phase(JobPhase::Running),
        Response::Done(report()),
        Response::Failed {
            message: "cube file: missing header line".to_string(),
            conn: ConnStats {
                frames_sent: 2,
                frames_received: 2,
                raw_tx_bytes: 128,
                wire_tx_bytes: 90,
                raw_rx_bytes: 64,
                wire_rx_bytes: 50,
            },
        },
        Response::Stats(stats()),
        Response::Error("unknown job id 9".to_string()),
        Response::HelloAck(CodecConfig {
            compress: false,
            chunk_bytes: MIN_CHUNK_BYTES,
        }),
        Response::Redirect {
            addr: "127.0.0.1:7212".to_string(),
            trace: 0x7AC3_0001_0002_0003,
        },
        Response::Spans(span_dump()),
        Response::Pong {
            epoch: 5,
            shard_id: u32::MAX,
            peers: vec!["127.0.0.1:7211".to_string(), "127.0.0.1:7213".to_string()],
        },
        Response::Ack { epoch: 5 },
    ]
}

/// The canonical payload of every message at every version it encodes
/// at, paired with a decode-and-reencode closure for the right
/// direction.
fn all_payloads() -> Vec<Vec<u8>> {
    let mut payloads = Vec::new();
    for version in MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION {
        for request in requests() {
            let payload = request.encode_versioned(version);
            // Hello/SubmitDirect stamp their birth version; everything
            // else round-trips at the stamped version
            if Request::decode(&payload).is_ok() {
                payloads.push(payload);
            }
        }
        for response in responses() {
            let payload = response.encode_versioned(version);
            if Response::decode(&payload).is_ok() {
                payloads.push(payload);
            }
        }
    }
    payloads
}

#[test]
fn every_message_round_trips_at_every_version() {
    for version in MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION {
        for request in requests() {
            let payload = request.encode_versioned(version);
            let back = Request::decode(&payload);
            match &request {
                // the trace context is a v6 field: a pre-v6 stamp
                // negotiates it away, everything else survives
                Request::Submit(s) if version < 6 => {
                    let mut expect = s.clone();
                    expect.trace = TraceContext::default();
                    assert_eq!(back, Ok(Request::Submit(expect)), "v{version}");
                }
                Request::SubmitDirect(s) if version < 6 => {
                    let mut expect = s.clone();
                    expect.trace = TraceContext::default();
                    assert_eq!(back, Ok(Request::SubmitDirect(expect)), "v{version}");
                }
                Request::Replicate {
                    epoch, key, bytes, ..
                } if version < 6 => {
                    assert_eq!(
                        back,
                        Ok(Request::Replicate {
                            epoch: *epoch,
                            key: *key,
                            bytes: bytes.clone(),
                            trace: 0,
                        }),
                        "v{version}"
                    );
                }
                // Hello, SubmitDirect and TraceDump force their birth
                // version up; the rest round-trip at the stamped one
                _ => assert_eq!(back.as_ref(), Ok(&request), "v{version}"),
            }
        }
        for response in responses() {
            let payload = response.encode_versioned(version);
            let back = Response::decode(&payload);
            match &response {
                // HelloAck and Spans are version-floored; each counter
                // block only survives its own generation's layout
                Response::HelloAck(_) | Response::Spans(_) => {
                    assert_eq!(back, Ok(response.clone()));
                }
                Response::Redirect { addr, .. } if version < 6 => {
                    assert_eq!(
                        back,
                        Ok(Response::Redirect {
                            addr: addr.clone(),
                            trace: 0,
                        }),
                        "v{version}"
                    );
                }
                Response::Failed { message, .. } if version < 6 => {
                    assert_eq!(
                        back,
                        Ok(Response::Failed {
                            message: message.clone(),
                            conn: ConnStats::default(),
                        }),
                        "v{version}"
                    );
                }
                Response::Stats(s) if version < 6 => {
                    let mut expect = *s;
                    if version < 3 {
                        expect.codec = CodecCounters::default();
                    }
                    if version < 4 {
                        expect.connections_active = 0;
                        expect.connections_max = 0;
                        expect.connections_shed = 0;
                        expect.redirects = 0;
                        expect.shard_id = 0;
                        expect.shard_count = 0;
                    }
                    if version < 5 {
                        expect.epoch = 0;
                        expect.replicas_sent = 0;
                        expect.replicas_received = 0;
                        expect.replica_queue_drops = 0;
                        expect.reconfigures = 0;
                        expect.peers_down = 0;
                    }
                    expect.spans_recorded = 0;
                    expect.spans_evicted = 0;
                    assert_eq!(back, Ok(Response::Stats(expect)));
                }
                Response::Done(r) if version < 6 => {
                    let mut expect = *r;
                    if version < 5 {
                        expect.conn = ConnStats::default();
                    }
                    expect.trace = 0;
                    assert_eq!(back, Ok(Response::Done(expect)));
                }
                _ => assert_eq!(back, Ok(response.clone()), "v{version}"),
            }
        }
    }
}

#[test]
fn every_truncation_of_every_message_is_rejected() {
    for payload in all_payloads() {
        for cut in 0..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "request prefix of {cut}/{} bytes decoded",
                payload.len()
            );
            assert!(
                Response::decode(&payload[..cut]).is_err(),
                "response prefix of {cut}/{} bytes decoded",
                payload.len()
            );
        }
    }
}

/// A flipped payload either fails to decode or decodes to a message
/// that re-encodes to exactly the flipped bytes — the payload codecs
/// are canonical, so nothing ambiguous ever gets through.
#[test]
fn every_single_bit_flip_decodes_canonically_or_not_at_all() {
    for payload in all_payloads() {
        for bit in 0..payload.len() * 8 {
            let mut flipped = payload.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            if let Ok(request) = Request::decode(&flipped) {
                assert_eq!(
                    request.encode_versioned(flipped[0]),
                    flipped,
                    "request decode is not canonical at bit {bit}"
                );
            }
            if let Ok(response) = Response::decode(&flipped) {
                assert_eq!(
                    response.encode_versioned(flipped[0]),
                    flipped,
                    "response decode is not canonical at bit {bit}"
                );
            }
        }
    }
}

/// Through the codec chain no flipped bit reaches the payload parser
/// at all: the per-chunk CRC rejects every one, in every frame, for
/// every message, with and without compression.
#[test]
fn through_the_codec_every_flip_is_a_crc_reject() {
    for compress in [false, true] {
        let codec = Codec::new(CodecConfig {
            compress,
            chunk_bytes: MIN_CHUNK_BYTES,
        });
        for payload in all_payloads() {
            let frames = codec.encode_frames(&payload).unwrap();
            for at in 0..frames.len() {
                for bit in 0..frames[at].len() * 8 {
                    let mut corrupt = frames.clone();
                    corrupt[at][bit / 8] ^= 1 << (bit % 8);
                    assert!(
                        matches!(codec.decode_frames(corrupt), Err(CodecError::Crc { .. })),
                        "compress={compress} frame {at} bit {bit} escaped the CRC"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic either payload decoder.
    #[test]
    fn random_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Arbitrary frame lists never panic the codec chain.
    #[test]
    fn random_frames_never_panic_the_codec(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            0..6,
        ),
        compress in any::<bool>(),
    ) {
        let codec = Codec::new(CodecConfig { compress, chunk_bytes: MIN_CHUNK_BYTES });
        prop_assert!(codec.decode_frames(frames).is_err());
    }

    /// A random payload round-trips through the chain bit-identically
    /// at any negotiable chunk size.
    #[test]
    fn random_messages_round_trip(
        message in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk in MIN_CHUNK_BYTES..=4096u32,
        compress in any::<bool>(),
    ) {
        let codec = Codec::new(CodecConfig { compress, chunk_bytes: chunk });
        let frames = codec.encode_frames(&message).unwrap();
        prop_assert_eq!(codec.decode_frames(frames).unwrap(), message);
    }

    /// Removing one peer from a ring remaps only the keys that peer
    /// held and never reorders the survivors: for every key, the
    /// reduced ring's rendezvous order is the full ring's order with
    /// the removed peer deleted. Replication correctness rests on
    /// this — a key's replica set after a shard death is its old set
    /// minus the dead shard plus the next runner-up, so a warm replica
    /// is always the failover target.
    #[test]
    fn ring_removal_preserves_survivor_order(
        n in 2usize..8,
        removed_seed in any::<usize>(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let removed = removed_seed % n;
        let peers: Vec<String> = (0..n).map(|i| format!("10.1.0.{i}:7113")).collect();
        let full = ShardRing::new(peers.clone()).unwrap();
        let survivors: Vec<String> = peers
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != removed)
            .map(|(_, a)| a.clone())
            .collect();
        let reduced = ShardRing::new(survivors).unwrap();
        for key in keys {
            let full_order: Vec<&String> = full
                .ranked(key)
                .into_iter()
                .filter(|&i| i != removed)
                .map(|i| &full.shards()[i])
                .collect();
            let reduced_order: Vec<&String> = reduced
                .ranked(key)
                .into_iter()
                .map(|i| &reduced.shards()[i])
                .collect();
            prop_assert_eq!(full_order, reduced_order, "survivor order changed");
            // the replica-set algebra follows: the reduced set is a
            // prefix-consistent repair of the full set
            let full_replicas: Vec<String> = full
                .replicas(key, 2)
                .into_iter()
                .filter(|a| *a != full.shards()[removed])
                .collect();
            let reduced_replicas = reduced.replicas(key, 2);
            prop_assert_eq!(&reduced_replicas[..full_replicas.len()], &full_replicas[..]);
        }
    }
}
