//! Property-based tests for the GF(2) substrate.
//!
//! These complement the example-based unit tests in each module with
//! randomized algebraic laws: the linear-algebra identities every
//! downstream algorithm silently relies on.

#![cfg(test)]

use proptest::prelude::*;

use crate::{berlekamp_massey, BitMatrix, BitVec, Gf2Poly, IncrementalSolver, SolveOutcome};

fn bitvec(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bits)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    proptest::collection::vec(bitvec(cols), rows).prop_map(BitMatrix::from_rows)
}

fn poly(max_degree: usize) -> impl Strategy<Value = Gf2Poly> {
    proptest::collection::vec(any::<bool>(), max_degree + 1)
        .prop_map(|bits| Gf2Poly::from_coeffs(BitVec::from_bits(bits)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- BitVec ---

    #[test]
    fn xor_is_an_involution(a in bitvec(97), b in bitvec(97)) {
        let mut x = a.clone();
        x.xor_with(&b);
        x.xor_with(&b);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn count_ones_matches_iter_ones(a in bitvec(130)) {
        prop_assert_eq!(a.count_ones(), a.iter_ones().count());
        prop_assert_eq!(a.first_one(), a.iter_ones().next());
        prop_assert_eq!(a.last_one(), a.iter_ones().last());
    }

    #[test]
    fn dot_is_bilinear(a in bitvec(64), b in bitvec(64), c in bitvec(64)) {
        let mut bc = b.clone();
        bc.xor_with(&c);
        prop_assert_eq!(a.dot(&bc), a.dot(&b) ^ a.dot(&c));
    }

    #[test]
    fn shift_down_then_up_clears_bit0(a in bitvec(100)) {
        let mut v = a.clone();
        v.shift_down();
        v.shift_up();
        // equals a with bit 0 cleared
        let mut expect = a.clone();
        expect.set(0, false);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn from_words_roundtrips(a in bitvec(150)) {
        prop_assert_eq!(BitVec::from_words(150, a.as_words()), a);
    }

    #[test]
    fn eq_under_mask_is_xor_masked(a in bitvec(80), b in bitvec(80), m in bitvec(80)) {
        let mut diff = a.clone();
        diff.xor_with(&b);
        diff.and_with(&m);
        prop_assert_eq!(a.eq_under_mask(&b, &m), diff.is_zero());
    }

    // --- BitMatrix ---

    #[test]
    fn mul_vec_distributes(m in matrix(9, 13), a in bitvec(13), b in bitvec(13)) {
        let mut ab = a.clone();
        ab.xor_with(&b);
        let mut sum = m.mul_vec(&a);
        sum.xor_with(&m.mul_vec(&b));
        prop_assert_eq!(m.mul_vec(&ab), sum);
    }

    #[test]
    fn pow_adds_exponents(m in matrix(6, 6), e1 in 0u64..20, e2 in 0u64..20) {
        prop_assert_eq!(m.pow(e1).mul(&m.pow(e2)), m.pow(e1 + e2));
    }

    #[test]
    fn transpose_swaps_products(m in matrix(7, 9), v in bitvec(9)) {
        prop_assert_eq!(m.mul_vec(&v), m.transpose().vec_mul(&v));
    }

    #[test]
    fn rank_invariant_under_transpose(m in matrix(8, 11)) {
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn inverse_when_it_exists_is_two_sided(m in matrix(7, 7)) {
        if let Some(inv) = m.inverse() {
            let id = BitMatrix::identity(7);
            prop_assert_eq!(m.mul(&inv), id.clone());
            prop_assert_eq!(inv.mul(&m), id);
            prop_assert_eq!(m.rank(), 7);
        } else {
            prop_assert!(m.rank() < 7);
        }
    }

    // --- Gf2Poly ---

    #[test]
    fn poly_mul_commutes_and_degrees_add(a in poly(12), b in poly(12)) {
        let ab = a.mul(&b);
        prop_assert_eq!(ab.clone(), b.mul(&a));
        match (a.degree(), b.degree()) {
            (Some(da), Some(db)) => prop_assert_eq!(ab.degree(), Some(da + db)),
            _ => prop_assert!(ab.is_zero()),
        }
    }

    #[test]
    fn poly_rem_is_smaller_and_consistent(a in poly(20), m in poly(8)) {
        prop_assume!(!m.is_zero());
        let r = a.rem(&m);
        if let (Some(dr), Some(dm)) = (r.degree(), m.degree()) {
            prop_assert!(dr < dm);
        }
        // (a - r) divisible by m: gcd(m, a - r)... check via rem again
        let diff = a.add(&r);
        prop_assert!(diff.rem(&m).is_zero());
    }

    #[test]
    fn gcd_divides_both(a in poly(10), b in poly(10)) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn reciprocal_is_involutive_for_odd_constant_term(exps in proptest::collection::btree_set(0usize..16, 1..6)) {
        let mut exps: Vec<usize> = exps.into_iter().collect();
        if !exps.contains(&0) {
            exps.push(0); // ensure nonzero constant term
        }
        let p = Gf2Poly::from_exponents(&exps);
        prop_assert_eq!(p.reciprocal().reciprocal(), p);
    }

    // --- IncrementalSolver ---

    #[test]
    fn consistent_systems_never_conflict_and_solutions_check(
        truth in bitvec(18),
        rows in proptest::collection::vec(bitvec(18), 1..30),
    ) {
        let mut solver = IncrementalSolver::new(18);
        for row in &rows {
            let rhs = row.dot(&truth);
            prop_assert_ne!(solver.insert(row, rhs), SolveOutcome::Conflict);
        }
        let solution = solver.solve_with(|_| false);
        prop_assert!(solver.check(&solution));
        // every original equation is satisfied by the solution
        for row in &rows {
            prop_assert_eq!(row.dot(&solution), row.dot(&truth));
        }
    }

    #[test]
    fn rank_equals_matrix_rank(rows in proptest::collection::vec(bitvec(12), 1..20)) {
        let mut solver = IncrementalSolver::new(12);
        for row in &rows {
            let _ = solver.insert(row, false); // all-zero rhs: always consistent
        }
        let m = BitMatrix::from_rows(rows);
        prop_assert_eq!(solver.rank(), m.rank());
    }

    #[test]
    fn rollback_is_exact(
        first in proptest::collection::vec(bitvec(10), 0..8),
        second in proptest::collection::vec(bitvec(10), 0..8),
    ) {
        let mut a = IncrementalSolver::new(10);
        for row in &first {
            let _ = a.insert(row, true);
        }
        let cp = a.checkpoint();
        let rank_before = a.rank();
        for row in &second {
            let _ = a.insert(row, false);
        }
        a.rollback(cp);
        prop_assert_eq!(a.rank(), rank_before);
        // and behaves exactly like a solver that never saw `second`
        let mut b = IncrementalSolver::new(10);
        for row in &first {
            let _ = b.insert(row, true);
        }
        for probe in &second {
            prop_assert_eq!(a.probe(probe, true), b.probe(probe, true));
        }
    }

    // --- Berlekamp–Massey ---

    #[test]
    fn bm_connection_poly_regenerates_the_sequence(
        init in proptest::collection::vec(any::<bool>(), 1..8),
        taps in proptest::collection::btree_set(1usize..8, 1..4),
    ) {
        let order = *taps.iter().max().unwrap();
        prop_assume!(init.len() >= order);
        // generate 48 bits of the recurrence s[i] = xor s[i-t]; only
        // the first `order` init bits may be free, or the prefix would
        // violate the recurrence and force a longer LFSR
        let mut seq = init[..order].to_vec();
        while seq.len() < 48 {
            let i = seq.len();
            let bit = taps.iter().fold(false, |acc, &t| acc ^ seq[i - t]);
            seq.push(bit);
        }
        let (c, l) = berlekamp_massey(&seq);
        prop_assert!(l <= order, "BM must not overestimate: {l} > {order}");
        // the recovered recurrence regenerates the whole sequence
        for i in l..seq.len() {
            let mut bit = false;
            for j in 1..=l {
                if c.coeff(j) && seq[i - j] {
                    bit = !bit;
                }
            }
            prop_assert_eq!(bit, seq[i], "mismatch at {}", i);
        }
    }

    // --- PackedPatterns ---

    #[test]
    fn packed_patterns_roundtrip_is_lossless(
        rows in proptest::collection::vec(bitvec(19), 0..200),
    ) {
        let packed = crate::PackedPatterns::from_vectors(19, &rows);
        prop_assert_eq!(packed.count(), rows.len());
        prop_assert_eq!(packed.to_vectors(), rows.clone());
        // bool form round-trips through the same storage
        let bools: Vec<Vec<bool>> = rows.iter().map(|r| r.iter().collect()).collect();
        let packed2 = crate::PackedPatterns::from_bools(19, &bools);
        prop_assert_eq!(packed2.to_bools(), bools);
        prop_assert_eq!(packed, packed2);
    }

    #[test]
    fn packed_match_mask_equals_scalar_cube_matching(
        rows in proptest::collection::vec(bitvec(17), 1..130),
        care in bitvec(17),
        raw_values in bitvec(17),
    ) {
        let mut values = raw_values;
        values.and_with(&care);
        let packed = crate::PackedPatterns::from_vectors(17, &rows);
        for block in 0..packed.block_count() {
            let mask = packed.match_mask(block, &values, &care);
            for lane in 0..64 {
                let p = block * 64 + lane;
                let got = (mask >> lane) & 1 == 1;
                if p < rows.len() {
                    prop_assert_eq!(got, values.eq_under_mask(&rows[p], &care));
                } else {
                    prop_assert!(!got, "tail lane {} must stay clear", lane);
                }
            }
        }
    }
}
