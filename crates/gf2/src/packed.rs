//! Bit-packed pattern blocks: 64 test patterns per `u64` lane.
//!
//! A fault simulator (or an embedding detector) that consumes patterns
//! one `Vec<bool>` at a time wastes 63/64 of every machine word.
//! [`PackedPatterns`] stores a pattern list *bit-sliced*: one
//! [`BitVec`] per bit position, whose bit `p` is pattern `p`'s value at
//! that position. Word `b` of slice `i` therefore carries bit `i` of
//! the 64 patterns of *block* `b` — exactly the `pi_words` layout the
//! word-parallel kernels consume — so simulating `N` patterns costs
//! `ceil(N/64)` block evaluations instead of `N`.

use crate::bitvec::BitVec;

/// Patterns per block: the machine word width the kernels operate on.
pub const PATTERNS_PER_BLOCK: usize = 64;

/// A list of equal-width, fully specified test patterns stored
/// bit-sliced for 64-way word-parallel processing.
///
/// Conversions to and from the scalar forms (`Vec<bool>` rows or
/// [`BitVec`] rows) are lossless; ragged tail blocks (when the pattern
/// count is not a multiple of 64) keep their unused lane bits zero, as
/// [`block_mask`](PackedPatterns::block_mask) documents.
///
/// # Example
///
/// ```
/// use ss_gf2::{BitVec, PackedPatterns};
///
/// let rows = vec![
///     BitVec::from_bits([true, false, true]),
///     BitVec::from_bits([false, false, true]),
/// ];
/// let packed = PackedPatterns::from_vectors(3, &rows);
/// assert_eq!(packed.count(), 2);
/// assert_eq!(packed.block_count(), 1);
/// // slice 2 (bit position 2) holds both patterns' third bit
/// assert_eq!(packed.word(2, 0), 0b11);
/// assert_eq!(packed.to_vectors(), rows);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPatterns {
    /// `slices[i]` is a `count`-bit vector: bit `p` = pattern `p`'s
    /// value at position `i`.
    slices: Vec<BitVec>,
    width: usize,
    count: usize,
}

impl PackedPatterns {
    /// `count` all-zero patterns of `width` bits each.
    pub fn zeros(width: usize, count: usize) -> Self {
        PackedPatterns {
            slices: vec![BitVec::zeros(count); width],
            width,
            count,
        }
    }

    /// Resets the container to `count` all-zero patterns of `width`
    /// bits, reusing the existing slice allocations — the scratch-
    /// buffer form of [`zeros`](PackedPatterns::zeros) for callers
    /// that fill one pattern block set per outer iteration.
    pub fn reset(&mut self, width: usize, count: usize) {
        self.slices.resize_with(width, || BitVec::zeros(count));
        for slice in &mut self.slices {
            slice.resize(count);
            slice.clear();
        }
        self.width = width;
        self.count = count;
    }

    /// Packs fully specified [`BitVec`] rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `width`.
    pub fn from_vectors(width: usize, rows: &[BitVec]) -> Self {
        let mut packed = PackedPatterns::zeros(width, rows.len());
        for (p, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), width, "pattern {p} width mismatch");
            for i in row.iter_ones() {
                packed.slices[i].set(p, true);
            }
        }
        packed
    }

    /// Packs `Vec<bool>` rows (the legacy pattern form).
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `width`.
    pub fn from_bools(width: usize, rows: &[Vec<bool>]) -> Self {
        let mut packed = PackedPatterns::zeros(width, rows.len());
        for (p, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), width, "pattern {p} width mismatch");
            for (i, &bit) in row.iter().enumerate() {
                if bit {
                    packed.slices[i].set(p, true);
                }
            }
        }
        packed
    }

    /// Appends one pattern.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != width()`.
    pub fn push(&mut self, row: &BitVec) {
        assert_eq!(row.len(), self.width, "pattern width mismatch");
        self.count += 1;
        for (i, slice) in self.slices.iter_mut().enumerate() {
            slice.resize(self.count);
            if row.get(i) {
                slice.set(self.count - 1, true);
            }
        }
    }

    /// Bits per pattern.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of patterns.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` when no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of 64-pattern blocks (`ceil(count / 64)`).
    pub fn block_count(&self) -> usize {
        self.count.div_ceil(PATTERNS_PER_BLOCK)
    }

    /// Mask of the valid lanes of block `block`: all ones except in the
    /// final ragged block, where only the low `count % 64` bits are set.
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()`.
    pub fn block_mask(&self, block: usize) -> u64 {
        assert!(block < self.block_count(), "block {block} out of range");
        let used = self.count - block * PATTERNS_PER_BLOCK;
        if used >= PATTERNS_PER_BLOCK {
            u64::MAX
        } else {
            (1u64 << used) - 1
        }
    }

    /// The packed word of bit position `bit` in block `block`: lane `p`
    /// is pattern `block*64 + p`'s value at `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width()` or `block >= block_count()`.
    pub fn word(&self, bit: usize, block: usize) -> u64 {
        assert!(bit < self.width, "bit {bit} out of range {}", self.width);
        self.slices[bit].word(block)
    }

    /// Overwrites the packed word of `(bit, block)`; lanes beyond the
    /// pattern count are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width()` or `block >= block_count()`.
    pub fn set_word(&mut self, bit: usize, block: usize, value: u64) {
        assert!(bit < self.width, "bit {bit} out of range {}", self.width);
        let mask = self.block_mask(block);
        self.slices[bit].set_word(block, value & mask);
    }

    /// The slice of bit position `bit` (one bit per pattern).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width()`.
    pub fn slice(&self, bit: usize) -> &BitVec {
        &self.slices[bit]
    }

    /// The value of pattern `pattern` at bit position `bit`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, pattern: usize, bit: usize) -> bool {
        assert!(pattern < self.count, "pattern {pattern} out of range");
        self.slices[bit].get(pattern)
    }

    /// Reconstructs pattern `pattern` as a [`BitVec`].
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= count()`.
    pub fn pattern(&self, pattern: usize) -> BitVec {
        assert!(pattern < self.count, "pattern {pattern} out of range");
        let mut row = BitVec::zeros(self.width);
        for (i, slice) in self.slices.iter().enumerate() {
            if slice.get(pattern) {
                row.set(i, true);
            }
        }
        row
    }

    /// Unpacks to [`BitVec`] rows (inverse of
    /// [`from_vectors`](PackedPatterns::from_vectors)).
    pub fn to_vectors(&self) -> Vec<BitVec> {
        (0..self.count).map(|p| self.pattern(p)).collect()
    }

    /// Unpacks to `Vec<bool>` rows (inverse of
    /// [`from_bools`](PackedPatterns::from_bools)).
    pub fn to_bools(&self) -> Vec<Vec<bool>> {
        (0..self.count)
            .map(|p| (0..self.width).map(|i| self.slices[i].get(p)).collect())
            .collect()
    }

    /// Copies the packed input words of `block` into `out`
    /// (`out[i]` = word of bit position `i`) — the `pi_words` layout
    /// word-parallel simulators consume. `out` is cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()`.
    pub fn block_words(&self, block: usize, out: &mut Vec<u64>) {
        assert!(block < self.block_count(), "block {block} out of range");
        out.clear();
        out.extend(self.slices.iter().map(|s| s.word(block)));
    }

    /// The cube-matching kernel: the mask of patterns in `block` that
    /// agree with `values` on every position selected by `care`.
    ///
    /// A test cube with care-mask `care` and values `values` is
    /// embedded in pattern `p` of the block iff bit `p` of the result
    /// is set. Cost is one word-op per specified bit, so a whole block
    /// of 64 patterns is matched in `O(specified)` time.
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()` or either vector's length
    /// differs from `width()`.
    pub fn match_mask(&self, block: usize, values: &BitVec, care: &BitVec) -> u64 {
        assert_eq!(values.len(), self.width, "values width mismatch");
        assert_eq!(care.len(), self.width, "care width mismatch");
        let mut mask = self.block_mask(block);
        for i in care.iter_ones() {
            let word = self.slices[i].word(block);
            mask &= if values.get(i) { word } else { !word };
            if mask == 0 {
                break;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(width: usize, count: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count)
            .map(|_| BitVec::random(width, &mut rng))
            .collect()
    }

    #[test]
    fn vector_roundtrip_exact_block() {
        let rows = random_rows(37, 128, 1);
        let packed = PackedPatterns::from_vectors(37, &rows);
        assert_eq!(packed.count(), 128);
        assert_eq!(packed.block_count(), 2);
        assert_eq!(packed.block_mask(1), u64::MAX);
        assert_eq!(packed.to_vectors(), rows);
    }

    #[test]
    fn vector_roundtrip_ragged_tail() {
        let rows = random_rows(21, 70, 2);
        let packed = PackedPatterns::from_vectors(21, &rows);
        assert_eq!(packed.block_count(), 2);
        assert_eq!(packed.block_mask(0), u64::MAX);
        assert_eq!(packed.block_mask(1), (1 << 6) - 1);
        assert_eq!(packed.to_vectors(), rows);
        // tail lanes beyond the pattern count stay zero in every slice
        for bit in 0..21 {
            assert_eq!(packed.word(bit, 1) & !packed.block_mask(1), 0);
        }
    }

    #[test]
    fn bool_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(3);
        let rows: Vec<Vec<bool>> = (0..66)
            .map(|_| (0..10).map(|_| rng.gen()).collect())
            .collect();
        let packed = PackedPatterns::from_bools(10, &rows);
        assert_eq!(packed.to_bools(), rows);
    }

    #[test]
    fn push_matches_bulk_construction() {
        let rows = random_rows(15, 67, 4);
        let bulk = PackedPatterns::from_vectors(15, &rows);
        let mut incremental = PackedPatterns::zeros(15, 0);
        for row in &rows {
            incremental.push(row);
        }
        assert_eq!(incremental, bulk);
    }

    #[test]
    fn get_and_pattern_agree() {
        let rows = random_rows(9, 5, 5);
        let packed = PackedPatterns::from_vectors(9, &rows);
        for (p, row) in rows.iter().enumerate() {
            assert_eq!(&packed.pattern(p), row);
            for bit in 0..9 {
                assert_eq!(packed.get(p, bit), row.get(bit));
            }
        }
    }

    #[test]
    fn set_word_masks_tail_lanes() {
        let mut packed = PackedPatterns::zeros(4, 10);
        packed.set_word(2, 0, u64::MAX);
        assert_eq!(packed.word(2, 0), (1 << 10) - 1);
        assert_eq!(packed.slice(2).count_ones(), 10);
    }

    #[test]
    fn reset_reuses_and_zeroes() {
        let rows = random_rows(12, 70, 6);
        let mut packed = PackedPatterns::from_vectors(12, &rows);
        packed.reset(9, 40);
        assert_eq!(packed.width(), 9);
        assert_eq!(packed.count(), 40);
        assert_eq!(packed, PackedPatterns::zeros(9, 40));
        // growing again also starts from all-zero
        packed.reset(12, 130);
        assert_eq!(packed, PackedPatterns::zeros(12, 130));
    }

    #[test]
    fn block_words_is_the_pi_words_layout() {
        let rows = random_rows(6, 64, 7);
        let packed = PackedPatterns::from_vectors(6, &rows);
        let mut words = Vec::new();
        packed.block_words(0, &mut words);
        assert_eq!(words.len(), 6);
        for (p, row) in rows.iter().enumerate() {
            for (i, &w) in words.iter().enumerate() {
                assert_eq!((w >> p) & 1 == 1, row.get(i), "pattern {p} bit {i}");
            }
        }
    }

    #[test]
    fn match_mask_agrees_with_scalar_matching() {
        let mut rng = SmallRng::seed_from_u64(8);
        let rows = random_rows(24, 100, 9);
        let packed = PackedPatterns::from_vectors(24, &rows);
        for _ in 0..20 {
            // random cube: ~25% of positions specified
            let care = {
                let mut c = BitVec::zeros(24);
                for i in 0..24 {
                    if rng.gen_bool(0.25) {
                        c.set(i, true);
                    }
                }
                c
            };
            let mut values = BitVec::random(24, &mut rng);
            values.and_with(&care);
            for block in 0..packed.block_count() {
                let mask = packed.match_mask(block, &values, &care);
                for lane in 0..64 {
                    let p = block * 64 + lane;
                    if p >= packed.count() {
                        assert_eq!((mask >> lane) & 1, 0, "tail lane must be clear");
                        continue;
                    }
                    let expect = values.eq_under_mask(&rows[p], &care);
                    assert_eq!((mask >> lane) & 1 == 1, expect, "pattern {p}");
                }
            }
        }
    }

    #[test]
    fn empty_and_zero_width() {
        let packed = PackedPatterns::zeros(0, 0);
        assert!(packed.is_empty());
        assert_eq!(packed.block_count(), 0);
        assert_eq!(packed.to_vectors(), Vec::<BitVec>::new());
        let some = PackedPatterns::zeros(3, 65);
        assert_eq!(some.count(), 65);
        assert!(!some.get(64, 1));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn from_vectors_rejects_ragged_rows() {
        let rows = vec![BitVec::zeros(3), BitVec::zeros(4)];
        let _ = PackedPatterns::from_vectors(3, &rows);
    }
}
