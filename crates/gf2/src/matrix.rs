//! Row-major matrices over GF(2).

use std::fmt;

use rand::Rng;

use crate::BitVec;

/// A dense matrix over GF(2), stored as one [`BitVec`] per row.
///
/// The matrix powering method [`BitMatrix::pow`] is the mathematical core
/// of State Skip LFSRs: if `T` is the transition matrix of an LFSR, the
/// State Skip circuit for speedup factor `k` is exactly the linear map
/// `T^k`, and its rows are the XOR expressions `F_0^k .. F_{n-1}^k` of
/// the paper (equation (1)).
///
/// # Example
///
/// ```
/// use ss_gf2::BitMatrix;
///
/// let identity = BitMatrix::identity(4);
/// assert_eq!(identity.pow(12345), identity);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// Creates a `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVec::zeros(cols); rows],
            cols,
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.rows[i].set(i, true);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        BitMatrix { rows, cols }
    }

    /// Creates a uniformly random `rows x cols` matrix.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        BitMatrix {
            rows: (0..rows).map(|_| BitVec::random(cols, rng)).collect(),
            cols,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// `true` for a 0x0 matrix.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut BitVec {
        &mut self.rows[i]
    }

    /// Iterates over the rows in order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }

    /// Element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Sets element (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.rows[r].set(c, value);
    }

    /// Matrix–vector product `self * v` (treating `v` as a column).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != col_count()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "matrix-vector dimension mismatch");
        BitVec::from_bits(self.rows.iter().map(|row| row.dot(v)))
    }

    /// Vector–matrix product `v * self` (treating `v` as a row).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != row_count()`.
    pub fn vec_mul(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.rows.len(), "vector-matrix dimension mismatch");
        let mut out = BitVec::zeros(self.cols);
        for i in v.iter_ones() {
            out.xor_with(&self.rows[i]);
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.col_count() != other.row_count()`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.cols,
            other.rows.len(),
            "matrix-matrix dimension mismatch"
        );
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut acc = BitVec::zeros(other.cols);
                for i in row.iter_ones() {
                    acc.xor_with(&other.rows[i]);
                }
                acc
            })
            .collect();
        BitMatrix {
            rows,
            cols: other.cols,
        }
    }

    /// Matrix power `self^e` by square-and-multiply.
    ///
    /// `self^0` is the identity.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn pow(&self, mut e: u64) -> BitMatrix {
        assert_eq!(self.rows.len(), self.cols, "pow requires a square matrix");
        let mut result = BitMatrix::identity(self.cols);
        let mut base = self.clone();
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        result
    }

    /// Transpose, word-parallel: the matrix is processed as 64x64 bit
    /// tiles, each transposed in-register with the masked-swap network
    /// (6 rounds of shift/XOR on whole words) instead of one
    /// `get`/`set` pair per set bit. Dense `n x n` transposes — the
    /// expression-table and packed-lane-init path — drop from
    /// O(ones) bit pokes to O(n^2/64 * log 64) word ops.
    pub fn transpose(&self) -> BitMatrix {
        let rows = self.rows.len();
        let cols = self.cols;
        let mut t = BitMatrix::zeros(cols, rows);
        let mut tile = [0u64; 64];
        for rb in 0..rows.div_ceil(64) {
            let rcount = (rows - rb * 64).min(64);
            for cb in 0..cols.div_ceil(64) {
                for (i, lane) in tile.iter_mut().enumerate() {
                    *lane = if i < rcount {
                        self.rows[rb * 64 + i].word(cb)
                    } else {
                        0
                    };
                }
                transpose64(&mut tile);
                let ccount = (cols - cb * 64).min(64);
                for (j, &lane) in tile.iter().enumerate().take(ccount) {
                    // set_word masks the ragged tail, preserving the
                    // zero-tail invariant on the last word
                    t.rows[cb * 64 + j].set_word(rb, lane);
                }
            }
        }
        t
    }

    /// Rank over GF(2) (by Gaussian elimination on a copy).
    pub fn rank(&self) -> usize {
        let mut rows: Vec<BitVec> = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.cols {
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_with(&pivot_row);
                }
            }
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        rank
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<BitMatrix> {
        if self.rows.len() != self.cols {
            return None;
        }
        let n = self.cols;
        let mut a = self.rows.clone();
        let mut inv = BitMatrix::identity(n);
        for col in 0..n {
            let pivot = (col..n).find(|&r| a[r].get(col))?;
            a.swap(col, pivot);
            inv.rows.swap(col, pivot);
            let a_pivot = a[col].clone();
            let i_pivot = inv.rows[col].clone();
            #[allow(clippy::needless_range_loop)] // r indexes a and inv.rows in lockstep
            for r in 0..n {
                if r != col && a[r].get(col) {
                    a[r].xor_with(&a_pivot);
                    inv.rows[r].xor_with(&i_pivot);
                }
            }
        }
        Some(inv)
    }

    /// Total number of set bits; a proxy for the raw (pre-sharing) XOR
    /// cost of implementing the matrix as combinational logic.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(BitVec::count_ones).sum()
    }

    /// A basis of the null space `{x : self * x = 0}`.
    ///
    /// The returned vectors are linearly independent and there are
    /// `col_count() - rank()` of them. Used by the phase-shifter
    /// diagnostics to enumerate structural output dependencies.
    pub fn kernel(&self) -> Vec<BitVec> {
        let n = self.cols;
        // reduce a copy, remembering pivot columns
        let mut rows: Vec<BitVec> = self.rows.clone();
        let mut pivots: Vec<usize> = Vec::new();
        let mut rank = 0usize;
        for col in 0..n {
            let Some(p) = (rank..rows.len()).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(rank, p);
            let pivot_row = rows[rank].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_with(&pivot_row);
                }
            }
            pivots.push(col);
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::with_capacity(n - rank);
        for free in (0..n).filter(|c| !pivot_set.contains(c)) {
            let mut v = BitVec::zeros(n);
            v.set(free, true);
            // each pivot variable = sum of the free columns in its row
            for (i, &pc) in pivots.iter().enumerate() {
                if rows[i].get(free) {
                    v.set(pc, true);
                }
            }
            basis.push(v);
        }
        basis
    }
}

/// In-place transpose of a 64x64 bit tile (`a[i]` bit `j` swaps with
/// `a[j]` bit `i`): the classic masked-swap network — six rounds, each
/// exchanging 2^k x 2^k sub-blocks with two shifts and three XORs per
/// word pair.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k | j] << j)) & !m;
            a[k] ^= t;
            a[k | j] ^= t >> j;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows.len(), self.cols)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn example_matrix() -> BitMatrix {
        // [1 1 0]
        // [0 1 1]
        // [1 0 1]  (singular: rows sum to zero)
        BitMatrix::from_rows(vec![
            BitVec::from_bits([true, true, false]),
            BitVec::from_bits([false, true, true]),
            BitVec::from_bits([true, false, true]),
        ])
    }

    #[test]
    fn identity_properties() {
        let i = BitMatrix::identity(5);
        assert_eq!(i.rank(), 5);
        assert_eq!(i.mul(&i), i);
        assert_eq!(i.transpose(), i);
        assert_eq!(i.inverse().unwrap(), i);
    }

    #[test]
    fn mul_vec_and_vec_mul_agree_with_transpose() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = BitMatrix::random(7, 9, &mut rng);
        let v = BitVec::random(9, &mut rng);
        let w = BitVec::random(7, &mut rng);
        assert_eq!(m.mul_vec(&v), m.transpose().vec_mul(&v));
        assert_eq!(m.vec_mul(&w), m.transpose().mul_vec(&w));
    }

    #[test]
    fn mul_associative() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a = BitMatrix::random(4, 5, &mut rng);
        let b = BitMatrix::random(5, 6, &mut rng);
        let c = BitMatrix::random(6, 3, &mut rng);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = BitMatrix::random(6, 6, &mut rng);
        let mut acc = BitMatrix::identity(6);
        for e in 0..10u64 {
            assert_eq!(m.pow(e), acc, "pow({e})");
            acc = acc.mul(&m);
        }
    }

    #[test]
    fn pow_zero_is_identity() {
        let m = example_matrix();
        assert_eq!(m.pow(0), BitMatrix::identity(3));
    }

    #[test]
    fn rank_of_singular_matrix() {
        assert_eq!(example_matrix().rank(), 2);
        assert!(example_matrix().inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(17);
        // Random matrices over GF(2) are invertible with probability ~0.29;
        // retry until we find one.
        let (m, inv) = loop {
            let m = BitMatrix::random(8, 8, &mut rng);
            if let Some(inv) = m.inverse() {
                break (m, inv);
            }
        };
        assert_eq!(m.mul(&inv), BitMatrix::identity(8));
        assert_eq!(inv.mul(&m), BitMatrix::identity(8));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = SmallRng::seed_from_u64(23);
        let m = BitMatrix::random(5, 9, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_matches_elementwise_oracle_across_tile_shapes() {
        let mut rng = SmallRng::seed_from_u64(31);
        // shapes straddling 64-bit tile boundaries, both ragged and exact
        for (rows, cols) in [
            (1, 1),
            (7, 130),
            (63, 64),
            (64, 63),
            (65, 65),
            (128, 40),
            (200, 3),
        ] {
            let m = BitMatrix::random(rows, cols, &mut rng);
            let t = m.transpose();
            assert_eq!(t.row_count(), cols);
            assert_eq!(t.col_count(), rows);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(t.get(c, r), m.get(r, c), "({rows}x{cols}) at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn rank_bounded_by_dims() {
        let mut rng = SmallRng::seed_from_u64(29);
        for _ in 0..10 {
            let m = BitMatrix::random(6, 10, &mut rng);
            assert!(m.rank() <= 6);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_dimension_mismatch_panics() {
        let a = BitMatrix::zeros(2, 3);
        let b = BitMatrix::zeros(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    fn count_ones_counts_all() {
        assert_eq!(example_matrix().count_ones(), 6);
    }

    #[test]
    fn kernel_has_complementary_dimension_and_annihilates() {
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..10 {
            let m = BitMatrix::random(6, 10, &mut rng);
            let kernel = m.kernel();
            assert_eq!(kernel.len(), 10 - m.rank());
            for v in &kernel {
                assert!(m.mul_vec(v).is_zero(), "kernel vector not annihilated");
            }
            // basis vectors are independent
            if !kernel.is_empty() {
                assert_eq!(BitMatrix::from_rows(kernel).rank(), 10 - m.rank());
            }
        }
    }

    #[test]
    fn kernel_of_identity_is_empty() {
        assert!(BitMatrix::identity(5).kernel().is_empty());
    }

    #[test]
    fn kernel_of_zero_matrix_is_full() {
        let z = BitMatrix::zeros(3, 4);
        assert_eq!(z.kernel().len(), 4);
    }
}
