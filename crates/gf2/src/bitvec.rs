//! Dense, word-packed bit vectors: the GF(2) row-vector type.

use std::fmt;
use std::ops::{BitAndAssign, BitXorAssign};

use rand::Rng;

const WORD_BITS: usize = 64;

/// A dense vector of bits, packed into `u64` words.
///
/// `BitVec` is the workhorse of the workspace: LFSR states, linear
/// expressions over seed variables, rows of transition matrices and test
/// cube bit-planes are all `BitVec`s. Arithmetic is GF(2): addition is
/// XOR ([`BitXorAssign`]), pointwise multiplication is AND
/// ([`BitAndAssign`]).
///
/// Bits beyond `len` are kept zero at all times; every mutating method
/// preserves that invariant, so word-level operations (popcount,
/// equality, dot products) never see stray bits.
///
/// # Example
///
/// ```
/// use ss_gf2::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(7, true);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates a vector with exactly one bit set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn unit(len: usize, index: usize) -> Self {
        let mut v = BitVec::zeros(len);
        v.set(index, true);
        v
    }

    /// Builds a vector from an iterator of bools (index 0 first).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if *b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector of `len` bits from the low bits of `value`
    /// (bit 0 of `value` becomes index 0).
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    pub fn from_u128(len: usize, value: u128) -> Self {
        assert!(len <= 128, "from_u128 supports at most 128 bits");
        let mut v = BitVec::zeros(len);
        for i in 0..len {
            if (value >> i) & 1 == 1 {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector of `len` bits from packed words (low word
    /// first); bits beyond `len` in the last word are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `len` requires.
    pub fn from_words(len: usize, words: &[u64]) -> Self {
        let needed = len.div_ceil(WORD_BITS);
        assert!(words.len() >= needed, "need {needed} words for {len} bits");
        let mut v = BitVec {
            words: words[..needed].to_vec(),
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a vector of `len` uniformly random bits.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut v = BitVec::zeros(len);
        for w in &mut v.words {
            *w = rng.gen();
        }
        v.mask_tail();
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has no bits at all (zero length).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[index / WORD_BITS] |= mask;
        } else {
            self.words[index / WORD_BITS] &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn toggle(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / WORD_BITS] ^= 1u64 << (index % WORD_BITS);
    }

    /// Sets every bit to zero, keeping the length.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `true` when every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the lowest set bit, or `None` if the vector is zero.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the highest set bit, or `None` if the vector is zero.
    pub fn last_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over all bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// GF(2) dot product: parity of the AND of the two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot product length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// XORs `other` into `self` (GF(2) vector addition).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// ANDs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "and length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Returns `true` if every set bit of `self` is also set in `mask`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_subset_of(&self, mask: &BitVec) -> bool {
        assert_eq!(self.len, mask.len, "subset length mismatch");
        self.words.iter().zip(&mask.words).all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the two vectors agree on every position where
    /// `mask` is set. This is the cube-matching primitive: a test cube
    /// with care-mask `mask` and values `self` is embedded in a fully
    /// specified vector `other` iff `self.eq_under_mask(other, mask)`.
    ///
    /// # Panics
    ///
    /// Panics if any length differs.
    pub fn eq_under_mask(&self, other: &BitVec, mask: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "eq_under_mask length mismatch");
        assert_eq!(self.len, mask.len, "eq_under_mask mask length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .zip(&mask.words)
            .all(|((a, b), m)| (a ^ b) & m == 0)
    }

    /// Grows or shrinks the vector to `new_len`, zero-filling new bits.
    pub fn resize(&mut self, new_len: usize) {
        self.words.resize(new_len.div_ceil(WORD_BITS), 0);
        self.len = new_len;
        self.mask_tail();
    }

    /// Shifts all bits one position toward index 0; bit 0 is dropped and
    /// the top bit becomes zero. (Used by Fibonacci LFSR stepping.)
    pub fn shift_down(&mut self) {
        let n = self.words.len();
        for i in 0..n {
            let carry = if i + 1 < n { self.words[i + 1] & 1 } else { 0 };
            self.words[i] = (self.words[i] >> 1) | (carry << (WORD_BITS - 1));
        }
        self.mask_tail();
    }

    /// Shifts all bits one position away from index 0; the top bit is
    /// dropped and bit 0 becomes zero.
    pub fn shift_up(&mut self) {
        let n = self.words.len();
        for i in (0..n).rev() {
            let carry = if i > 0 {
                self.words[i - 1] >> (WORD_BITS - 1)
            } else {
                0
            };
            self.words[i] = (self.words[i] << 1) | carry;
        }
        self.mask_tail();
    }

    /// View of the underlying words (low word first).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// The word at `word_index` (bits `64*word_index ..` of the
    /// vector). The tail word reads with its out-of-range bits zero.
    ///
    /// # Panics
    ///
    /// Panics if `word_index >= as_words().len()`.
    pub fn word(&self, word_index: usize) -> u64 {
        assert!(
            word_index < self.words.len(),
            "word index {word_index} out of range {}",
            self.words.len()
        );
        self.words[word_index]
    }

    /// Overwrites the word at `word_index` with `value`, masking off
    /// any bits beyond `len` — the zero-tail invariant is preserved, so
    /// this is the safe word-granular mutation primitive for packed
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if `word_index >= as_words().len()`.
    pub fn set_word(&mut self, word_index: usize, value: u64) {
        assert!(
            word_index < self.words.len(),
            "word index {word_index} out of range {}",
            self.words.len()
        );
        self.words[word_index] = value;
        if word_index == self.words.len() - 1 {
            self.mask_tail();
        }
    }

    /// Interprets the low 64 bits as a `u64` (bit 0 = index 0).
    pub fn low_u64(&self) -> u64 {
        self.words.first().copied().unwrap_or(0)
    }

    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_with(rhs);
    }
}

impl BitAndAssign<&BitVec> for BitVec {
    fn bitand_assign(&mut self, rhs: &BitVec) {
        self.and_with(rhs);
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bits(iter)
    }
}

/// Iterator over the set-bit indices of a [`BitVec`], produced by
/// [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_index: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_all_zero() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn ones_has_len_ones_and_clean_tail() {
        let v = BitVec::ones(70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v.as_words().len(), 2);
        assert_eq!(v.as_words()[1] >> 6, 0, "tail bits must be masked");
    }

    #[test]
    fn set_get_toggle_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1));
        v.toggle(99);
        assert!(!v.get(99));
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(8);
        let _ = v.get(8);
    }

    #[test]
    fn unit_vector() {
        let v = BitVec::unit(65, 64);
        assert_eq!(v.count_ones(), 1);
        assert!(v.get(64));
        assert_eq!(v.first_one(), Some(64));
        assert_eq!(v.last_one(), Some(64));
    }

    #[test]
    fn from_bits_and_iter_roundtrip() {
        let bits = vec![true, false, true, true, false, false, true];
        let v = BitVec::from_bits(bits.clone());
        assert_eq!(v.iter().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn from_words_roundtrip_and_masking() {
        let v = BitVec::from_words(70, &[u64::MAX, u64::MAX]);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v, BitVec::ones(70));
        let w = BitVec::from_words(10, &[0b1010_0110, 99]);
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), vec![1, 2, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "words")]
    fn from_words_too_short_panics() {
        let _ = BitVec::from_words(65, &[0]);
    }

    #[test]
    fn from_u128_matches_bit_pattern() {
        let v = BitVec::from_u128(8, 0b1010_0110);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![1, 2, 5, 7]);
    }

    #[test]
    fn first_last_one() {
        let mut v = BitVec::zeros(200);
        assert_eq!(v.first_one(), None);
        assert_eq!(v.last_one(), None);
        v.set(77, true);
        v.set(150, true);
        assert_eq!(v.first_one(), Some(77));
        assert_eq!(v.last_one(), Some(150));
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut v = BitVec::zeros(192);
        let idx = [0, 1, 63, 64, 127, 128, 191];
        for &i in &idx {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn dot_product_parity() {
        let a = BitVec::from_bits([true, true, false, true]);
        let b = BitVec::from_bits([true, false, true, true]);
        // overlap at 0 and 3 -> even parity
        assert!(!a.dot(&b));
        let c = BitVec::from_bits([true, false, false, false]);
        assert!(a.dot(&c));
    }

    #[test]
    fn xor_and_identities() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = BitVec::random(300, &mut rng);
        let mut x = a.clone();
        x.xor_with(&a);
        assert!(x.is_zero(), "a ^ a == 0");
        let mut y = a.clone();
        y.and_with(&a);
        assert_eq!(y, a, "a & a == a");
    }

    #[test]
    fn subset_and_mask_equality() {
        let mask = BitVec::from_bits([true, true, false, false]);
        let sub = BitVec::from_bits([true, false, false, false]);
        let not_sub = BitVec::from_bits([true, false, true, false]);
        assert!(sub.is_subset_of(&mask));
        assert!(!not_sub.is_subset_of(&mask));

        let values = BitVec::from_bits([true, false, true, true]);
        let vector = BitVec::from_bits([true, false, false, false]);
        // agree on positions 0,1 (the mask) though they differ at 2,3
        assert!(values.eq_under_mask(&vector, &mask));
        let vector2 = BitVec::from_bits([false, false, true, true]);
        assert!(!values.eq_under_mask(&vector2, &mask));
    }

    #[test]
    fn shift_down_and_up() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        v.shift_down();
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![63, 128]);
        v.shift_up();
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![64, 129]);
        // shifting up at the top drops the bit
        let mut w = BitVec::unit(10, 9);
        w.shift_up();
        assert!(w.is_zero());
    }

    #[test]
    fn resize_preserves_prefix_and_masks_tail() {
        let mut v = BitVec::ones(100);
        v.resize(40);
        assert_eq!(v.count_ones(), 40);
        v.resize(100);
        assert_eq!(v.count_ones(), 40, "regrown bits must be zero");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = SmallRng::seed_from_u64(42);
        let mut r2 = SmallRng::seed_from_u64(42);
        assert_eq!(BitVec::random(257, &mut r1), BitVec::random(257, &mut r2));
    }

    #[test]
    fn display_binary() {
        let v = BitVec::from_bits([true, false, true]);
        assert_eq!(format!("{v}"), "101");
        assert_eq!(format!("{v:b}"), "101");
        assert!(format!("{v:?}").contains("101"));
    }
}
