//! Word-slice primitives for GF(2) rows stored as borrowed `&[u64]`.
//!
//! The hot encoder/solver paths operate on rows borrowed straight from
//! flat word arrays (expression tables, solver bases, residue caches)
//! without materialising a [`BitVec`](crate::BitVec) per row. These
//! free functions are the shared vocabulary of that discipline; bit `i`
//! of a row is bit `i % 64` of word `i / 64`, matching
//! [`BitVec::as_words`](crate::BitVec::as_words).

/// The bit at `index` of a word-slice row.
///
/// # Panics
///
/// Panics if `index / 64` is outside the slice.
#[inline]
pub fn get_bit(row: &[u64], index: usize) -> bool {
    (row[index / 64] >> (index % 64)) & 1 == 1
}

/// XORs `src` into `dst` (GF(2) row addition over the common prefix —
/// the slices are expected to have equal length).
#[inline]
pub fn xor_in(dst: &mut [u64], src: &[u64]) {
    for (a, b) in dst.iter_mut().zip(src) {
        *a ^= b;
    }
}

/// Index of the lowest set bit, or `None` if the row is zero.
#[inline]
pub fn first_one(row: &[u64]) -> Option<usize> {
    for (wi, &w) in row.iter().enumerate() {
        if w != 0 {
            return Some(wi * 64 + w.trailing_zeros() as usize);
        }
    }
    None
}

/// GF(2) dot product of two rows: parity of the AND over the common
/// prefix.
#[inline]
pub fn dot(a: &[u64], b: &[u64]) -> bool {
    let mut acc = 0u64;
    for (x, y) in a.iter().zip(b) {
        acc ^= x & y;
    }
    acc.count_ones() % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_bitvec_operations() {
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..20 {
            let a = BitVec::random(130, &mut rng);
            let b = BitVec::random(130, &mut rng);
            assert_eq!(first_one(a.as_words()), a.first_one());
            assert_eq!(dot(a.as_words(), b.as_words()), a.dot(&b));
            for i in [0, 63, 64, 129] {
                assert_eq!(get_bit(a.as_words(), i), a.get(i));
            }
            let mut x = a.as_words().to_vec();
            xor_in(&mut x, b.as_words());
            let mut y = a.clone();
            y.xor_with(&b);
            assert_eq!(x, y.as_words());
        }
    }

    #[test]
    fn zero_row_has_no_first_one() {
        assert_eq!(first_one(&[0, 0]), None);
        assert_eq!(first_one(&[]), None);
        assert_eq!(first_one(&[0, 1 << 7]), Some(71));
    }
}
