//! Incremental GF(2) linear-system solver with checkpoint/rollback.
//!
//! Seed computation for LFSR reseeding (Koenemann's scheme, used
//! throughout the DATE 2008 paper) forms one linear equation per
//! specified test-cube bit: *expression over the seed variables =
//! cube bit*. The window-based encoding algorithm of the paper tries a
//! cube at many window positions before committing to one, so the solver
//! must support cheap speculative insertion. [`IncrementalSolver`] keeps
//! a forward-reduced row-echelon basis to which rows are only ever
//! appended; a checkpoint is just the basis length and rollback is a
//! truncation.
//!
//! Two layers of API exist:
//!
//! * the [`BitVec`] layer ([`insert`](IncrementalSolver::insert),
//!   [`probe`](IncrementalSolver::probe)) — convenient, one clone per
//!   call;
//! * the borrowed word-slice layer
//!   ([`insert_words`](IncrementalSolver::insert_words),
//!   [`probe_words`](IncrementalSolver::probe_words),
//!   [`freeze`](IncrementalSolver::freeze)) — allocation-free, fed
//!   directly from precomputed expression tables. [`FrozenBasis`] is a
//!   read-only snapshot of the basis that can be shared across threads
//!   for parallel candidate probing, and supports *resumable* forward
//!   reduction ([`FrozenBasis::reduce_row_from`]): because rows are
//!   only appended, a row reduced against the first `m` basis rows can
//!   later be re-reduced against rows `m..` only, yielding bit-exactly
//!   the row a from-scratch reduction would produce.

use rand::Rng;

use crate::words;
use crate::BitVec;

/// Result of inserting one equation into an [`IncrementalSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The equation was independent and has been added to the basis
    /// (one more seed variable becomes determined — the paper's
    /// "variable replacement").
    Added,
    /// The equation was already implied by the basis; nothing changed.
    Redundant,
    /// The equation contradicts the basis; the system is unsolvable.
    /// The solver state is unchanged.
    Conflict,
}

/// Opaque snapshot of an [`IncrementalSolver`], created by
/// [`IncrementalSolver::checkpoint`] and consumed by
/// [`IncrementalSolver::rollback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCheckpoint {
    basis_len: usize,
}

/// An incremental solver for systems of linear equations over GF(2).
///
/// Equations are inserted one at a time; the solver maintains a
/// forward-reduced basis (each row has a unique pivot column, rows are
/// *not* back-substituted against each other until [`solve_with`] is
/// called). Because insertion never mutates existing rows, rolling back
/// to a [`checkpoint`] is O(1) amortised.
///
/// Rows are stored in one flat word array (`stride` words per row), so
/// reduction is straight-line word arithmetic with no per-row pointer
/// chasing and no per-insert allocation in steady state.
///
/// [`solve_with`]: IncrementalSolver::solve_with
/// [`checkpoint`]: IncrementalSolver::checkpoint
///
/// # Example
///
/// ```
/// use ss_gf2::{BitVec, IncrementalSolver, SolveOutcome};
///
/// let mut s = IncrementalSolver::new(2);
/// let a0 = BitVec::unit(2, 0);
/// assert_eq!(s.insert(&a0, true), SolveOutcome::Added);
/// // speculative attempt that conflicts
/// let cp = s.checkpoint();
/// assert_eq!(s.insert(&a0, false), SolveOutcome::Conflict);
/// s.rollback(cp);
/// assert_eq!(s.rank(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    vars: usize,
    stride: usize,
    /// Basis row coefficients, flattened: row `i` occupies words
    /// `i*stride .. (i+1)*stride`.
    row_words: Vec<u64>,
    /// Pivot column of each basis row.
    pivots: Vec<usize>,
    /// Right-hand side of each basis row.
    rhs: Vec<bool>,
    /// Reusable reduction buffer for `insert_words`.
    scratch: Vec<u64>,
}

impl IncrementalSolver {
    /// Creates a solver over `vars` GF(2) variables.
    pub fn new(vars: usize) -> Self {
        IncrementalSolver {
            vars,
            stride: vars.div_ceil(64),
            row_words: Vec::new(),
            pivots: Vec::new(),
            rhs: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Words per equation row (`vars` rounded up to whole `u64`s) —
    /// the slice length [`insert_words`](Self::insert_words) expects.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of independent equations inserted so far (the dimension of
    /// the constrained subspace).
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// Number of still-free variables.
    pub fn free_vars(&self) -> usize {
        self.vars - self.pivots.len()
    }

    /// Inserts the equation `coeffs · a = rhs`.
    ///
    /// Returns [`SolveOutcome::Conflict`] without modifying the solver if
    /// the equation is inconsistent with the ones already inserted.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the solver's variable count.
    pub fn insert(&mut self, coeffs: &BitVec, rhs: bool) -> SolveOutcome {
        assert_eq!(coeffs.len(), self.vars, "equation width mismatch");
        self.insert_words(coeffs.as_words(), rhs)
    }

    /// Inserts the equation `coeffs · a = rhs` from a borrowed word
    /// slice (bit `i` of the equation is bit `i % 64` of word
    /// `i / 64`). Bits beyond the variable count must be zero — which
    /// is guaranteed when the slice comes from a [`BitVec`] or an
    /// expression table.
    ///
    /// This is the allocation-free insertion path: the expression rows
    /// of `ss_core::ExprTable` are consumed directly, with no
    /// intermediate `BitVec`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from [`stride`](Self::stride).
    pub fn insert_words(&mut self, coeffs: &[u64], rhs: bool) -> SolveOutcome {
        assert_eq!(coeffs.len(), self.stride, "equation width mismatch");
        let mut row = std::mem::take(&mut self.scratch);
        row.clear();
        row.extend_from_slice(coeffs);
        let mut r = rhs;
        // Forward-reduce against the existing basis. Basis rows are in
        // insertion order; each has a distinct pivot.
        for (i, &pivot) in self.pivots.iter().enumerate() {
            if words::get_bit(&row, pivot) {
                words::xor_in(
                    &mut row,
                    &self.row_words[i * self.stride..(i + 1) * self.stride],
                );
                r ^= self.rhs[i];
            }
        }
        let outcome = match words::first_one(&row) {
            None => {
                if r {
                    SolveOutcome::Conflict
                } else {
                    SolveOutcome::Redundant
                }
            }
            Some(pivot) => {
                self.row_words.extend_from_slice(&row);
                self.pivots.push(pivot);
                self.rhs.push(r);
                SolveOutcome::Added
            }
        };
        self.scratch = row;
        outcome
    }

    /// Tests whether the equation would be insertable without a
    /// conflict, and what the outcome would be, without modifying the
    /// solver.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the solver's variable count.
    pub fn probe(&self, coeffs: &BitVec, rhs: bool) -> SolveOutcome {
        assert_eq!(coeffs.len(), self.vars, "equation width mismatch");
        self.probe_words(coeffs.as_words(), rhs)
    }

    /// [`probe`](Self::probe) over a borrowed word slice; same contract
    /// as [`insert_words`](Self::insert_words) but read-only.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from [`stride`](Self::stride).
    pub fn probe_words(&self, coeffs: &[u64], rhs: bool) -> SolveOutcome {
        assert_eq!(coeffs.len(), self.stride, "equation width mismatch");
        let mut row = coeffs.to_vec();
        let mut r = rhs;
        self.freeze().reduce_row_from(&mut row, &mut r, 0);
        match words::first_one(&row) {
            None if r => SolveOutcome::Conflict,
            None => SolveOutcome::Redundant,
            Some(_) => SolveOutcome::Added,
        }
    }

    /// A read-only, shareable view of the current basis, for parallel
    /// probing and resumable reduction. The view borrows the solver, so
    /// the basis cannot change while views are alive — exactly the
    /// append-only window the resumable-reduction invariant needs.
    pub fn freeze(&self) -> FrozenBasis<'_> {
        FrozenBasis {
            vars: self.vars,
            stride: self.stride,
            row_words: &self.row_words,
            pivots: &self.pivots,
            rhs: &self.rhs,
        }
    }

    /// Takes a snapshot that [`rollback`](Self::rollback) can restore.
    pub fn checkpoint(&self) -> SolverCheckpoint {
        SolverCheckpoint {
            basis_len: self.pivots.len(),
        }
    }

    /// Restores the solver to a previous [`checkpoint`](Self::checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is newer than the current state (i.e.
    /// was taken from a different or longer-lived solver).
    pub fn rollback(&mut self, cp: SolverCheckpoint) {
        assert!(
            cp.basis_len <= self.pivots.len(),
            "rollback to a checkpoint from the future"
        );
        self.row_words.truncate(cp.basis_len * self.stride);
        self.pivots.truncate(cp.basis_len);
        self.rhs.truncate(cp.basis_len);
    }

    /// Solves the system, assigning every free variable with `fill`
    /// (called with the variable index) and back-substituting the pivot
    /// variables. Returns the full assignment.
    ///
    /// The DATE 2008 flow calls this with a pseudorandom fill: the free
    /// variables become the "pseudorandom data" that pad the seed.
    pub fn solve_with<F: FnMut(usize) -> bool>(&self, mut fill: F) -> BitVec {
        let mut solution = BitVec::zeros(self.vars);
        let mut pinned = BitVec::zeros(self.vars);
        for &p in &self.pivots {
            pinned.set(p, true);
        }
        for i in 0..self.vars {
            if !pinned.get(i) {
                solution.set(i, fill(i));
            }
        }
        // The basis is only forward-reduced (early rows may still carry
        // later pivots), so complete the elimination Gauss-Jordan style
        // on a copy before reading the pivot values off.
        let mut rows: Vec<(BitVec, bool)> = (0..self.pivots.len())
            .map(|i| {
                (
                    BitVec::from_words(
                        self.vars,
                        &self.row_words[i * self.stride..(i + 1) * self.stride],
                    ),
                    self.rhs[i],
                )
            })
            .collect();
        let pivots = &self.pivots;
        // Eliminate every pivot from every other row (Jordan step).
        for i in 0..rows.len() {
            let (row_i, rhs_i) = rows[i].clone();
            for (j, (row_j, rhs_j)) in rows.iter_mut().enumerate() {
                if j != i && row_j.get(pivots[i]) {
                    row_j.xor_with(&row_i);
                    *rhs_j ^= rhs_i;
                }
            }
        }
        for (i, (row, rhs)) in rows.iter().enumerate() {
            // row now touches only its own pivot and free variables
            let mut value = *rhs;
            for v in row.iter_ones() {
                if v != pivots[i] {
                    value ^= solution.get(v);
                }
            }
            solution.set(pivots[i], value);
        }
        solution
    }

    /// Solves with a pseudorandom fill from `rng`.
    pub fn solve_random<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        self.solve_with(|_| rng.gen())
    }

    /// Verifies that `assignment` satisfies every inserted equation.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the variable count.
    pub fn check(&self, assignment: &BitVec) -> bool {
        assert_eq!(assignment.len(), self.vars, "assignment width mismatch");
        (0..self.pivots.len()).all(|i| {
            let row = &self.row_words[i * self.stride..(i + 1) * self.stride];
            let mut acc = 0u64;
            for (a, b) in row.iter().zip(assignment.as_words()) {
                acc ^= a & b;
            }
            (acc.count_ones() % 2 == 1) == self.rhs[i]
        })
    }

    /// The solver's current solution set as an explicit **affine
    /// space** `x0 + span(N)`: one particular solution (every free
    /// variable zero) plus a null-space basis with one vector per free
    /// variable.
    ///
    /// This is the probing-side dual of the row basis: whether a new
    /// equation system is consistent with the basis — and how much rank
    /// it would add — depends only on the system's **projection into
    /// the free subspace** ([`AffineSpace::project`]), which has
    /// dimension `free_vars()` instead of `vars()`. Hot search loops
    /// (the encoder's candidate probing) exploit exactly that: probing
    /// against the space costs `O(free_vars)` word-dots per equation
    /// where probing against the row basis costs `O(rank)` row
    /// reductions.
    ///
    /// The returned space is an owned snapshot: freely shareable
    /// across threads, valid until more equations are inserted.
    pub fn affine_space(&self) -> AffineSpace {
        let m = self.pivots.len();
        let stride = self.stride;
        // Jordan-complete a copy of the forward-reduced basis so every
        // row touches only its own pivot and free columns.
        let mut rows = self.row_words.clone();
        let mut rhs = self.rhs.clone();
        let mut tmp = vec![0u64; stride];
        for i in 0..m {
            tmp.copy_from_slice(&rows[i * stride..(i + 1) * stride]);
            let rhs_i = rhs[i];
            let pivot = self.pivots[i];
            for j in 0..m {
                if j != i && words::get_bit(&rows[j * stride..(j + 1) * stride], pivot) {
                    words::xor_in(&mut rows[j * stride..(j + 1) * stride], &tmp);
                    rhs[j] ^= rhs_i;
                }
            }
        }
        let mut is_pivot = vec![false; self.vars];
        for &p in &self.pivots {
            is_pivot[p] = true;
        }
        let free_cols: Vec<usize> = (0..self.vars).filter(|&c| !is_pivot[c]).collect();
        // particular solution with zero free variables: x[p_i] = rhs_i
        let mut x0 = vec![0u64; stride];
        for (i, &p) in self.pivots.iter().enumerate() {
            if rhs[i] {
                x0[p / 64] ^= 1u64 << (p % 64);
            }
        }
        // null vector per free column c: x[c] = 1, x[p_i] = row_i[c]
        let mut null_rows = vec![0u64; free_cols.len() * stride];
        for (j, &c) in free_cols.iter().enumerate() {
            let row = &mut null_rows[j * stride..(j + 1) * stride];
            row[c / 64] |= 1u64 << (c % 64);
            for (i, &p) in self.pivots.iter().enumerate() {
                if words::get_bit(&rows[i * stride..(i + 1) * stride], c) {
                    row[p / 64] ^= 1u64 << (p % 64);
                }
            }
        }
        AffineSpace {
            vars: self.vars,
            stride,
            x0,
            null_rows,
            free_cols,
        }
    }
}

/// The solution set of an [`IncrementalSolver`] basis as an explicit
/// affine space `x0 + span(N)`, produced by
/// [`IncrementalSolver::affine_space`].
///
/// The null-space basis is in **free-column form**: vector `j` has a 1
/// at the `j`-th free (non-pivot) column and 0 at every other free
/// column. Consequently the coordinates of any vector of the span are
/// just its restriction to the free columns
/// ([`coords_of`](AffineSpace::coords_of)) — which is what makes
/// change-of-coordinates between successive spaces (as the basis
/// grows) a cheap extraction instead of a solve.
#[derive(Debug, Clone)]
pub struct AffineSpace {
    vars: usize,
    stride: usize,
    /// Particular solution (free variables zero), `stride` words.
    x0: Vec<u64>,
    /// Null-space basis, one row per free column, `stride` words each.
    null_rows: Vec<u64>,
    /// The free (non-pivot) columns, ascending; `len` = space dim.
    free_cols: Vec<usize>,
}

impl AffineSpace {
    /// Dimension of the space (the solver's free-variable count).
    pub fn dim(&self) -> usize {
        self.free_cols.len()
    }

    /// Number of ambient variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Words per ambient row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Words per coordinate row (`dim` rounded up to whole `u64`s) —
    /// the slice length [`project`](Self::project) writes.
    pub fn coord_stride(&self) -> usize {
        self.free_cols.len().div_ceil(64)
    }

    /// The particular solution's words.
    pub fn x0_words(&self) -> &[u64] {
        &self.x0
    }

    /// Null-space basis vector `j` (ambient, `stride` words).
    ///
    /// # Panics
    ///
    /// Panics if `j >= dim()`.
    pub fn null_row(&self, j: usize) -> &[u64] {
        &self.null_rows[j * self.stride..(j + 1) * self.stride]
    }

    /// The free columns, ascending.
    pub fn free_cols(&self) -> &[usize] {
        &self.free_cols
    }

    /// Projects the ambient equation `coeffs · x = rhs` into the
    /// space's coordinates: writes the `dim()`-bit row `M` (bit `j` =
    /// `coeffs · N_j`) into `out` and returns the reduced right-hand
    /// side `rhs ^ (coeffs · x0)`.
    ///
    /// The equation is consistent with / adds rank to the underlying
    /// basis exactly as `M · y = returned rhs` does in the
    /// `dim()`-dimensional coordinate space — the invariant the
    /// encoder's projected probing is built on.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != stride()` or
    /// `out.len() != coord_stride()`.
    pub fn project(&self, coeffs: &[u64], rhs: bool, out: &mut [u64]) -> bool {
        assert_eq!(coeffs.len(), self.stride, "equation width mismatch");
        assert_eq!(out.len(), self.coord_stride(), "coordinate width mismatch");
        out.fill(0);
        for j in 0..self.free_cols.len() {
            if words::dot(coeffs, self.null_row(j)) {
                out[j / 64] |= 1u64 << (j % 64);
            }
        }
        rhs ^ words::dot(coeffs, &self.x0)
    }

    /// Coordinates of an ambient vector **known to lie in the span**
    /// (e.g. a null vector of a later, larger basis, or the difference
    /// of two particular solutions): its restriction to the free
    /// columns. Writes `coord_stride()` words into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != stride()` or `out.len() != coord_stride()`.
    pub fn coords_of(&self, v: &[u64], out: &mut [u64]) {
        assert_eq!(v.len(), self.stride, "vector width mismatch");
        assert_eq!(out.len(), self.coord_stride(), "coordinate width mismatch");
        out.fill(0);
        for (j, &c) in self.free_cols.iter().enumerate() {
            if words::get_bit(v, c) {
                out[j / 64] |= 1u64 << (j % 64);
            }
        }
    }
}

/// A read-only snapshot of an [`IncrementalSolver`] basis, created by
/// [`IncrementalSolver::freeze`].
///
/// The view is `Copy` and freely shareable across threads (everything
/// is a shared borrow), which is what makes *parallel* candidate
/// probing sound: workers reduce their own scratch rows against one
/// frozen basis without ever touching solver state.
///
/// Because basis rows are only ever appended and each row is zero at
/// every earlier row's pivot, forward reduction is *resumable*: a row
/// reduced against rows `..m` and later re-reduced against rows `m..`
/// equals the row reduced against all rows from scratch, bit for bit
/// (the residual of a row modulo a forward-reduced basis is unique).
/// [`reduce_row_from`](FrozenBasis::reduce_row_from) exposes exactly
/// that delta step; incremental residue caches are built on it.
#[derive(Debug, Clone, Copy)]
pub struct FrozenBasis<'a> {
    vars: usize,
    stride: usize,
    row_words: &'a [u64],
    pivots: &'a [usize],
    rhs: &'a [bool],
}

impl FrozenBasis<'_> {
    /// Number of basis rows (the solver's rank at freeze time).
    pub fn len(&self) -> usize {
        self.pivots.len()
    }

    /// `true` when the basis has no rows.
    pub fn is_empty(&self) -> bool {
        self.pivots.is_empty()
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Words per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Pivot column of basis row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn pivot(&self, i: usize) -> usize {
        self.pivots[i]
    }

    /// Forward-reduces `row` (with right-hand side `rhs`) against basis
    /// rows `from..len()`, in insertion order.
    ///
    /// Calling with `from = 0` performs a full reduction. Calling with
    /// the row's previous high-water mark resumes it: appended rows are
    /// zero at all earlier pivots, so the delta reduction lands on the
    /// same unique residual a from-scratch reduction produces.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from [`stride`](Self::stride) or
    /// `from > len()`.
    pub fn reduce_row_from(&self, row: &mut [u64], rhs: &mut bool, from: usize) {
        assert_eq!(row.len(), self.stride, "row width mismatch");
        assert!(from <= self.pivots.len(), "reduction start out of range");
        for i in from..self.pivots.len() {
            if words::get_bit(row, self.pivots[i]) {
                words::xor_in(row, &self.row_words[i * self.stride..(i + 1) * self.stride]);
                *rhs ^= self.rhs[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn row(bits: &[usize], vars: usize) -> BitVec {
        let mut v = BitVec::zeros(vars);
        for &b in bits {
            v.set(b, true);
        }
        v
    }

    #[test]
    fn simple_system() {
        let mut s = IncrementalSolver::new(3);
        assert_eq!(s.insert(&row(&[0, 1], 3), true), SolveOutcome::Added);
        assert_eq!(s.insert(&row(&[1, 2], 3), false), SolveOutcome::Added);
        assert_eq!(s.insert(&row(&[0, 2], 3), true), SolveOutcome::Redundant);
        assert_eq!(s.insert(&row(&[0, 2], 3), false), SolveOutcome::Conflict);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.free_vars(), 1);
        let sol = s.solve_with(|_| true);
        assert!(s.check(&sol));
        assert!(sol.get(0) ^ sol.get(1));
        assert_eq!(sol.get(1), sol.get(2));
    }

    #[test]
    fn conflict_leaves_state_untouched() {
        let mut s = IncrementalSolver::new(2);
        s.insert(&row(&[0], 2), true);
        let rank_before = s.rank();
        assert_eq!(s.insert(&row(&[0], 2), false), SolveOutcome::Conflict);
        assert_eq!(s.rank(), rank_before);
        let sol = s.solve_with(|_| false);
        assert!(sol.get(0));
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut s = IncrementalSolver::new(3);
        s.insert(&row(&[0], 3), true);
        assert_eq!(s.probe(&row(&[1], 3), true), SolveOutcome::Added);
        assert_eq!(s.rank(), 1, "probe must not insert");
        assert_eq!(s.probe(&row(&[0], 3), true), SolveOutcome::Redundant);
        assert_eq!(s.probe(&row(&[0], 3), false), SolveOutcome::Conflict);
    }

    #[test]
    fn word_slice_api_matches_bitvec_api() {
        let mut rng = SmallRng::seed_from_u64(5);
        let vars = 70; // two words, ragged tail
        let mut a = IncrementalSolver::new(vars);
        let mut b = IncrementalSolver::new(vars);
        for _ in 0..40 {
            let coeffs = BitVec::random(vars, &mut rng);
            let rhs = rand::Rng::gen(&mut rng);
            assert_eq!(a.probe(&coeffs, rhs), b.probe_words(coeffs.as_words(), rhs));
            assert_eq!(
                a.insert(&coeffs, rhs),
                b.insert_words(coeffs.as_words(), rhs)
            );
        }
        assert_eq!(a.rank(), b.rank());
        assert_eq!(a.solve_with(|_| false), b.solve_with(|_| false));
    }

    #[test]
    fn checkpoint_rollback() {
        let mut s = IncrementalSolver::new(4);
        s.insert(&row(&[0], 4), true);
        let cp = s.checkpoint();
        s.insert(&row(&[1], 4), false);
        s.insert(&row(&[2], 4), true);
        assert_eq!(s.rank(), 3);
        s.rollback(cp);
        assert_eq!(s.rank(), 1);
        // after rollback the dropped constraints are really gone
        assert_eq!(s.insert(&row(&[1], 4), true), SolveOutcome::Added);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rollback_forward_panics() {
        let mut s = IncrementalSolver::new(2);
        s.insert(&row(&[0], 2), true);
        let cp = s.checkpoint();
        let mut s2 = IncrementalSolver::new(2);
        s2.rollback(cp);
    }

    #[test]
    fn full_rank_system_has_unique_solution() {
        let mut s = IncrementalSolver::new(4);
        for i in 0..4 {
            s.insert(&row(&[i], 4), i % 2 == 0);
        }
        assert_eq!(s.free_vars(), 0);
        let a = s.solve_with(|_| false);
        let b = s.solve_with(|_| true);
        assert_eq!(a, b, "no free variables => fill is irrelevant");
        assert!(a.get(0) && !a.get(1) && a.get(2) && !a.get(3));
    }

    #[test]
    fn random_systems_solutions_check_out() {
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..50 {
            let vars = 20;
            let mut s = IncrementalSolver::new(vars);
            // Build a consistent system from a hidden ground truth.
            let truth = BitVec::random(vars, &mut rng);
            for _ in 0..15 {
                let coeffs = BitVec::random(vars, &mut rng);
                let rhs = coeffs.dot(&truth);
                assert_ne!(
                    s.insert(&coeffs, rhs),
                    SolveOutcome::Conflict,
                    "consistent system must not conflict (trial {trial})"
                );
            }
            let sol = s.solve_random(&mut rng);
            assert!(s.check(&sol), "solve_with must satisfy all equations");
        }
    }

    #[test]
    fn interleaved_speculation_matches_direct_insertion() {
        // Simulates the encoder's pattern: try a batch, roll back, try
        // another batch, commit.
        let mut rng = SmallRng::seed_from_u64(123);
        let vars = 16;
        let truth = BitVec::random(vars, &mut rng);
        let eqs: Vec<(BitVec, bool)> = (0..12)
            .map(|_| {
                let c = BitVec::random(vars, &mut rng);
                let r = c.dot(&truth);
                (c, r)
            })
            .collect();

        let mut spec = IncrementalSolver::new(vars);
        for (c, r) in &eqs[..4] {
            spec.insert(c, *r);
        }
        let cp = spec.checkpoint();
        for (c, r) in &eqs[4..8] {
            spec.insert(c, *r);
        }
        spec.rollback(cp);
        for (c, r) in &eqs[8..] {
            spec.insert(c, *r);
        }

        let mut direct = IncrementalSolver::new(vars);
        for (c, r) in eqs[..4].iter().chain(&eqs[8..]) {
            direct.insert(c, *r);
        }
        assert_eq!(spec.rank(), direct.rank());
        let sol = spec.solve_with(|_| false);
        assert!(direct.check(&sol));
    }

    #[test]
    fn resumed_reduction_is_bit_identical_to_scratch_reduction() {
        // The residue-cache invariant: reduce a row against the first m
        // basis rows, append more rows, resume from m — the result must
        // equal a full reduction against the final basis.
        let mut rng = SmallRng::seed_from_u64(4242);
        for trial in 0..30 {
            let vars = 90;
            let mut s = IncrementalSolver::new(vars);
            for _ in 0..20 {
                let c = BitVec::random(vars, &mut rng);
                let r = rand::Rng::gen(&mut rng);
                s.insert(&c, r);
            }
            let mid = s.rank();
            let target = BitVec::random(vars, &mut rng);
            let mut resumed = target.as_words().to_vec();
            let mut resumed_rhs = rand::Rng::gen(&mut rng);
            let scratch_rhs_0 = resumed_rhs;
            s.freeze()
                .reduce_row_from(&mut resumed, &mut resumed_rhs, 0);

            for _ in 0..15 {
                let c = BitVec::random(vars, &mut rng);
                let r = rand::Rng::gen(&mut rng);
                s.insert(&c, r);
            }
            // resume from the watermark
            s.freeze()
                .reduce_row_from(&mut resumed, &mut resumed_rhs, mid);
            // from-scratch reference
            let mut scratch = target.as_words().to_vec();
            let mut scratch_rhs = scratch_rhs_0;
            s.freeze()
                .reduce_row_from(&mut scratch, &mut scratch_rhs, 0);
            assert_eq!(resumed, scratch, "trial {trial}");
            assert_eq!(resumed_rhs, scratch_rhs, "trial {trial}");
        }
    }

    #[test]
    fn affine_space_describes_the_solution_set_exactly() {
        let mut rng = SmallRng::seed_from_u64(777);
        for trial in 0..25 {
            let vars = 70; // ragged two-word rows
            let mut s = IncrementalSolver::new(vars);
            let truth = BitVec::random(vars, &mut rng);
            for _ in 0..40 {
                let c = BitVec::random(vars, &mut rng);
                let r = c.dot(&truth);
                s.insert(&c, r);
            }
            let space = s.affine_space();
            assert_eq!(space.dim(), s.free_vars(), "trial {trial}");
            assert_eq!(space.vars(), vars);
            // x0 solves the system
            let x0 = BitVec::from_words(vars, space.x0_words());
            assert!(s.check(&x0), "trial {trial}: x0 must satisfy the basis");
            // every null vector is annihilated by every basis equation,
            // and has the free-column unit structure
            for j in 0..space.dim() {
                let nj = BitVec::from_words(vars, space.null_row(j));
                let mut shifted = x0.clone();
                shifted.xor_with(&nj);
                assert!(s.check(&shifted), "trial {trial}: x0 + N_{j} must solve");
                for (k, &c) in space.free_cols().iter().enumerate() {
                    assert_eq!(nj.get(c), k == j, "free-column form");
                }
            }
        }
    }

    #[test]
    fn projection_predicts_probe_outcomes() {
        let mut rng = SmallRng::seed_from_u64(2024);
        for trial in 0..40 {
            let vars = 48;
            let mut s = IncrementalSolver::new(vars);
            let truth = BitVec::random(vars, &mut rng);
            for _ in 0..30 {
                let c = BitVec::random(vars, &mut rng);
                s.insert(&c, c.dot(&truth));
            }
            let space = s.affine_space();
            let mut out = vec![0u64; space.coord_stride()];
            for _ in 0..10 {
                let c = BitVec::random(vars, &mut rng);
                let r: bool = rand::Rng::gen(&mut rng);
                let e = space.project(c.as_words(), r, &mut out);
                let projected_zero = out.iter().all(|&w| w == 0);
                let expected = s.probe(&c, r);
                let via_projection = match (projected_zero, e) {
                    (true, true) => SolveOutcome::Conflict,
                    (true, false) => SolveOutcome::Redundant,
                    (false, _) => SolveOutcome::Added,
                };
                assert_eq!(via_projection, expected, "trial {trial}");
            }
        }
    }

    #[test]
    fn frozen_basis_reports_dimensions() {
        let mut s = IncrementalSolver::new(10);
        assert!(s.freeze().is_empty());
        s.insert(&row(&[3], 10), true);
        s.insert(&row(&[3, 7], 10), false);
        let view = s.freeze();
        assert_eq!(view.len(), 2);
        assert_eq!(view.vars(), 10);
        assert_eq!(view.stride(), 1);
        assert_eq!(view.pivot(0), 3);
        assert_eq!(view.pivot(1), 7);
    }

    #[test]
    fn zero_vars_edge_case() {
        let mut s = IncrementalSolver::new(0);
        assert_eq!(s.insert(&BitVec::zeros(0), false), SolveOutcome::Redundant);
        assert_eq!(s.insert(&BitVec::zeros(0), true), SolveOutcome::Conflict);
        assert!(s.solve_with(|_| false).is_empty());
    }
}
