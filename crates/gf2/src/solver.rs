//! Incremental GF(2) linear-system solver with checkpoint/rollback.
//!
//! Seed computation for LFSR reseeding (Koenemann's scheme, used
//! throughout the DATE 2008 paper) forms one linear equation per
//! specified test-cube bit: *expression over the seed variables =
//! cube bit*. The window-based encoding algorithm of the paper tries a
//! cube at many window positions before committing to one, so the solver
//! must support cheap speculative insertion. [`IncrementalSolver`] keeps
//! a forward-reduced row-echelon basis to which rows are only ever
//! appended; a checkpoint is just the basis length and rollback is a
//! truncation.

use rand::Rng;

use crate::BitVec;

/// Result of inserting one equation into an [`IncrementalSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The equation was independent and has been added to the basis
    /// (one more seed variable becomes determined — the paper's
    /// "variable replacement").
    Added,
    /// The equation was already implied by the basis; nothing changed.
    Redundant,
    /// The equation contradicts the basis; the system is unsolvable.
    /// The solver state is unchanged.
    Conflict,
}

/// Opaque snapshot of an [`IncrementalSolver`], created by
/// [`IncrementalSolver::checkpoint`] and consumed by
/// [`IncrementalSolver::rollback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCheckpoint {
    basis_len: usize,
}

#[derive(Debug, Clone)]
struct BasisRow {
    coeffs: BitVec,
    rhs: bool,
    pivot: usize,
}

/// An incremental solver for systems of linear equations over GF(2).
///
/// Equations are inserted one at a time; the solver maintains a
/// forward-reduced basis (each row has a unique pivot column, rows are
/// *not* back-substituted against each other until [`solve_with`] is
/// called). Because insertion never mutates existing rows, rolling back
/// to a [`checkpoint`] is O(1) amortised.
///
/// [`solve_with`]: IncrementalSolver::solve_with
/// [`checkpoint`]: IncrementalSolver::checkpoint
///
/// # Example
///
/// ```
/// use ss_gf2::{BitVec, IncrementalSolver, SolveOutcome};
///
/// let mut s = IncrementalSolver::new(2);
/// let a0 = BitVec::unit(2, 0);
/// assert_eq!(s.insert(&a0, true), SolveOutcome::Added);
/// // speculative attempt that conflicts
/// let cp = s.checkpoint();
/// assert_eq!(s.insert(&a0, false), SolveOutcome::Conflict);
/// s.rollback(cp);
/// assert_eq!(s.rank(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    vars: usize,
    basis: Vec<BasisRow>,
}

impl IncrementalSolver {
    /// Creates a solver over `vars` GF(2) variables.
    pub fn new(vars: usize) -> Self {
        IncrementalSolver {
            vars,
            basis: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of independent equations inserted so far (the dimension of
    /// the constrained subspace).
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// Number of still-free variables.
    pub fn free_vars(&self) -> usize {
        self.vars - self.basis.len()
    }

    /// Inserts the equation `coeffs · a = rhs`.
    ///
    /// Returns [`SolveOutcome::Conflict`] without modifying the solver if
    /// the equation is inconsistent with the ones already inserted.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the solver's variable count.
    pub fn insert(&mut self, coeffs: &BitVec, rhs: bool) -> SolveOutcome {
        assert_eq!(coeffs.len(), self.vars, "equation width mismatch");
        let mut row = coeffs.clone();
        let mut r = rhs;
        // Forward-reduce against the existing basis. Basis rows are in
        // insertion order; each has a distinct pivot.
        for b in &self.basis {
            if row.get(b.pivot) {
                row.xor_with(&b.coeffs);
                r ^= b.rhs;
            }
        }
        match row.first_one() {
            None => {
                if r {
                    SolveOutcome::Conflict
                } else {
                    SolveOutcome::Redundant
                }
            }
            Some(pivot) => {
                self.basis.push(BasisRow {
                    coeffs: row,
                    rhs: r,
                    pivot,
                });
                SolveOutcome::Added
            }
        }
    }

    /// Tests whether the equation would be insertable without a
    /// conflict, and what the outcome would be, without modifying the
    /// solver.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the solver's variable count.
    pub fn probe(&self, coeffs: &BitVec, rhs: bool) -> SolveOutcome {
        assert_eq!(coeffs.len(), self.vars, "equation width mismatch");
        let mut row = coeffs.clone();
        let mut r = rhs;
        for b in &self.basis {
            if row.get(b.pivot) {
                row.xor_with(&b.coeffs);
                r ^= b.rhs;
            }
        }
        match row.first_one() {
            None if r => SolveOutcome::Conflict,
            None => SolveOutcome::Redundant,
            Some(_) => SolveOutcome::Added,
        }
    }

    /// Takes a snapshot that [`rollback`](Self::rollback) can restore.
    pub fn checkpoint(&self) -> SolverCheckpoint {
        SolverCheckpoint {
            basis_len: self.basis.len(),
        }
    }

    /// Restores the solver to a previous [`checkpoint`](Self::checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is newer than the current state (i.e.
    /// was taken from a different or longer-lived solver).
    pub fn rollback(&mut self, cp: SolverCheckpoint) {
        assert!(
            cp.basis_len <= self.basis.len(),
            "rollback to a checkpoint from the future"
        );
        self.basis.truncate(cp.basis_len);
    }

    /// Solves the system, assigning every free variable with `fill`
    /// (called with the variable index) and back-substituting the pivot
    /// variables. Returns the full assignment.
    ///
    /// The DATE 2008 flow calls this with a pseudorandom fill: the free
    /// variables become the "pseudorandom data" that pad the seed.
    pub fn solve_with<F: FnMut(usize) -> bool>(&self, mut fill: F) -> BitVec {
        let mut solution = BitVec::zeros(self.vars);
        let mut pinned = BitVec::zeros(self.vars);
        for b in &self.basis {
            pinned.set(b.pivot, true);
        }
        for i in 0..self.vars {
            if !pinned.get(i) {
                solution.set(i, fill(i));
            }
        }
        // The basis is only forward-reduced (early rows may still carry
        // later pivots), so complete the elimination Gauss-Jordan style
        // on a copy before reading the pivot values off.
        let mut rows: Vec<(BitVec, bool)> = self
            .basis
            .iter()
            .map(|b| (b.coeffs.clone(), b.rhs))
            .collect();
        let pivots: Vec<usize> = self.basis.iter().map(|b| b.pivot).collect();
        // Eliminate every pivot from every other row (Jordan step).
        for i in 0..rows.len() {
            let (row_i, rhs_i) = rows[i].clone();
            for (j, (row_j, rhs_j)) in rows.iter_mut().enumerate() {
                if j != i && row_j.get(pivots[i]) {
                    row_j.xor_with(&row_i);
                    *rhs_j ^= rhs_i;
                }
            }
        }
        for (i, (row, rhs)) in rows.iter().enumerate() {
            // row now touches only its own pivot and free variables
            let mut value = *rhs;
            for v in row.iter_ones() {
                if v != pivots[i] {
                    value ^= solution.get(v);
                }
            }
            solution.set(pivots[i], value);
        }
        solution
    }

    /// Solves with a pseudorandom fill from `rng`.
    pub fn solve_random<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        self.solve_with(|_| rng.gen())
    }

    /// Verifies that `assignment` satisfies every inserted equation.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the variable count.
    pub fn check(&self, assignment: &BitVec) -> bool {
        assert_eq!(assignment.len(), self.vars, "assignment width mismatch");
        self.basis.iter().all(|b| b.coeffs.dot(assignment) == b.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn row(bits: &[usize], vars: usize) -> BitVec {
        let mut v = BitVec::zeros(vars);
        for &b in bits {
            v.set(b, true);
        }
        v
    }

    #[test]
    fn simple_system() {
        let mut s = IncrementalSolver::new(3);
        assert_eq!(s.insert(&row(&[0, 1], 3), true), SolveOutcome::Added);
        assert_eq!(s.insert(&row(&[1, 2], 3), false), SolveOutcome::Added);
        assert_eq!(s.insert(&row(&[0, 2], 3), true), SolveOutcome::Redundant);
        assert_eq!(s.insert(&row(&[0, 2], 3), false), SolveOutcome::Conflict);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.free_vars(), 1);
        let sol = s.solve_with(|_| true);
        assert!(s.check(&sol));
        assert!(sol.get(0) ^ sol.get(1));
        assert_eq!(sol.get(1), sol.get(2));
    }

    #[test]
    fn conflict_leaves_state_untouched() {
        let mut s = IncrementalSolver::new(2);
        s.insert(&row(&[0], 2), true);
        let rank_before = s.rank();
        assert_eq!(s.insert(&row(&[0], 2), false), SolveOutcome::Conflict);
        assert_eq!(s.rank(), rank_before);
        let sol = s.solve_with(|_| false);
        assert!(sol.get(0));
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut s = IncrementalSolver::new(3);
        s.insert(&row(&[0], 3), true);
        assert_eq!(s.probe(&row(&[1], 3), true), SolveOutcome::Added);
        assert_eq!(s.rank(), 1, "probe must not insert");
        assert_eq!(s.probe(&row(&[0], 3), true), SolveOutcome::Redundant);
        assert_eq!(s.probe(&row(&[0], 3), false), SolveOutcome::Conflict);
    }

    #[test]
    fn checkpoint_rollback() {
        let mut s = IncrementalSolver::new(4);
        s.insert(&row(&[0], 4), true);
        let cp = s.checkpoint();
        s.insert(&row(&[1], 4), false);
        s.insert(&row(&[2], 4), true);
        assert_eq!(s.rank(), 3);
        s.rollback(cp);
        assert_eq!(s.rank(), 1);
        // after rollback the dropped constraints are really gone
        assert_eq!(s.insert(&row(&[1], 4), true), SolveOutcome::Added);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rollback_forward_panics() {
        let mut s = IncrementalSolver::new(2);
        s.insert(&row(&[0], 2), true);
        let cp = s.checkpoint();
        let mut s2 = IncrementalSolver::new(2);
        s2.rollback(cp);
    }

    #[test]
    fn full_rank_system_has_unique_solution() {
        let mut s = IncrementalSolver::new(4);
        for i in 0..4 {
            s.insert(&row(&[i], 4), i % 2 == 0);
        }
        assert_eq!(s.free_vars(), 0);
        let a = s.solve_with(|_| false);
        let b = s.solve_with(|_| true);
        assert_eq!(a, b, "no free variables => fill is irrelevant");
        assert!(a.get(0) && !a.get(1) && a.get(2) && !a.get(3));
    }

    #[test]
    fn random_systems_solutions_check_out() {
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..50 {
            let vars = 20;
            let mut s = IncrementalSolver::new(vars);
            // Build a consistent system from a hidden ground truth.
            let truth = BitVec::random(vars, &mut rng);
            for _ in 0..15 {
                let coeffs = BitVec::random(vars, &mut rng);
                let rhs = coeffs.dot(&truth);
                assert_ne!(
                    s.insert(&coeffs, rhs),
                    SolveOutcome::Conflict,
                    "consistent system must not conflict (trial {trial})"
                );
            }
            let sol = s.solve_random(&mut rng);
            assert!(s.check(&sol), "solve_with must satisfy all equations");
        }
    }

    #[test]
    fn interleaved_speculation_matches_direct_insertion() {
        // Simulates the encoder's pattern: try a batch, roll back, try
        // another batch, commit.
        let mut rng = SmallRng::seed_from_u64(123);
        let vars = 16;
        let truth = BitVec::random(vars, &mut rng);
        let eqs: Vec<(BitVec, bool)> = (0..12)
            .map(|_| {
                let c = BitVec::random(vars, &mut rng);
                let r = c.dot(&truth);
                (c, r)
            })
            .collect();

        let mut spec = IncrementalSolver::new(vars);
        for (c, r) in &eqs[..4] {
            spec.insert(c, *r);
        }
        let cp = spec.checkpoint();
        for (c, r) in &eqs[4..8] {
            spec.insert(c, *r);
        }
        spec.rollback(cp);
        for (c, r) in &eqs[8..] {
            spec.insert(c, *r);
        }

        let mut direct = IncrementalSolver::new(vars);
        for (c, r) in eqs[..4].iter().chain(&eqs[8..]) {
            direct.insert(c, *r);
        }
        assert_eq!(spec.rank(), direct.rank());
        let sol = spec.solve_with(|_| false);
        assert!(direct.check(&sol));
    }

    #[test]
    fn zero_vars_edge_case() {
        let mut s = IncrementalSolver::new(0);
        assert_eq!(s.insert(&BitVec::zeros(0), false), SolveOutcome::Redundant);
        assert_eq!(s.insert(&BitVec::zeros(0), true), SolveOutcome::Conflict);
        assert!(s.solve_with(|_| false).is_empty());
    }
}
