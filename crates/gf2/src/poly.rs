//! Polynomials over GF(2) and primitive characteristic polynomials.
//!
//! LFSRs in this workspace are parameterised by their characteristic
//! polynomial. A *primitive* polynomial of degree `n` yields a
//! maximal-length LFSR (period `2^n - 1`), which the DATE 2008 paper
//! assumes throughout. [`primitive_poly`] returns a known-primitive
//! polynomial for every degree from 3 to 168 (the XAPP052 table used by
//! generations of BIST hardware); [`Gf2Poly`] supplies the arithmetic
//! needed to *verify* irreducibility/primitivity rather than trust the
//! table blindly.

use std::error::Error;
use std::fmt;

use crate::BitVec;

/// A polynomial over GF(2); coefficient of `x^i` is bit `i`.
///
/// # Example
///
/// ```
/// use ss_gf2::Gf2Poly;
///
/// // x^3 + x + 1, the classic primitive trinomial
/// let p = Gf2Poly::from_exponents(&[3, 1, 0]);
/// assert_eq!(p.degree(), Some(3));
/// assert!(p.is_irreducible());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Gf2Poly {
    coeffs: BitVec,
}

impl Gf2Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Gf2Poly {
            coeffs: BitVec::zeros(0),
        }
    }

    /// The constant polynomial 1.
    pub fn one() -> Self {
        Gf2Poly::from_exponents(&[0])
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Gf2Poly::from_exponents(&[1])
    }

    /// Builds a polynomial from the exponents of its nonzero terms.
    pub fn from_exponents(exponents: &[usize]) -> Self {
        let max = exponents.iter().copied().max().map_or(0, |m| m + 1);
        let mut coeffs = BitVec::zeros(max);
        for &e in exponents {
            coeffs.toggle(e); // toggle so duplicated exponents cancel, as in GF(2)
        }
        let mut p = Gf2Poly { coeffs };
        p.normalize();
        p
    }

    /// Builds a polynomial from a coefficient bit vector (bit `i` =
    /// coefficient of `x^i`).
    pub fn from_coeffs(coeffs: BitVec) -> Self {
        let mut p = Gf2Poly { coeffs };
        p.normalize();
        p
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.last_one()
    }

    /// `true` when this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_zero()
    }

    /// `true` when this is the constant polynomial 1.
    pub fn is_one(&self) -> bool {
        self.degree() == Some(0)
    }

    /// Coefficient of `x^i`.
    pub fn coeff(&self, i: usize) -> bool {
        i < self.coeffs.len() && self.coeffs.get(i)
    }

    /// Exponents of the nonzero terms, in increasing order.
    pub fn exponents(&self) -> Vec<usize> {
        self.coeffs.iter_ones().collect()
    }

    /// Number of nonzero terms.
    pub fn weight(&self) -> usize {
        self.coeffs.count_ones()
    }

    /// Sum (= difference) of two polynomials.
    pub fn add(&self, other: &Gf2Poly) -> Gf2Poly {
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(len);
        let mut o = other.coeffs.clone();
        o.resize(len);
        coeffs.xor_with(&o);
        Gf2Poly::from_coeffs(coeffs)
    }

    /// Product of two polynomials (schoolbook, word-sliced).
    pub fn mul(&self, other: &Gf2Poly) -> Gf2Poly {
        let (Some(da), Some(db)) = (self.degree(), other.degree()) else {
            return Gf2Poly::zero();
        };
        let mut coeffs = BitVec::zeros(da + db + 1);
        for i in self.coeffs.iter_ones() {
            for j in other.coeffs.iter_ones() {
                coeffs.toggle(i + j);
            }
        }
        Gf2Poly::from_coeffs(coeffs)
    }

    /// Remainder of `self` divided by `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem(&self, modulus: &Gf2Poly) -> Gf2Poly {
        let dm = modulus.degree().expect("division by zero polynomial");
        let mut r = self.clone();
        while let Some(dr) = r.degree() {
            if dr < dm {
                break;
            }
            let shift = dr - dm;
            for e in modulus.coeffs.iter_ones() {
                r.coeffs.toggle(e + shift);
            }
        }
        r.normalize();
        r
    }

    /// Greatest common divisor.
    pub fn gcd(&self, other: &Gf2Poly) -> Gf2Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// `self * other mod modulus`.
    pub fn mulmod(&self, other: &Gf2Poly, modulus: &Gf2Poly) -> Gf2Poly {
        self.mul(other).rem(modulus)
    }

    /// `self^e mod modulus` by square-and-multiply.
    pub fn powmod(&self, mut e: u128, modulus: &Gf2Poly) -> Gf2Poly {
        let mut result = Gf2Poly::one().rem(modulus);
        let mut base = self.rem(modulus);
        while e > 0 {
            if e & 1 == 1 {
                result = result.mulmod(&base, modulus);
            }
            e >>= 1;
            if e > 0 {
                base = base.mulmod(&base, modulus);
            }
        }
        result
    }

    /// Irreducibility over GF(2), by the Ben-Or criterion:
    /// `x^(2^i) ≡ x` has no common factor with `f` for `i ≤ deg/2`, and
    /// `x^(2^deg) ≡ x (mod f)`.
    pub fn is_irreducible(&self) -> bool {
        let Some(n) = self.degree() else {
            return false;
        };
        if n == 0 {
            return false;
        }
        if !self.coeff(0) {
            // divisible by x
            return n == 1 && self.coeff(1);
        }
        let x = Gf2Poly::x();
        let mut xp = x.rem(self); // x^(2^0)
        for _ in 1..=n / 2 {
            xp = xp.mulmod(&xp, self); // x^(2^i)
            let diff = xp.add(&x);
            if !self.gcd(&diff).is_one() {
                return false;
            }
        }
        // final check: x^(2^n) == x (mod f)
        let mut xq = x.rem(self);
        for _ in 0..n {
            xq = xq.mulmod(&xq, self);
        }
        xq == x.rem(self)
    }

    /// Primitivity over GF(2): irreducible and the multiplicative order
    /// of `x` modulo `self` equals `2^n - 1`.
    ///
    /// The order test needs the prime factorisation of `2^n - 1`, which
    /// this method computes by trial division — practical for `n <= 44`.
    ///
    /// # Panics
    ///
    /// Panics if `degree() > 44` (the factorisation would be too slow;
    /// use [`Gf2Poly::is_irreducible`] plus the curated table instead).
    pub fn is_primitive(&self) -> bool {
        let Some(n) = self.degree() else {
            return false;
        };
        assert!(
            n <= 44,
            "is_primitive uses trial-division factorisation, limited to degree 44"
        );
        if !self.is_irreducible() {
            return false;
        }
        let order: u64 = (1u64 << n) - 1;
        let x = Gf2Poly::x();
        // x^order must be 1 (guaranteed for irreducible f), and
        // x^(order/p) != 1 for every prime factor p.
        if !self.is_one_power(&x, order as u128) {
            return false;
        }
        for p in factorize(order) {
            if self.is_one_power(&x, (order / p) as u128) {
                return false;
            }
        }
        true
    }

    fn is_one_power(&self, x: &Gf2Poly, e: u128) -> bool {
        x.powmod(e, self).is_one()
    }

    /// The reciprocal polynomial `x^n * f(1/x)`; primitive iff `f` is.
    pub fn reciprocal(&self) -> Gf2Poly {
        let Some(n) = self.degree() else {
            return Gf2Poly::zero();
        };
        Gf2Poly::from_exponents(&self.exponents().iter().map(|&e| n - e).collect::<Vec<_>>())
    }

    fn normalize(&mut self) {
        let len = self.coeffs.last_one().map_or(0, |d| d + 1);
        self.coeffs.resize(len);
    }
}

impl fmt::Debug for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Poly({self})")
    }
}

impl fmt::Display for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for e in self.exponents().into_iter().rev() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match e {
                0 => write!(f, "1")?,
                1 => write!(f, "x")?,
                _ => write!(f, "x^{e}")?,
            }
        }
        Ok(())
    }
}

fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// Error returned by [`primitive_poly`] for unsupported degrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimitivePolyError {
    degree: usize,
}

impl fmt::Display for PrimitivePolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no primitive polynomial tabulated for degree {} (supported: 3..=168)",
            self.degree
        )
    }
}

impl Error for PrimitivePolyError {}

/// Feedback-tap table of primitive polynomials for degrees 3..=168.
///
/// Entry `i` holds the nonzero exponents besides `x^0` of a primitive
/// polynomial of degree `TAPS[i][0]` (so the polynomial is
/// `x^t0 + x^t1 + ... + 1`). This is the classic maximal-length LFSR tap
/// table (Xilinx XAPP052 and standard BIST references).
const PRIMITIVE_TAPS: &[&[usize]] = &[
    &[3, 2],
    &[4, 3],
    &[5, 3],
    &[6, 5],
    &[7, 6],
    &[8, 6, 5, 4],
    &[9, 5],
    &[10, 7],
    &[11, 9],
    &[12, 6, 4, 1],
    &[13, 4, 3, 1],
    &[14, 5, 3, 1],
    &[15, 14],
    &[16, 15, 13, 4],
    &[17, 14],
    &[18, 11],
    &[19, 6, 2, 1],
    &[20, 17],
    &[21, 19],
    &[22, 21],
    &[23, 18],
    &[24, 23, 22, 17],
    &[25, 22],
    &[26, 6, 2, 1],
    &[27, 5, 2, 1],
    &[28, 25],
    &[29, 27],
    &[30, 6, 4, 1],
    &[31, 28],
    &[32, 22, 2, 1],
    &[33, 20],
    &[34, 27, 2, 1],
    &[35, 33],
    &[36, 25],
    &[37, 5, 4, 3, 2, 1],
    &[38, 6, 5, 1],
    &[39, 35],
    &[40, 38, 21, 19],
    &[41, 38],
    &[42, 41, 20, 19],
    &[43, 42, 38, 37],
    &[44, 43, 18, 17],
    &[45, 44, 42, 41],
    &[46, 45, 26, 25],
    &[47, 42],
    &[48, 47, 21, 20],
    &[49, 40],
    &[50, 49, 24, 23],
    &[51, 50, 36, 35],
    &[52, 49],
    &[53, 52, 38, 37],
    &[54, 53, 18, 17],
    &[55, 31],
    &[56, 55, 35, 34],
    &[57, 50],
    &[58, 39],
    &[59, 58, 38, 37],
    &[60, 59],
    &[61, 60, 46, 45],
    &[62, 61, 6, 5],
    &[63, 62],
    &[64, 63, 61, 60],
    &[65, 47],
    &[66, 65, 57, 56],
    &[67, 66, 58, 57],
    &[68, 59],
    &[69, 67, 42, 40],
    &[70, 69, 55, 54],
    &[71, 65],
    &[72, 66, 25, 19],
    &[73, 48],
    &[74, 73, 59, 58],
    &[75, 74, 65, 64],
    &[76, 75, 41, 40],
    &[77, 76, 47, 46],
    &[78, 77, 59, 58],
    &[79, 70],
    &[80, 79, 43, 42],
    &[81, 77],
    &[82, 79, 47, 44],
    &[83, 82, 38, 37],
    &[84, 71],
    &[85, 84, 58, 57],
    &[86, 85, 74, 73],
    &[87, 74],
    &[88, 87, 17, 16],
    &[89, 51],
    &[90, 89, 72, 71],
    &[91, 90, 8, 7],
    &[92, 91, 80, 79],
    &[93, 91],
    &[94, 73],
    &[95, 84],
    &[96, 94, 49, 47],
    &[97, 91],
    &[98, 87],
    &[99, 97, 54, 52],
    &[100, 63],
    &[101, 100, 95, 94],
    &[102, 101, 36, 35],
    &[103, 94],
    &[104, 103, 94, 93],
    &[105, 89],
    &[106, 91],
    &[107, 105, 44, 42],
    &[108, 77],
    &[109, 108, 103, 102],
    &[110, 109, 98, 97],
    &[111, 101],
    &[112, 110, 69, 67],
    &[113, 104],
    &[114, 113, 33, 32],
    &[115, 114, 101, 100],
    &[116, 115, 46, 45],
    &[117, 115, 99, 97],
    &[118, 85],
    &[119, 111],
    &[120, 113, 9, 2],
    &[121, 103],
    &[122, 121, 63, 62],
    &[123, 121],
    &[124, 87],
    &[125, 124, 18, 17],
    &[126, 125, 90, 89],
    &[127, 126],
    &[128, 126, 101, 99],
    &[129, 124],
    &[130, 127],
    &[131, 130, 84, 83],
    &[132, 103],
    &[133, 132, 82, 81],
    &[134, 77],
    &[135, 124],
    &[136, 135, 11, 10],
    &[137, 116],
    &[138, 137, 131, 130],
    &[139, 136, 134, 131],
    &[140, 111],
    &[141, 140, 110, 109],
    &[142, 121],
    &[143, 142, 123, 122],
    &[144, 143, 75, 74],
    &[145, 93],
    &[146, 145, 87, 86],
    &[147, 146, 110, 109],
    &[148, 121],
    &[149, 148, 40, 39],
    &[150, 97],
    &[151, 148],
    &[152, 151, 87, 86],
    &[153, 152],
    &[154, 152, 27, 25],
    &[155, 154, 124, 123],
    &[156, 155, 41, 40],
    &[157, 156, 131, 130],
    &[158, 157, 132, 131],
    &[159, 128],
    &[160, 159, 142, 141],
    &[161, 143],
    &[162, 161, 75, 74],
    &[163, 162, 104, 103],
    &[164, 163, 151, 150],
    &[165, 164, 135, 134],
    &[166, 165, 128, 127],
    &[167, 161],
    &[168, 166, 153, 151],
];

/// Returns a primitive polynomial of the requested degree.
///
/// # Errors
///
/// Returns [`PrimitivePolyError`] when `degree` is outside `3..=168`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ss_gf2::PrimitivePolyError> {
/// let p = ss_gf2::primitive_poly(24)?;
/// assert_eq!(p.degree(), Some(24));
/// assert!(p.is_irreducible());
/// # Ok(())
/// # }
/// ```
pub fn primitive_poly(degree: usize) -> Result<Gf2Poly, PrimitivePolyError> {
    if !(3..=168).contains(&degree) {
        return Err(PrimitivePolyError { degree });
    }
    let taps = PRIMITIVE_TAPS[degree - 3];
    debug_assert_eq!(taps[0], degree);
    let mut exponents = taps.to_vec();
    exponents.push(0);
    Ok(Gf2Poly::from_exponents(&exponents))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Gf2Poly::from_exponents(&[3, 1, 0]); // x^3+x+1
        let b = Gf2Poly::from_exponents(&[1, 0]); // x+1
        let sum = a.add(&b);
        assert_eq!(sum.exponents(), vec![3]); // x^3
        let prod = a.mul(&b);
        // (x^3+x+1)(x+1) = x^4+x^3+x^2+1
        assert_eq!(prod.exponents(), vec![0, 2, 3, 4]);
    }

    #[test]
    fn duplicate_exponents_cancel() {
        let p = Gf2Poly::from_exponents(&[2, 2, 1]);
        assert_eq!(p.exponents(), vec![1]);
    }

    #[test]
    fn rem_and_gcd() {
        let a = Gf2Poly::from_exponents(&[4, 3, 2, 0]);
        let b = Gf2Poly::from_exponents(&[2, 1]);
        let r = a.rem(&b);
        assert!(r.degree().unwrap_or(0) < 2);
        // gcd of f and f is f (up to units; GF(2) has only unit 1)
        assert_eq!(a.gcd(&a), a);
        // gcd with 1 is 1
        assert!(a.gcd(&Gf2Poly::one()).is_one());
    }

    #[test]
    fn powmod_matches_repeated_mulmod() {
        let m = Gf2Poly::from_exponents(&[5, 2, 0]);
        let x = Gf2Poly::x();
        let mut acc = Gf2Poly::one();
        for e in 0..40u128 {
            assert_eq!(x.powmod(e, &m), acc, "x^{e}");
            acc = acc.mulmod(&x, &m);
        }
    }

    #[test]
    fn known_irreducibles() {
        assert!(Gf2Poly::from_exponents(&[3, 1, 0]).is_irreducible());
        assert!(Gf2Poly::from_exponents(&[4, 1, 0]).is_irreducible());
        // x^4 + x^2 + 1 = (x^2+x+1)^2 is reducible
        assert!(!Gf2Poly::from_exponents(&[4, 2, 0]).is_irreducible());
        // x^2 is reducible
        assert!(!Gf2Poly::from_exponents(&[2]).is_irreducible());
    }

    #[test]
    fn known_primitives_and_nonprimitives() {
        assert!(Gf2Poly::from_exponents(&[3, 1, 0]).is_primitive());
        assert!(Gf2Poly::from_exponents(&[4, 1, 0]).is_primitive());
        // x^4+x^3+x^2+x+1 is irreducible but has order 5, not 15
        let p = Gf2Poly::from_exponents(&[4, 3, 2, 1, 0]);
        assert!(p.is_irreducible());
        assert!(!p.is_primitive());
    }

    #[test]
    fn table_covers_all_supported_degrees() {
        for n in 3..=168 {
            let p = primitive_poly(n).unwrap();
            assert_eq!(p.degree(), Some(n), "degree {n}");
            assert!(p.coeff(0), "constant term required, degree {n}");
            assert!(
                p.weight() % 2 == 1,
                "even-weight poly is divisible by x+1, degree {n}"
            );
        }
        assert!(primitive_poly(2).is_err());
        assert!(primitive_poly(169).is_err());
        let err = primitive_poly(1).unwrap_err();
        assert!(err.to_string().contains("degree 1"));
    }

    #[test]
    fn table_entries_are_irreducible_small() {
        // Full irreducibility sweep for the degrees the paper's circuits
        // use (LFSR sizes 24..85) plus the small ones used in tests.
        for n in 3..=96 {
            let p = primitive_poly(n).unwrap();
            assert!(
                p.is_irreducible(),
                "table entry for degree {n} not irreducible: {p}"
            );
        }
    }

    #[test]
    #[ignore = "slow: full irreducibility sweep of the entire table"]
    fn table_entries_are_irreducible_all() {
        for n in 3..=168 {
            let p = primitive_poly(n).unwrap();
            assert!(
                p.is_irreducible(),
                "table entry for degree {n} not irreducible: {p}"
            );
        }
    }

    #[test]
    fn table_entries_are_primitive_small() {
        for n in 3..=28 {
            let p = primitive_poly(n).unwrap();
            assert!(
                p.is_primitive(),
                "table entry for degree {n} not primitive: {p}"
            );
        }
    }

    #[test]
    fn reciprocal_preserves_primitivity() {
        for n in [5usize, 9, 17, 23] {
            let p = primitive_poly(n).unwrap();
            let r = p.reciprocal();
            assert_eq!(r.degree(), Some(n));
            assert!(
                r.is_primitive(),
                "reciprocal of degree {n} entry not primitive"
            );
        }
    }

    #[test]
    fn display_formats() {
        let p = Gf2Poly::from_exponents(&[3, 1, 0]);
        assert_eq!(format!("{p}"), "x^3 + x + 1");
        assert_eq!(format!("{}", Gf2Poly::zero()), "0");
    }

    #[test]
    fn factorize_works() {
        assert_eq!(factorize(1), Vec::<u64>::new());
        assert_eq!(factorize(2u64.pow(24) - 1), vec![3, 5, 7, 13, 17, 241]);
    }
}
