//! Dense linear algebra over GF(2), the two-element field.
//!
//! This crate is the arithmetic substrate of the `state-skip` workspace,
//! a reproduction of *"State Skip LFSRs: Bridging the Gap between Test
//! Data Compression and Test Set Embedding for IP Cores"* (DATE 2008).
//! Everything an LFSR-reseeding flow needs lives here:
//!
//! * [`BitVec`] — a dense, word-packed vector of bits with XOR/AND
//!   arithmetic, the representation of GF(2) row vectors and LFSR states.
//! * [`BitMatrix`] — a row-major matrix of [`BitVec`]s with
//!   multiplication, exponentiation (the `T^k` powering at the heart of
//!   State Skip circuits), rank, and inversion.
//! * [`Gf2Poly`] and [`primitive_poly`] — polynomials over GF(2) and a
//!   table of primitive polynomials for every degree an LFSR in this
//!   workspace might use.
//! * [`PackedPatterns`] — bit-sliced pattern blocks (64 patterns per
//!   `u64` lane), the storage format of the word-parallel fault
//!   simulation and embedding-detection kernels.
//! * [`IncrementalSolver`] — a row-echelon GF(2) system solver with
//!   checkpoint/rollback, used to encode test cubes into LFSR seeds.
//! * [`berlekamp_massey`] — shortest-LFSR synthesis, used in tests to
//!   cross-check that generated sequences really have the intended
//!   characteristic polynomial.
//!
//! # Example
//!
//! Solve a small GF(2) system incrementally:
//!
//! ```
//! use ss_gf2::{BitVec, IncrementalSolver, SolveOutcome};
//!
//! let mut solver = IncrementalSolver::new(3);
//! // a0 ^ a1 = 1
//! let mut row = BitVec::zeros(3);
//! row.set(0, true);
//! row.set(1, true);
//! assert_eq!(solver.insert(&row, true), SolveOutcome::Added);
//! // a1 ^ a2 = 0
//! let mut row = BitVec::zeros(3);
//! row.set(1, true);
//! row.set(2, true);
//! assert_eq!(solver.insert(&row, false), SolveOutcome::Added);
//! let solution = solver.solve_with(|_| false);
//! assert!(solution.get(0) ^ solution.get(1));
//! assert_eq!(solution.get(1), solution.get(2));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod berlekamp;
mod bitvec;
mod matrix;
mod packed;
mod poly;
mod proptests;
mod solver;
pub mod words;

pub use berlekamp::berlekamp_massey;
pub use bitvec::BitVec;
pub use matrix::BitMatrix;
pub use packed::{PackedPatterns, PATTERNS_PER_BLOCK};
pub use poly::{primitive_poly, Gf2Poly, PrimitivePolyError};
pub use solver::{AffineSpace, FrozenBasis, IncrementalSolver, SolveOutcome, SolverCheckpoint};
