//! Property-based tests for the `.bench` reader/writer.

#![cfg(test)]

use proptest::prelude::*;

use crate::bench_io::{parse_bench, write_bench};
use crate::generator::{random_circuit, CircuitSpec};
use crate::netlist::Netlist;

/// A random generator-built netlist spanning the spec space,
/// deterministic in the three drawn knobs.
fn build_netlist(inputs: usize, gates: usize, seed: u64) -> Netlist {
    let spec = CircuitSpec {
        name: "prop",
        inputs,
        gates,
        outputs: (gates / 3).max(1),
        max_fanin: 2 + (seed % 3) as usize,
        locality: (inputs + gates).div_ceil(2).max(4),
    };
    random_circuit(&spec, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `parse(write(n))` reconstructs the exact netlist structure for
    /// any generator-built circuit: same inputs, gate list (kinds and
    /// fanin ids) and output list.
    #[test]
    fn bench_roundtrip_is_identity(
        inputs in 1usize..=24,
        gates in 1usize..=80,
        seed in any::<u64>(),
    ) {
        let netlist = build_netlist(inputs, gates, seed);
        let text = write_bench(&netlist, "prop-roundtrip");
        let parsed = parse_bench(&text).unwrap();
        prop_assert_eq!(&parsed.netlist, &netlist);
        prop_assert_eq!(parsed.pi_count, netlist.input_count());
        prop_assert_eq!(parsed.dff_count, 0);
        // a second trip through the writer is byte-stable
        prop_assert_eq!(write_bench(&parsed.netlist, "prop-roundtrip"), text);
    }

    /// Round-tripped netlists are not just structurally but
    /// behaviourally identical on random input vectors.
    #[test]
    fn bench_roundtrip_preserves_behaviour(
        inputs in 1usize..=24,
        gates in 1usize..=80,
        seed in any::<u64>(),
        raw in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let netlist = build_netlist(inputs, gates, seed);
        let parsed = parse_bench(&write_bench(&netlist, "prop")).unwrap();
        let inputs: Vec<bool> = raw.iter().copied()
            .cycle()
            .take(netlist.input_count())
            .collect();
        prop_assert_eq!(parsed.netlist.eval(&inputs), netlist.eval(&inputs));
    }

    /// The parser never panics: arbitrary byte soup yields `Ok` or a
    /// structured error, nothing else.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_bench(&text);
    }

    /// Nor on "almost valid" inputs: random line-structured text drawn
    /// from the format's own alphabet.
    #[test]
    fn parser_never_panics_on_format_like_text(
        lines in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    Just("INPUT"), Just("OUTPUT"), Just("G1"), Just("G2"),
                    Just("="), Just("("), Just(")"), Just(","), Just(" "),
                    Just("NAND"), Just("DFF"), Just("#"), Just("\t"),
                ],
                0..12,
            ),
            0..8,
        ),
    ) {
        let text = lines
            .iter()
            .map(|tokens| tokens.concat())
            .collect::<Vec<_>>()
            .join("\n");
        let _ = parse_bench(&text);
    }
}
