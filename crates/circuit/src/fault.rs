//! Single-stuck-at faults and structural collapsing.

use std::fmt;

use crate::{GateKind, Netlist, NodeId};

/// The stuck polarity of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckAt {
    /// The stuck value as a bool.
    pub fn value(self) -> bool {
        matches!(self, StuckAt::One)
    }

    /// The *activation* value a test must drive on the node (the
    /// opposite of the stuck value).
    pub fn activation(self) -> bool {
        !self.value()
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckAt::Zero => write!(f, "sa0"),
            StuckAt::One => write!(f, "sa1"),
        }
    }
}

/// A single stuck-at fault on a node output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulted node.
    pub node: NodeId,
    /// The stuck polarity.
    pub stuck: StuckAt,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{} {}", self.node, self.stuck)
    }
}

/// A collapsed list of stuck-at faults for a netlist.
///
/// Generation enumerates both polarities on every node, then collapses
/// structural equivalences that need no simulation to prove:
///
/// * through a BUF, output faults are equivalent to input faults;
/// * through a NOT, output faults are equivalent to *inverted* input
///   faults;
/// * the stuck-at-`c` fault on the single fanin of a fanout-free
///   AND/NAND/OR/NOR input is equivalent to the gate's output
///   stuck-at-(c^inv) fault when the input is the gate's only
///   connection (covered here by the BUF/NOT rules only — input-pin
///   faults are not modelled separately, so AND-input collapsing does
///   not apply).
///
/// # Example
///
/// ```
/// use ss_circuit::{FaultList, GateKind, Netlist};
///
/// # fn main() -> Result<(), ss_circuit::NetlistError> {
/// let mut n = Netlist::new(2);
/// let a = n.add_gate(GateKind::And, vec![0, 1])?;
/// let b = n.add_gate(GateKind::Buf, vec![a])?;
/// n.add_output(b)?;
/// let faults = FaultList::collapsed(&n);
/// // buffer output faults collapse onto the AND output
/// assert_eq!(faults.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// Every fault, uncollapsed: two per node.
    pub fn full(netlist: &Netlist) -> Self {
        let mut faults = Vec::with_capacity(netlist.node_count() * 2);
        for node in 0..netlist.node_count() {
            faults.push(Fault {
                node,
                stuck: StuckAt::Zero,
            });
            faults.push(Fault {
                node,
                stuck: StuckAt::One,
            });
        }
        FaultList { faults }
    }

    /// Structurally collapsed fault list (see the type docs).
    pub fn collapsed(netlist: &Netlist) -> Self {
        let mut list = FaultList::full(netlist);
        list.faults.retain(|f| {
            match netlist.gate(f.node) {
                // faults on BUF/NOT outputs are represented by their
                // (possibly inverted) input faults
                Some(gate) if matches!(gate.kind, GateKind::Buf | GateKind::Not) => false,
                _ => true,
            }
        });
        list
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> std::slice::Iter<'_, Fault> {
        self.faults.iter()
    }

    /// Removes (and returns how many) faults matched by `detected`.
    pub fn drop_where<F: FnMut(&Fault) -> bool>(&mut self, mut detected: F) -> usize {
        let before = self.faults.len();
        self.faults.retain(|f| !detected(f));
        before - self.faults.len()
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn chain() -> Netlist {
        // in0 -> NOT -> BUF -> AND(in1) -> out
        let mut n = Netlist::new(2);
        let inv = n.add_gate(GateKind::Not, vec![0]).unwrap();
        let buf = n.add_gate(GateKind::Buf, vec![inv]).unwrap();
        let and = n.add_gate(GateKind::And, vec![buf, 1]).unwrap();
        n.add_output(and).unwrap();
        n
    }

    #[test]
    fn full_list_has_two_per_node() {
        let n = chain();
        let list = FaultList::full(&n);
        assert_eq!(list.len(), n.node_count() * 2);
    }

    #[test]
    fn collapsed_drops_buf_not_outputs() {
        let n = chain();
        let list = FaultList::collapsed(&n);
        // nodes: 0,1 inputs; 2 NOT; 3 BUF; 4 AND — NOT/BUF outputs collapse
        assert_eq!(list.len(), 3 * 2);
        assert!(list.iter().all(|f| f.node != 2 && f.node != 3));
    }

    #[test]
    fn stuck_polarity_helpers() {
        assert!(!StuckAt::Zero.value());
        assert!(StuckAt::Zero.activation());
        assert!(StuckAt::One.value());
        assert!(!StuckAt::One.activation());
        assert_eq!(StuckAt::Zero.to_string(), "sa0");
    }

    #[test]
    fn drop_where_removes_matching() {
        let n = chain();
        let mut list = FaultList::collapsed(&n);
        let removed = list.drop_where(|f| f.stuck == StuckAt::Zero);
        assert_eq!(removed, 3);
        assert!(list.iter().all(|f| f.stuck == StuckAt::One));
    }

    #[test]
    fn display() {
        let f = Fault {
            node: 7,
            stuck: StuckAt::One,
        };
        assert_eq!(f.to_string(), "node7 sa1");
    }
}
