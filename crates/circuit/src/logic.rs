//! Five-valued logic (the D-calculus) for ATPG.

use std::fmt;

/// A 5-valued logic value: the composite of the good-machine value and
/// the faulty-machine value.
///
/// | variant | good | faulty |
/// |---------|------|--------|
/// | `Zero`  | 0    | 0      |
/// | `One`   | 1    | 1      |
/// | `D`     | 1    | 0      |
/// | `Dbar`  | 0    | 1      |
/// | `X`     | ?    | ?      |
///
/// # Example
///
/// ```
/// use ss_circuit::V5;
///
/// assert_eq!(V5::D.and(V5::One), V5::D);
/// assert_eq!(V5::D.and(V5::Zero), V5::Zero);
/// assert_eq!(V5::D.xor(V5::Dbar), V5::One);
/// assert_eq!(V5::D.not(), V5::Dbar);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V5 {
    /// 0 in both machines.
    Zero,
    /// 1 in both machines.
    One,
    /// Unknown.
    X,
    /// 1 in the good machine, 0 in the faulty machine.
    D,
    /// 0 in the good machine, 1 in the faulty machine.
    Dbar,
}

impl V5 {
    /// Wraps a concrete bit.
    pub fn from_bool(b: bool) -> V5 {
        if b {
            V5::One
        } else {
            V5::Zero
        }
    }

    /// Good-machine component (`None` for X).
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Dbar => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// Faulty-machine component (`None` for X).
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Dbar => Some(true),
            V5::X => None,
        }
    }

    /// `true` for D or D̄ (a fault effect).
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Dbar)
    }

    /// Recombines good/faulty components into a composite value.
    fn compose(good: Option<bool>, faulty: Option<bool>) -> V5 {
        match (good, faulty) {
            (Some(false), Some(false)) => V5::Zero,
            (Some(true), Some(true)) => V5::One,
            (Some(true), Some(false)) => V5::D,
            (Some(false), Some(true)) => V5::Dbar,
            _ => V5::X,
        }
    }

    /// 5-valued AND.
    pub fn and(self, other: V5) -> V5 {
        // short-circuit: a controlling 0 dominates X
        let good = and3(self.good(), other.good());
        let faulty = and3(self.faulty(), other.faulty());
        V5::compose(good, faulty)
    }

    /// 5-valued OR.
    pub fn or(self, other: V5) -> V5 {
        let good = or3(self.good(), other.good());
        let faulty = or3(self.faulty(), other.faulty());
        V5::compose(good, faulty)
    }

    /// 5-valued XOR.
    pub fn xor(self, other: V5) -> V5 {
        let good = xor3(self.good(), other.good());
        let faulty = xor3(self.faulty(), other.faulty());
        V5::compose(good, faulty)
    }

    /// 5-valued NOT.
    #[allow(clippy::should_implement_trait)] // domain term; V5 is not a bool-like ops type
    pub fn not(self) -> V5 {
        match self {
            V5::Zero => V5::One,
            V5::One => V5::Zero,
            V5::X => V5::X,
            V5::D => V5::Dbar,
            V5::Dbar => V5::D,
        }
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn xor3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x ^ y),
        _ => None,
    }
}

impl fmt::Display for V5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            V5::Zero => "0",
            V5::One => "1",
            V5::X => "X",
            V5::D => "D",
            V5::Dbar => "D'",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V5; 5] = [V5::Zero, V5::One, V5::X, V5::D, V5::Dbar];

    /// Reference: evaluate by splitting into good/faulty 3-valued pairs.
    fn reference_op(a: V5, b: V5, op: fn(bool, bool) -> bool) -> V5 {
        let candidates = |v: V5| -> Vec<(bool, bool)> {
            match v {
                V5::Zero => vec![(false, false)],
                V5::One => vec![(true, true)],
                V5::D => vec![(true, false)],
                V5::Dbar => vec![(false, true)],
                V5::X => vec![(false, false), (false, true), (true, false), (true, true)],
            }
        };
        let mut goods = std::collections::HashSet::new();
        let mut faults = std::collections::HashSet::new();
        for (ga, fa) in candidates(a) {
            for (gb, fb) in candidates(b) {
                goods.insert(op(ga, gb));
                faults.insert(op(fa, fb));
            }
        }
        let pick = |s: std::collections::HashSet<bool>| {
            if s.len() == 1 {
                Some(s.into_iter().next().unwrap())
            } else {
                None
            }
        };
        V5::compose(pick(goods), pick(faults))
    }

    #[test]
    fn and_matches_reference() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), reference_op(a, b, |x, y| x & y), "{a} & {b}");
            }
        }
    }

    #[test]
    fn or_matches_reference() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.or(b), reference_op(a, b, |x, y| x | y), "{a} | {b}");
            }
        }
    }

    #[test]
    fn xor_matches_reference() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.xor(b), reference_op(a, b, |x, y| x ^ y), "{a} ^ {b}");
            }
        }
    }

    #[test]
    fn not_involution() {
        for a in ALL {
            assert_eq!(a.not().not(), a);
        }
        assert_eq!(V5::D.not(), V5::Dbar);
        assert_eq!(V5::Zero.not(), V5::One);
        assert_eq!(V5::X.not(), V5::X);
    }

    #[test]
    fn commutativity() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn fault_effect_propagation_basics() {
        // a D propagates through AND only with non-controlling other input
        assert_eq!(V5::D.and(V5::One), V5::D);
        assert_eq!(V5::D.and(V5::Zero), V5::Zero);
        assert_eq!(V5::D.and(V5::X), V5::X);
        // D and Dbar cancel in AND (good 1&0=0, faulty 0&1=0)
        assert_eq!(V5::D.and(V5::Dbar), V5::Zero);
        // ... but produce a solid One through XOR
        assert_eq!(V5::D.xor(V5::Dbar), V5::One);
        assert_eq!(V5::D.xor(V5::D), V5::Zero);
    }

    #[test]
    fn components() {
        assert_eq!(V5::D.good(), Some(true));
        assert_eq!(V5::D.faulty(), Some(false));
        assert_eq!(V5::X.good(), None);
        assert!(V5::Dbar.is_fault_effect());
        assert!(!V5::One.is_fault_effect());
        assert_eq!(V5::from_bool(true), V5::One);
        assert_eq!(V5::from_bool(false), V5::Zero);
    }
}
