//! Combinational gate-level netlists.

use std::error::Error;
use std::fmt;

/// Index of a node (primary input or gate output) in a [`Netlist`].
///
/// Nodes `0..input_count` are the primary inputs; gate `g` drives node
/// `input_count + g`.
pub type NodeId = usize;

/// Logic function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR (n-input = parity).
    Xor,
    /// 2-input XNOR (n-input = inverted parity).
    Xnor,
    /// Inverter (1 input).
    Not,
    /// Buffer (1 input).
    Buf,
}

impl GateKind {
    /// `true` for kinds whose output is inverted relative to the
    /// underlying AND/OR/parity core.
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The controlling input value, if the kind has one (AND/NAND: 0,
    /// OR/NOR: 1; parity and unary gates have none).
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// All multi-input kinds (used by the random generator).
    pub fn multi_input_kinds() -> [GateKind; 6] {
        [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
        };
        write!(f, "{s}")
    }
}

/// One gate: a kind plus fanin node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Fanin nodes (all `< ` this gate's own node id, so the gate list
    /// is topologically ordered by construction).
    pub fanins: Vec<NodeId>,
}

/// Error building a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate referenced a node that does not exist yet.
    ForwardReference {
        /// The offending fanin id.
        fanin: NodeId,
        /// The gate's own node id.
        node: NodeId,
    },
    /// A gate had the wrong number of fanins for its kind.
    BadFaninCount {
        /// The gate kind.
        kind: GateKind,
        /// Fanins supplied.
        got: usize,
    },
    /// An output referenced a nonexistent node.
    BadOutput {
        /// The offending node id.
        node: NodeId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { fanin, node } => {
                write!(f, "gate node {node} references later node {fanin}")
            }
            NetlistError::BadFaninCount { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} fanins")
            }
            NetlistError::BadOutput { node } => write!(f, "output references unknown node {node}"),
        }
    }
}

impl Error for NetlistError {}

/// A combinational netlist: `input_count` primary inputs followed by a
/// topologically ordered gate list, plus designated output nodes.
///
/// For a full-scan core, "primary inputs" are the scan cells plus the
/// functional PIs — exactly the positions of a test cube.
///
/// # Example
///
/// ```
/// use ss_circuit::{GateKind, Netlist};
///
/// # fn main() -> Result<(), ss_circuit::NetlistError> {
/// let mut n = Netlist::new(2);
/// let g = n.add_gate(GateKind::And, vec![0, 1])?;
/// n.add_output(g)?;
/// assert_eq!(n.eval(&[true, true]), vec![true]);
/// assert_eq!(n.eval(&[true, false]), vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    input_count: usize,
    gates: Vec<Gate>,
    outputs: Vec<NodeId>,
}

impl Netlist {
    /// Creates a netlist with `input_count` primary inputs and no gates.
    pub fn new(input_count: usize) -> Self {
        Netlist {
            input_count,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a gate; returns its node id.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::ForwardReference`] if a fanin id is not yet
    ///   defined (this keeps the list topologically ordered).
    /// * [`NetlistError::BadFaninCount`] if the fanin count does not
    ///   suit the kind (unary kinds need exactly 1, others >= 2).
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        let node = self.node_count();
        let unary = matches!(kind, GateKind::Not | GateKind::Buf);
        if (unary && fanins.len() != 1) || (!unary && fanins.len() < 2) {
            return Err(NetlistError::BadFaninCount {
                kind,
                got: fanins.len(),
            });
        }
        if let Some(&fanin) = fanins.iter().find(|&&f| f >= node) {
            return Err(NetlistError::ForwardReference { fanin, node });
        }
        self.gates.push(Gate { kind, fanins });
        Ok(node)
    }

    /// Marks `node` as a primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadOutput`] for an unknown node.
    pub fn add_output(&mut self, node: NodeId) -> Result<(), NetlistError> {
        if node >= self.node_count() {
            return Err(NetlistError::BadOutput { node });
        }
        self.outputs.push(node);
        Ok(())
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Total nodes (inputs + gates).
    pub fn node_count(&self) -> usize {
        self.input_count + self.gates.len()
    }

    /// `true` if `node` is a primary input.
    pub fn is_input(&self, node: NodeId) -> bool {
        node < self.input_count
    }

    /// The gate driving `node`, or `None` for a primary input.
    pub fn gate(&self, node: NodeId) -> Option<&Gate> {
        node.checked_sub(self.input_count)
            .and_then(|g| self.gates.get(g))
    }

    /// The gates in topological order (gate `g` drives node
    /// `input_count + g`).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The primary output nodes.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Per-node fanout lists (which gates read each node).
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut fanouts = vec![Vec::new(); self.node_count()];
        for (g, gate) in self.gates.iter().enumerate() {
            let node = self.input_count + g;
            for &f in &gate.fanins {
                fanouts[f].push(node);
            }
        }
        fanouts
    }

    /// Logic level of every node (inputs are level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.node_count()];
        for (g, gate) in self.gates.iter().enumerate() {
            let node = self.input_count + g;
            levels[node] = gate.fanins.iter().map(|&f| levels[f]).max().unwrap_or(0) + 1;
        }
        levels
    }

    /// Evaluates the netlist on a single fully specified input vector,
    /// returning the primary output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.eval_nodes(inputs);
        self.outputs.iter().map(|&o| values[o]).collect()
    }

    /// Evaluates the netlist, returning every node's value.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count()`.
    pub fn eval_nodes(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.input_count, "input width mismatch");
        let mut values = Vec::with_capacity(self.node_count());
        values.extend_from_slice(inputs);
        for gate in &self.gates {
            let v = eval_gate_bool(gate, &values);
            values.push(v);
        }
        values
    }

    /// Evaluates 64 patterns at once (bit `p` of each word belongs to
    /// pattern `p`), returning a value word per node.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count()`.
    pub fn eval_nodes_parallel(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.input_count, "input width mismatch");
        let mut values = Vec::with_capacity(self.node_count());
        values.extend_from_slice(inputs);
        for gate in &self.gates {
            let v = eval_gate_u64(gate, &values);
            values.push(v);
        }
        values
    }

    /// The transitive fanout cone of `node` (including `node`), as a
    /// sorted list of node ids. Fault simulation re-evaluates only this
    /// cone.
    pub fn fanout_cone(&self, node: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.node_count()];
        in_cone[node] = true;
        for (g, gate) in self.gates.iter().enumerate() {
            let id = self.input_count + g;
            if id <= node {
                continue;
            }
            if gate.fanins.iter().any(|&f| in_cone[f]) {
                in_cone[id] = true;
            }
        }
        in_cone
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }
}

fn eval_gate_bool(gate: &Gate, values: &[bool]) -> bool {
    let ins = gate.fanins.iter().map(|&f| values[f]);
    match gate.kind {
        GateKind::And => ins.fold(true, |a, b| a & b),
        GateKind::Nand => !gate
            .fanins
            .iter()
            .map(|&f| values[f])
            .fold(true, |a, b| a & b),
        GateKind::Or => ins.fold(false, |a, b| a | b),
        GateKind::Nor => !gate
            .fanins
            .iter()
            .map(|&f| values[f])
            .fold(false, |a, b| a | b),
        GateKind::Xor => ins.fold(false, |a, b| a ^ b),
        GateKind::Xnor => !gate
            .fanins
            .iter()
            .map(|&f| values[f])
            .fold(false, |a, b| a ^ b),
        GateKind::Not => !values[gate.fanins[0]],
        GateKind::Buf => values[gate.fanins[0]],
    }
}

fn eval_gate_u64(gate: &Gate, values: &[u64]) -> u64 {
    let ins = gate.fanins.iter().map(|&f| values[f]);
    match gate.kind {
        GateKind::And => ins.fold(u64::MAX, |a, b| a & b),
        GateKind::Nand => !gate
            .fanins
            .iter()
            .map(|&f| values[f])
            .fold(u64::MAX, |a, b| a & b),
        GateKind::Or => ins.fold(0, |a, b| a | b),
        GateKind::Nor => !gate.fanins.iter().map(|&f| values[f]).fold(0, |a, b| a | b),
        GateKind::Xor => ins.fold(0, |a, b| a ^ b),
        GateKind::Xnor => !gate.fanins.iter().map(|&f| values[f]).fold(0, |a, b| a ^ b),
        GateKind::Not => !values[gate.fanins[0]],
        GateKind::Buf => values[gate.fanins[0]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// c17-like miniature: 5 inputs, 6 NAND gates, 2 outputs.
    fn c17() -> Netlist {
        let mut n = Netlist::new(5);
        let g10 = n.add_gate(GateKind::Nand, vec![0, 2]).unwrap();
        let g11 = n.add_gate(GateKind::Nand, vec![2, 3]).unwrap();
        let g16 = n.add_gate(GateKind::Nand, vec![1, g11]).unwrap();
        let g19 = n.add_gate(GateKind::Nand, vec![g11, 4]).unwrap();
        let g22 = n.add_gate(GateKind::Nand, vec![g10, g16]).unwrap();
        let g23 = n.add_gate(GateKind::Nand, vec![g16, g19]).unwrap();
        n.add_output(g22).unwrap();
        n.add_output(g23).unwrap();
        n
    }

    #[test]
    fn build_and_counts() {
        let n = c17();
        assert_eq!(n.input_count(), 5);
        assert_eq!(n.gate_count(), 6);
        assert_eq!(n.node_count(), 11);
        assert_eq!(n.outputs().len(), 2);
        assert!(n.is_input(4));
        assert!(!n.is_input(5));
        assert!(n.gate(4).is_none());
        assert_eq!(n.gate(5).unwrap().kind, GateKind::Nand);
    }

    #[test]
    fn build_errors() {
        let mut n = Netlist::new(2);
        assert!(matches!(
            n.add_gate(GateKind::And, vec![0, 5]),
            Err(NetlistError::ForwardReference { fanin: 5, node: 2 })
        ));
        assert!(matches!(
            n.add_gate(GateKind::Not, vec![0, 1]),
            Err(NetlistError::BadFaninCount { .. })
        ));
        assert!(matches!(
            n.add_gate(GateKind::And, vec![0]),
            Err(NetlistError::BadFaninCount { .. })
        ));
        assert!(matches!(
            n.add_output(9),
            Err(NetlistError::BadOutput { node: 9 })
        ));
    }

    #[test]
    fn eval_known_vectors() {
        let n = c17();
        // exhaustive check against a hand-rolled reference
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| (pattern >> i) & 1 == 1).collect();
            let out = n.eval(&inputs);
            let (a, b, c, d, e) = (inputs[0], inputs[1], inputs[2], inputs[3], inputs[4]);
            let g10 = !(a & c);
            let g11 = !(c & d);
            let g16 = !(b & g11);
            let g19 = !(g11 & e);
            let g22 = !(g10 & g16);
            let g23 = !(g16 & g19);
            assert_eq!(out, vec![g22, g23], "pattern {pattern:05b}");
        }
    }

    #[test]
    fn parallel_eval_matches_scalar() {
        let n = c17();
        // pack all 32 patterns into one word
        let inputs: Vec<u64> = (0..5)
            .map(|i| {
                let mut w = 0u64;
                for p in 0u64..32 {
                    if (p >> i) & 1 == 1 {
                        w |= 1 << p;
                    }
                }
                w
            })
            .collect();
        let values = n.eval_nodes_parallel(&inputs);
        for p in 0..32usize {
            let scalar_in: Vec<bool> = (0..5).map(|i| (p >> i) & 1 == 1).collect();
            let scalar = n.eval_nodes(&scalar_in);
            for node in 0..n.node_count() {
                assert_eq!(
                    (values[node] >> p) & 1 == 1,
                    scalar[node],
                    "node {node} pattern {p}"
                );
            }
        }
    }

    #[test]
    fn all_gate_kinds_evaluate() {
        let mut n = Netlist::new(2);
        let and = n.add_gate(GateKind::And, vec![0, 1]).unwrap();
        let or = n.add_gate(GateKind::Or, vec![0, 1]).unwrap();
        let nand = n.add_gate(GateKind::Nand, vec![0, 1]).unwrap();
        let nor = n.add_gate(GateKind::Nor, vec![0, 1]).unwrap();
        let xor = n.add_gate(GateKind::Xor, vec![0, 1]).unwrap();
        let xnor = n.add_gate(GateKind::Xnor, vec![0, 1]).unwrap();
        let not = n.add_gate(GateKind::Not, vec![0]).unwrap();
        let buf = n.add_gate(GateKind::Buf, vec![1]).unwrap();
        for node in [and, or, nand, nor, xor, xnor, not, buf] {
            n.add_output(node).unwrap();
        }
        let v = n.eval(&[true, false]);
        assert_eq!(v, vec![false, true, true, false, true, false, false, false]);
    }

    #[test]
    fn levels_and_fanouts() {
        let n = c17();
        let levels = n.levels();
        assert_eq!(levels[0], 0);
        assert_eq!(levels[5], 1); // g10
        assert_eq!(levels[7], 2); // g16
        assert_eq!(levels[9], 3); // g22
        let fanouts = n.fanouts();
        assert_eq!(fanouts[6], vec![7, 8], "g11 feeds g16 and g19");
        assert!(fanouts[9].is_empty(), "outputs feed nothing");
    }

    #[test]
    fn fanout_cone_contains_path_to_outputs() {
        let n = c17();
        let cone = n.fanout_cone(6); // g11
        assert_eq!(cone, vec![6, 7, 8, 9, 10]);
        let cone = n.fanout_cone(0); // input a feeds g10 -> g22
        assert_eq!(cone, vec![0, 5, 9]);
    }
}
