//! Deterministic random netlist generation with ISCAS'89-like presets.
//!
//! The real ISCAS'89 netlists are not redistributable, so benchmarks
//! and examples that need a *circuit* (rather than just cube
//! statistics) use layered random netlists with matching interface
//! sizes. See `DESIGN.md` § Substitutions for why this preserves the
//! paper's observable behaviour.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::netlist::{GateKind, Netlist};

/// Parameters of a generated circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Primary inputs (scan cells + functional PIs of the modelled core).
    pub inputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Maximum gate fanin (>= 2).
    pub max_fanin: usize,
    /// Fanin locality window: fanins are drawn mostly from the last
    /// this-many nodes, with occasional global picks (keeps cones
    /// shallow and testable, like real synthesised logic).
    pub locality: usize,
}

impl CircuitSpec {
    /// A 12-input / 30-gate circuit for fast unit tests.
    pub fn tiny() -> Self {
        CircuitSpec {
            name: "tiny",
            inputs: 12,
            gates: 30,
            outputs: 6,
            max_fanin: 3,
            locality: 20,
        }
    }

    /// A 64-input / 250-gate circuit matching
    /// `ss_testdata::CubeProfile::mini` geometry.
    pub fn mini() -> Self {
        CircuitSpec {
            name: "mini",
            inputs: 64,
            gates: 250,
            outputs: 32,
            max_fanin: 4,
            locality: 60,
        }
    }

    /// s9234-like interface: 247 inputs.
    pub fn s9234_like() -> Self {
        CircuitSpec {
            name: "s9234-like",
            inputs: 247,
            gates: 2000,
            outputs: 250,
            max_fanin: 4,
            locality: 150,
        }
    }

    /// s13207-like interface: 700 inputs.
    pub fn s13207_like() -> Self {
        CircuitSpec {
            name: "s13207-like",
            inputs: 700,
            gates: 2800,
            outputs: 700,
            max_fanin: 4,
            locality: 200,
        }
    }

    /// s15850-like interface: 611 inputs.
    pub fn s15850_like() -> Self {
        CircuitSpec {
            name: "s15850-like",
            inputs: 611,
            gates: 2600,
            outputs: 600,
            max_fanin: 4,
            locality: 200,
        }
    }

    /// s38417-like interface: 1664 inputs.
    pub fn s38417_like() -> Self {
        CircuitSpec {
            name: "s38417-like",
            inputs: 1664,
            gates: 5500,
            outputs: 1700,
            max_fanin: 4,
            locality: 300,
        }
    }

    /// Looks a preset up by name (`"tiny"`, `"mini"`, `"s9234-like"`,
    /// ...), as recorded in workload provenance metadata.
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "tiny" => CircuitSpec::tiny(),
            "mini" => CircuitSpec::mini(),
            "s9234-like" => CircuitSpec::s9234_like(),
            "s13207-like" => CircuitSpec::s13207_like(),
            "s15850-like" => CircuitSpec::s15850_like(),
            "s38417-like" => CircuitSpec::s38417_like(),
            "s38584-like" => CircuitSpec::s38584_like(),
            _ => return None,
        })
    }

    /// s38584-like interface: 1464 inputs.
    pub fn s38584_like() -> Self {
        CircuitSpec {
            name: "s38584-like",
            inputs: 1464,
            gates: 5200,
            outputs: 1500,
            max_fanin: 4,
            locality: 300,
        }
    }
}

/// Generates a layered random netlist from `spec`, deterministically in
/// `seed`.
///
/// Construction rules:
///
/// * gate kinds are weighted toward NAND/NOR/AND/OR with a sprinkle of
///   XOR/XNOR and inverters (ISCAS-like mix);
/// * every primary input is guaranteed at least one fanout (so no
///   trivially untestable input faults);
/// * fanins are drawn from a sliding locality window over earlier
///   nodes, with ~10% global picks for reconvergence;
/// * the last gates plus a random sample of internal nodes become the
///   primary outputs, and every *sink* gate (one nothing reads) is
///   promoted to an output so no logic is dead.
///
/// # Panics
///
/// Panics if `spec.inputs == 0`, `spec.gates == 0` or `spec.max_fanin < 2`.
pub fn random_circuit(spec: &CircuitSpec, seed: u64) -> Netlist {
    assert!(spec.inputs > 0, "need at least one input");
    assert!(spec.gates > 0, "need at least one gate");
    assert!(spec.max_fanin >= 2, "max fanin must be >= 2");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4349_5243_5549_5421); // "CIRCUIT!"
    let mut netlist = Netlist::new(spec.inputs);

    for g in 0..spec.gates {
        let node_count = spec.inputs + g;
        let kind = random_kind(&mut rng);
        let fanin_count = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            rng.gen_range(2..=spec.max_fanin)
        };
        let mut fanins = Vec::with_capacity(fanin_count);
        // guarantee input coverage: the first `inputs` gates each tap
        // the corresponding primary input
        if g < spec.inputs {
            fanins.push(g);
        }
        while fanins.len() < fanin_count {
            let pick = if rng.gen_bool(0.1) {
                rng.gen_range(0..node_count)
            } else {
                let lo = node_count.saturating_sub(spec.locality);
                rng.gen_range(lo..node_count)
            };
            // distinct fanins preferred; duplicates only once every
            // existing node is already tapped (tiny early gates of
            // narrow specs), so wide specs are byte-identical to
            // before this guard existed
            if !fanins.contains(&pick) || fanins.len() >= node_count {
                fanins.push(pick);
            }
        }
        netlist
            .add_gate(kind, fanins)
            .expect("generator only references earlier nodes");
    }

    // outputs: every sink gate plus random internal nodes up to the
    // requested count
    let fanouts = netlist.fanouts();
    let mut outputs: Vec<usize> = (spec.inputs..netlist.node_count())
        .filter(|&n| fanouts[n].is_empty())
        .collect();
    while outputs.len() < spec.outputs.min(netlist.gate_count()) {
        let pick = spec.inputs + rng.gen_range(0..netlist.gate_count());
        if !outputs.contains(&pick) {
            outputs.push(pick);
        }
    }
    for o in outputs {
        netlist.add_output(o).expect("output nodes exist");
    }
    netlist
}

fn random_kind(rng: &mut SmallRng) -> GateKind {
    // weights: NAND 25, NOR 15, AND 20, OR 15, XOR 8, XNOR 4, NOT 10, BUF 3
    let roll = rng.gen_range(0..100);
    match roll {
        0..=24 => GateKind::Nand,
        25..=39 => GateKind::Nor,
        40..=59 => GateKind::And,
        60..=74 => GateKind::Or,
        75..=82 => GateKind::Xor,
        83..=86 => GateKind::Xnor,
        87..=96 => GateKind::Not,
        _ => GateKind::Buf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atpg::{generate_uncompacted_test_set, AtpgConfig};
    use crate::fault::FaultList;
    use crate::fsim::FaultSimulator;

    #[test]
    fn generation_is_deterministic() {
        let spec = CircuitSpec::tiny();
        assert_eq!(random_circuit(&spec, 5), random_circuit(&spec, 5));
        assert_ne!(random_circuit(&spec, 5), random_circuit(&spec, 6));
    }

    #[test]
    fn spec_dimensions_are_respected() {
        let spec = CircuitSpec::mini();
        let n = random_circuit(&spec, 1);
        assert_eq!(n.input_count(), spec.inputs);
        assert_eq!(n.gate_count(), spec.gates);
        assert!(n.outputs().len() >= spec.outputs.min(spec.gates));
    }

    #[test]
    fn every_input_has_fanout() {
        let n = random_circuit(&CircuitSpec::mini(), 3);
        let fanouts = n.fanouts();
        for (i, fanout) in fanouts.iter().enumerate().take(n.input_count()) {
            assert!(!fanout.is_empty(), "input {i} is dangling");
        }
    }

    #[test]
    fn no_dead_logic() {
        let n = random_circuit(&CircuitSpec::tiny(), 9);
        let fanouts = n.fanouts();
        for (g, fanout) in fanouts.iter().enumerate().skip(n.input_count()) {
            let read = !fanout.is_empty();
            let is_output = n.outputs().contains(&g);
            assert!(read || is_output, "gate node {g} is dead");
        }
    }

    #[test]
    fn tiny_circuit_is_mostly_testable() {
        let n = random_circuit(&CircuitSpec::tiny(), 11);
        let outcome = generate_uncompacted_test_set(&n, &AtpgConfig::default(), 11);
        assert!(
            outcome.coverage() > 0.9,
            "coverage {} too low for a tiny circuit",
            outcome.coverage()
        );
        // and the produced cubes really achieve that coverage when
        // random-filled and fault-simulated
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        let mut rng = SmallRng::seed_from_u64(0);
        let patterns: Vec<Vec<bool>> = outcome
            .cubes
            .iter()
            .map(|c| c.random_fill(&mut rng).iter().collect())
            .collect();
        let cov = fsim.coverage(&faults, &patterns);
        assert!(cov > 0.75, "simulated coverage {cov} too low");
    }

    #[test]
    fn paper_like_specs_have_expected_interfaces() {
        assert_eq!(CircuitSpec::s9234_like().inputs, 247);
        assert_eq!(CircuitSpec::s13207_like().inputs, 700);
        assert_eq!(CircuitSpec::s15850_like().inputs, 611);
        assert_eq!(CircuitSpec::s38417_like().inputs, 1664);
        assert_eq!(CircuitSpec::s38584_like().inputs, 1464);
    }
}
