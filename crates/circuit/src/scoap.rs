//! SCOAP testability measures (Goldstein's controllability /
//! observability analysis).
//!
//! * `CC0(n)` / `CC1(n)` — the minimum "effort" (number of circuit
//!   lines that must be set) to drive node `n` to 0 / 1;
//! * `CO(n)` — the effort to propagate a change on `n` to a primary
//!   output.
//!
//! Classic uses: ranking faults by expected difficulty, and guiding
//! ATPG backtrace toward the cheapest input assignment — the optional
//! `scoap_guided` mode of [`AtpgConfig`](crate::AtpgConfig).

use crate::netlist::{GateKind, Netlist, NodeId};

/// Combinational SCOAP measures for every node of a netlist.
///
/// # Example
///
/// ```
/// use ss_circuit::{GateKind, Netlist, Scoap};
///
/// # fn main() -> Result<(), ss_circuit::NetlistError> {
/// let mut n = Netlist::new(2);
/// let g = n.add_gate(GateKind::And, vec![0, 1])?;
/// n.add_output(g)?;
/// let scoap = Scoap::analyze(&n);
/// // driving an AND to 1 needs both inputs: costlier than driving 0
/// assert!(scoap.cc1(g) > scoap.cc0(g));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

/// Cost representing "unreachable" (saturating arithmetic keeps sums
/// from wrapping).
const INF: u32 = u32::MAX / 4;

impl Scoap {
    /// Runs the analysis: one forward pass for controllability, one
    /// backward pass for observability.
    pub fn analyze(netlist: &Netlist) -> Self {
        let count = netlist.node_count();
        let mut cc0 = vec![INF; count];
        let mut cc1 = vec![INF; count];
        for i in 0..netlist.input_count() {
            cc0[i] = 1;
            cc1[i] = 1;
        }
        for (g, gate) in netlist.gates().iter().enumerate() {
            let node = netlist.input_count() + g;
            let (c0, c1) = gate_controllability(gate.kind, &gate.fanins, &cc0, &cc1);
            cc0[node] = c0;
            cc1[node] = c1;
        }

        let mut co = vec![INF; count];
        for &o in netlist.outputs() {
            co[o] = 0;
        }
        // walk gates in reverse topological order
        for (g, gate) in netlist.gates().iter().enumerate().rev() {
            let node = netlist.input_count() + g;
            if co[node] == INF {
                continue;
            }
            for (i, &fanin) in gate.fanins.iter().enumerate() {
                let through = observability_through(gate.kind, &gate.fanins, i, &cc0, &cc1);
                let candidate = co[node].saturating_add(through).saturating_add(1).min(INF);
                co[fanin] = co[fanin].min(candidate);
            }
        }

        Scoap { cc0, cc1, co }
    }

    /// 0-controllability of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cc0(&self, node: NodeId) -> u32 {
        self.cc0[node]
    }

    /// 1-controllability of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cc1(&self, node: NodeId) -> u32 {
        self.cc1[node]
    }

    /// Controllability toward a specific value.
    pub fn cc(&self, node: NodeId, value: bool) -> u32 {
        if value {
            self.cc1[node]
        } else {
            self.cc0[node]
        }
    }

    /// Observability of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn co(&self, node: NodeId) -> u32 {
        self.co[node]
    }

    /// Combined detect difficulty of a stuck-at fault on `node`:
    /// controllability of the activation value plus observability.
    pub fn fault_difficulty(&self, node: NodeId, stuck_value: bool) -> u32 {
        self.cc(node, !stuck_value)
            .saturating_add(self.co[node])
            .min(INF)
    }
}

fn sum_cc(fanins: &[NodeId], table: &[u32]) -> u32 {
    fanins
        .iter()
        .fold(0u32, |acc, &f| acc.saturating_add(table[f]))
        .min(INF)
}

fn min_cc(fanins: &[NodeId], table: &[u32]) -> u32 {
    fanins.iter().map(|&f| table[f]).min().unwrap_or(INF)
}

/// (CC0, CC1) of a gate output from its fanin controllabilities.
fn gate_controllability(kind: GateKind, fanins: &[NodeId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let bump = |v: u32| v.saturating_add(1).min(INF);
    match kind {
        GateKind::And => (bump(min_cc(fanins, cc0)), bump(sum_cc(fanins, cc1))),
        GateKind::Nand => (bump(sum_cc(fanins, cc1)), bump(min_cc(fanins, cc0))),
        GateKind::Or => (bump(sum_cc(fanins, cc0)), bump(min_cc(fanins, cc1))),
        GateKind::Nor => (bump(min_cc(fanins, cc1)), bump(sum_cc(fanins, cc0))),
        GateKind::Xor | GateKind::Xnor => {
            // cheapest parity assignments; exact for 2 inputs, a sound
            // approximation beyond
            let even = cheapest_parity(fanins, cc0, cc1, false);
            let odd = cheapest_parity(fanins, cc0, cc1, true);
            if kind == GateKind::Xor {
                (bump(even), bump(odd))
            } else {
                (bump(odd), bump(even))
            }
        }
        GateKind::Not => (bump(cc1[fanins[0]]), bump(cc0[fanins[0]])),
        GateKind::Buf => (bump(cc0[fanins[0]]), bump(cc1[fanins[0]])),
    }
}

/// Cheapest way to give `fanins` a parity of ones equal to `odd`.
fn cheapest_parity(fanins: &[NodeId], cc0: &[u32], cc1: &[u32], odd: bool) -> u32 {
    // dynamic programming over fanins: cost[parity]
    let mut cost = [0u32, INF]; // parity 0 achievable at 0 cost with no inputs
    for &f in fanins {
        let next0 = (cost[0].saturating_add(cc0[f])).min(cost[1].saturating_add(cc1[f]));
        let next1 = (cost[1].saturating_add(cc0[f])).min(cost[0].saturating_add(cc1[f]));
        cost = [next0.min(INF), next1.min(INF)];
    }
    cost[usize::from(odd)]
}

/// Cost of making every *other* fanin of the gate non-controlling (so
/// a change on fanin `through` propagates).
fn observability_through(
    kind: GateKind,
    fanins: &[NodeId],
    through: usize,
    cc0: &[u32],
    cc1: &[u32],
) -> u32 {
    let mut cost = 0u32;
    for (i, &f) in fanins.iter().enumerate() {
        if i == through {
            continue;
        }
        let c = match kind {
            GateKind::And | GateKind::Nand => cc1[f],
            GateKind::Or | GateKind::Nor => cc0[f],
            // parity gates propagate regardless; side inputs just need
            // *some* value — charge the cheaper one
            GateKind::Xor | GateKind::Xnor => cc0[f].min(cc1[f]),
            GateKind::Not | GateKind::Buf => 0,
        };
        cost = cost.saturating_add(c);
    }
    cost.min(INF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn chain_of_ands(depth: usize) -> (Netlist, Vec<NodeId>) {
        let mut n = Netlist::new(depth + 1);
        let mut nodes = Vec::new();
        let mut prev = 0;
        for i in 0..depth {
            let g = n.add_gate(GateKind::And, vec![prev, i + 1]).unwrap();
            nodes.push(g);
            prev = g;
        }
        n.add_output(prev).unwrap();
        (n, nodes)
    }

    #[test]
    fn inputs_have_unit_controllability() {
        let (n, _) = chain_of_ands(3);
        let s = Scoap::analyze(&n);
        for i in 0..n.input_count() {
            assert_eq!(s.cc0(i), 1);
            assert_eq!(s.cc1(i), 1);
        }
    }

    #[test]
    fn and_chain_cc1_grows_linearly() {
        let (n, nodes) = chain_of_ands(4);
        let s = Scoap::analyze(&n);
        // CC1 of the i-th AND needs i+2 ones
        let mut prev = 0;
        for &g in &nodes {
            assert!(s.cc1(g) > s.cc0(g), "AND is harder to set to 1");
            assert!(s.cc1(g) > prev, "CC1 must grow along the chain");
            prev = s.cc1(g);
        }
    }

    #[test]
    fn observability_decreases_toward_outputs() {
        let (n, nodes) = chain_of_ands(4);
        let s = Scoap::analyze(&n);
        let last = *nodes.last().unwrap();
        assert_eq!(s.co(last), 0, "outputs are directly observable");
        // earlier gates are harder to observe
        for pair in nodes.windows(2) {
            assert!(s.co(pair[0]) >= s.co(pair[1]));
        }
    }

    #[test]
    fn inverter_swaps_controllabilities() {
        let mut n = Netlist::new(1);
        let inv = n.add_gate(GateKind::Not, vec![0]).unwrap();
        n.add_output(inv).unwrap();
        let s = Scoap::analyze(&n);
        assert_eq!(s.cc0(inv), s.cc1(0) + 1);
        assert_eq!(s.cc1(inv), s.cc0(0) + 1);
    }

    #[test]
    fn xor_parity_costs() {
        let mut n = Netlist::new(2);
        let x = n.add_gate(GateKind::Xor, vec![0, 1]).unwrap();
        n.add_output(x).unwrap();
        let s = Scoap::analyze(&n);
        // both polarities need two assignments
        assert_eq!(s.cc0(x), 3);
        assert_eq!(s.cc1(x), 3);
    }

    #[test]
    fn unobservable_node_has_infinite_co() {
        let mut n = Netlist::new(2);
        let dead = n.add_gate(GateKind::And, vec![0, 1]).unwrap();
        let live = n.add_gate(GateKind::Or, vec![0, 1]).unwrap();
        n.add_output(live).unwrap();
        let s = Scoap::analyze(&n);
        assert!(s.co(dead) >= INF);
        assert_eq!(s.co(live), 0);
    }

    #[test]
    fn fault_difficulty_combines_cc_and_co() {
        let (n, nodes) = chain_of_ands(3);
        let s = Scoap::analyze(&n);
        let first = nodes[0];
        let last = *nodes.last().unwrap();
        // sa0 on the last AND: activate 1 (expensive) but observe free
        // sa0 on the first AND: activate 1 (cheap) but observe costly
        assert!(s.fault_difficulty(last, false) >= s.cc1(last));
        assert!(s.fault_difficulty(first, false) >= s.co(first));
    }
}
