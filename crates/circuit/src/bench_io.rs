//! ISCAS'89 `.bench` netlist reading and writing.
//!
//! The `.bench` format is the lingua franca of the ISCAS'85/'89
//! benchmark suites and of academic ATPG tools (HITEC, Atalanta, ...):
//!
//! ```text
//! # s27 (fragment)
//! INPUT(G0)
//! INPUT(G1)
//! OUTPUT(G17)
//! G5  = DFF(G10)
//! G10 = NAND(G0, G14)
//! G14 = NOT(G1)
//! G17 = NOR(G5, G10)
//! ```
//!
//! [`parse_bench`] reads this grammar into the workspace's full-scan
//! view: every `DFF` is broken at the flip-flop, its **output**
//! becoming a pseudo-primary input (a scan cell, appended after the
//! declared `INPUT`s) and its **input** a pseudo-primary output
//! (appended after the declared `OUTPUT`s). The result is exactly the
//! combinational [`Netlist`] the rest of the workspace operates on —
//! netlist inputs are the positions of a test cube.
//!
//! [`write_bench`] serialises a (combinational) [`Netlist`] back to
//! `.bench` text with canonical `I<i>` / `N<id>` signal names; gates
//! are emitted in topological (node-id) order. The pair round-trips:
//! `parse_bench(&write_bench(&n, ...))` reconstructs a structurally
//! identical netlist (same gate list, same fanin ids, same outputs),
//! a property pinned by this crate's proptests.
//!
//! Parsing **never panics**: every malformed input yields a
//! [`BenchParseError`] carrying the 1-based line and column of the
//! offending token plus a specific [`BenchErrorKind`].

use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

use crate::netlist::{GateKind, Netlist, NodeId};

/// What went wrong while parsing a `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenchErrorKind {
    /// The file contained no statements at all (only blank lines and
    /// comments, or nothing).
    EmptyFile,
    /// A line ended in the middle of a construct (e.g. a missing `)`
    /// or a fanin list cut short).
    Truncated,
    /// A character that cannot appear at this position (bad signal
    /// name characters, stray punctuation, trailing junk).
    BadCharacter(char),
    /// A directive other than `INPUT(..)` / `OUTPUT(..)`.
    UnknownDirective(String),
    /// A gate function name that is not one of
    /// `AND OR NAND NOR XOR XNOR NOT BUF BUFF DFF`.
    UnknownGate(String),
    /// A signal referenced (as a fanin or an `OUTPUT`) but never
    /// defined by an `INPUT` line or a gate assignment.
    UndefinedSignal(String),
    /// A signal driven twice (two assignments, or an assignment to a
    /// declared `INPUT`).
    DuplicateDefinition(String),
    /// The combinational logic (after breaking every `DFF`) contains a
    /// cycle through the named signal.
    CombinationalCycle(String),
    /// A gate with an impossible fanin count (`NOT`/`BUF`/`DFF` need
    /// exactly one, every other kind at least two).
    BadFaninCount {
        /// The gate's output signal name.
        gate: String,
        /// The gate function as written.
        kind: String,
        /// Fanins supplied.
        got: usize,
    },
}

impl fmt::Display for BenchErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchErrorKind::EmptyFile => write!(f, "empty .bench file (no statements)"),
            BenchErrorKind::Truncated => write!(f, "line ends in the middle of a construct"),
            BenchErrorKind::BadCharacter(c) => write!(f, "unexpected character {c:?}"),
            BenchErrorKind::UnknownDirective(d) => {
                write!(f, "unknown directive {d:?} (expected INPUT or OUTPUT)")
            }
            BenchErrorKind::UnknownGate(g) => write!(f, "unknown gate function {g:?}"),
            BenchErrorKind::UndefinedSignal(s) => write!(f, "signal {s:?} is never defined"),
            BenchErrorKind::DuplicateDefinition(s) => {
                write!(f, "signal {s:?} is defined more than once")
            }
            BenchErrorKind::CombinationalCycle(s) => {
                write!(f, "combinational cycle through signal {s:?}")
            }
            BenchErrorKind::BadFaninCount { gate, kind, got } => {
                write!(f, "gate {gate:?}: {kind} cannot take {got} fanin(s)")
            }
        }
    }
}

/// A `.bench` parse failure: the error kind plus the 1-based line and
/// column where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (character position within the line).
    pub column: usize,
    /// What went wrong.
    pub kind: BenchErrorKind,
}

impl fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.column, self.kind
        )
    }
}

impl Error for BenchParseError {}

/// A parsed `.bench` circuit: the full-scan combinational [`Netlist`]
/// plus the signal-name metadata needed to relate netlist node ids
/// back to the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCircuit {
    /// The combinational netlist (DFFs broken into pseudo-PI/PO pairs).
    pub netlist: Netlist,
    /// Name of every netlist input, in node-id order: the declared
    /// `INPUT`s first, then one pseudo-input per `DFF` output.
    pub input_names: Vec<String>,
    /// Name of every gate node, indexed by gate position (gate `g`
    /// drives node `input_names.len() + g`).
    pub gate_names: Vec<String>,
    /// Name of every netlist output, parallel to
    /// [`Netlist::outputs`]: the declared `OUTPUT`s first, then one
    /// pseudo-output per `DFF` input (named after the driving signal).
    pub output_names: Vec<String>,
    /// How many of the inputs were declared `INPUT(..)` (true primary
    /// inputs); the remaining `dff_count` are scan pseudo-inputs.
    pub pi_count: usize,
    /// Number of DFFs broken into scan cells.
    pub dff_count: usize,
}

/// The gate functions `.bench` can name on the right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BenchKind {
    Plain(GateKind),
    Dff,
}

fn lookup_kind(name: &str) -> Option<BenchKind> {
    let upper = name.to_ascii_uppercase();
    Some(match upper.as_str() {
        "AND" => BenchKind::Plain(GateKind::And),
        "OR" => BenchKind::Plain(GateKind::Or),
        "NAND" => BenchKind::Plain(GateKind::Nand),
        "NOR" => BenchKind::Plain(GateKind::Nor),
        "XOR" => BenchKind::Plain(GateKind::Xor),
        "XNOR" => BenchKind::Plain(GateKind::Xnor),
        "NOT" => BenchKind::Plain(GateKind::Not),
        "BUF" | "BUFF" => BenchKind::Plain(GateKind::Buf),
        "DFF" => BenchKind::Dff,
        _ => return None,
    })
}

fn kind_to_bench(kind: GateKind) -> &'static str {
    match kind {
        GateKind::And => "AND",
        GateKind::Or => "OR",
        GateKind::Nand => "NAND",
        GateKind::Nor => "NOR",
        GateKind::Xor => "XOR",
        GateKind::Xnor => "XNOR",
        GateKind::Not => "NOT",
        GateKind::Buf => "BUFF",
    }
}

/// A source location (1-based line, 1-based column).
type Loc = (usize, usize);

fn err(loc: Loc, kind: BenchErrorKind) -> BenchParseError {
    BenchParseError {
        line: loc.0,
        column: loc.1,
        kind,
    }
}

/// One syntactic statement of a `.bench` file.
#[derive(Debug)]
enum Stmt {
    Input {
        name: String,
        loc: Loc,
    },
    Output {
        name: String,
        loc: Loc,
    },
    Gate {
        name: String,
        kind: BenchKind,
        fanins: Vec<(String, Loc)>,
        loc: Loc,
    },
}

/// A cursor over one line's characters with 1-based column tracking
/// (columns count characters, not bytes, so multi-byte signals keep
/// every error kind's column consistent).
struct LineScanner<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line_no: usize,
    consumed: usize,
}

impl<'a> LineScanner<'a> {
    fn new(line: &'a str, line_no: usize) -> Self {
        LineScanner {
            chars: line.chars().peekable(),
            line_no,
            consumed: 0,
        }
    }

    /// Column of the next unread character (or one past the end).
    fn column(&self) -> usize {
        self.consumed + 1
    }

    fn loc(&self) -> Loc {
        (self.line_no, self.column())
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c.is_some() {
            self.consumed += 1;
        }
        c
    }

    /// `true` for characters allowed in signal and function names.
    fn is_name_char(c: char) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, '_' | '[' | ']' | '.' | '$')
    }

    /// Reads a non-empty identifier; errors with the violating
    /// character (or [`BenchErrorKind::Truncated`] at end of line).
    fn ident(&mut self) -> Result<(String, Loc), BenchParseError> {
        self.skip_ws();
        let loc = self.loc();
        let mut name = String::new();
        while matches!(self.chars.peek(), Some(&c) if Self::is_name_char(c)) {
            name.push(self.bump().expect("peeked"));
        }
        if name.is_empty() {
            return match self.peek() {
                Some(c) => Err(err(loc, BenchErrorKind::BadCharacter(c))),
                None => Err(err(loc, BenchErrorKind::Truncated)),
            };
        }
        Ok((name, loc))
    }

    /// Consumes one expected punctuation character.
    fn expect(&mut self, want: char) -> Result<(), BenchParseError> {
        self.skip_ws();
        let loc = self.loc();
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(err(loc, BenchErrorKind::BadCharacter(c))),
            None => Err(err(loc, BenchErrorKind::Truncated)),
        }
    }

    /// Errors unless only whitespace remains.
    fn expect_end(&mut self) -> Result<(), BenchParseError> {
        self.skip_ws();
        let loc = self.loc();
        match self.peek() {
            None => Ok(()),
            Some(c) => Err(err(loc, BenchErrorKind::BadCharacter(c))),
        }
    }

    /// Parses a parenthesised, comma-separated identifier list:
    /// `( a, b, ... )` with at least one element.
    fn paren_list(&mut self) -> Result<Vec<(String, Loc)>, BenchParseError> {
        self.expect('(')?;
        let mut items = vec![self.ident()?];
        loop {
            self.skip_ws();
            let loc = self.loc();
            match self.bump() {
                Some(')') => return Ok(items),
                Some(',') => items.push(self.ident()?),
                Some(c) => return Err(err(loc, BenchErrorKind::BadCharacter(c))),
                None => return Err(err(loc, BenchErrorKind::Truncated)),
            }
        }
    }
}

/// Tokenises one non-blank, non-comment line into a [`Stmt`].
fn parse_line(line: &str, line_no: usize) -> Result<Stmt, BenchParseError> {
    let mut s = LineScanner::new(line, line_no);
    let (first, first_loc) = s.ident()?;
    s.skip_ws();
    match s.peek() {
        // directive form: INPUT(x) / OUTPUT(x) — exactly one signal,
        // so a comma (or anything else before `)`) errors at its own
        // column
        Some('(') => {
            s.expect('(')?;
            let (name, loc) = s.ident()?;
            s.expect(')')?;
            s.expect_end()?;
            match first.to_ascii_uppercase().as_str() {
                "INPUT" => Ok(Stmt::Input { name, loc }),
                "OUTPUT" => Ok(Stmt::Output { name, loc }),
                _ => Err(err(first_loc, BenchErrorKind::UnknownDirective(first))),
            }
        }
        // assignment form: name = KIND(a, b, ...)
        Some('=') => {
            s.bump();
            let (kind_text, kind_loc) = s.ident()?;
            let kind = lookup_kind(&kind_text)
                .ok_or_else(|| err(kind_loc, BenchErrorKind::UnknownGate(kind_text.clone())))?;
            let fanins = s.paren_list()?;
            s.expect_end()?;
            let unary = matches!(kind, BenchKind::Dff | BenchKind::Plain(GateKind::Not))
                || matches!(kind, BenchKind::Plain(GateKind::Buf));
            if (unary && fanins.len() != 1) || (!unary && fanins.len() < 2) {
                return Err(err(
                    first_loc,
                    BenchErrorKind::BadFaninCount {
                        gate: first,
                        kind: kind_text,
                        got: fanins.len(),
                    },
                ));
            }
            Ok(Stmt::Gate {
                name: first,
                kind,
                fanins,
                loc: first_loc,
            })
        }
        Some(c) => {
            let loc = s.loc();
            Err(err(loc, BenchErrorKind::BadCharacter(c)))
        }
        None => Err(err(s.loc(), BenchErrorKind::Truncated)),
    }
}

/// Parses ISCAS'89 `.bench` text into a full-scan [`BenchCircuit`].
///
/// Grammar: `#` starts a comment, blank lines are skipped, and every
/// other line is `INPUT(sig)`, `OUTPUT(sig)` or
/// `sig = FUNC(sig, sig, ...)` with `FUNC` one of
/// `AND OR NAND NOR XOR XNOR NOT BUF BUFF DFF` (case-insensitive).
/// Gates may be defined in any textual order; the parser topologically
/// sorts them (stably, by definition order) into the netlist's gate
/// list. Every `DFF` is broken into a scan pseudo-input / pseudo-output
/// pair (the DFF output joins the netlist inputs after the declared
/// `INPUT`s; the DFF's data input joins the outputs).
///
/// # Errors
///
/// Returns a [`BenchParseError`] with line/column for any malformed
/// input; this function never panics.
///
/// # Example
///
/// ```
/// use ss_circuit::parse_bench;
///
/// let src = "
/// INPUT(A)
/// INPUT(B)
/// OUTPUT(Q)
/// S = DFF(Q)
/// Q = XOR(A, N1)
/// N1 = NAND(B, S)
/// ";
/// let circuit = parse_bench(src)?;
/// assert_eq!(circuit.pi_count, 2);
/// assert_eq!(circuit.dff_count, 1);       // S became a scan cell
/// assert_eq!(circuit.netlist.input_count(), 3);
/// assert_eq!(circuit.netlist.outputs().len(), 2); // Q + DFF input
/// # Ok::<(), ss_circuit::BenchParseError>(())
/// ```
pub fn parse_bench(text: &str) -> Result<BenchCircuit, BenchParseError> {
    // pass 1: tokenise
    let mut stmts = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if line.trim().is_empty() {
            continue;
        }
        stmts.push(parse_line(line, i + 1)?);
    }
    if stmts.is_empty() {
        return Err(err((1, 1), BenchErrorKind::EmptyFile));
    }

    // pass 2: collect definitions. Node ids: declared INPUTs first (in
    // order), then one pseudo-input per DFF (in definition order), then
    // the combinational gates in stable topological order.
    struct GateDef<'a> {
        name: &'a str,
        kind: GateKind,
        fanins: &'a [(String, Loc)],
        loc: Loc,
    }
    let mut input_names: Vec<String> = Vec::new();
    let mut gates: Vec<GateDef<'_>> = Vec::new();
    let mut dffs: Vec<(&String, &(String, Loc))> = Vec::new();
    let mut outputs: Vec<(&String, Loc)> = Vec::new();
    // signal -> Driver
    #[derive(Clone, Copy)]
    enum Driver {
        Input(usize),
        Gate(usize),
        DffOut(usize),
    }
    let mut drivers: HashMap<&str, Driver> = HashMap::new();
    for stmt in &stmts {
        match stmt {
            Stmt::Input { name, loc } => {
                if drivers.contains_key(name.as_str()) {
                    return Err(err(*loc, BenchErrorKind::DuplicateDefinition(name.clone())));
                }
                drivers.insert(name.as_str(), Driver::Input(input_names.len()));
                input_names.push(name.clone());
            }
            Stmt::Output { name, loc } => outputs.push((name, *loc)),
            Stmt::Gate {
                name,
                kind,
                fanins,
                loc,
            } => {
                if drivers.contains_key(name.as_str()) {
                    return Err(err(*loc, BenchErrorKind::DuplicateDefinition(name.clone())));
                }
                match kind {
                    BenchKind::Dff => {
                        drivers.insert(name.as_str(), Driver::DffOut(dffs.len()));
                        dffs.push((name, &fanins[0]));
                    }
                    BenchKind::Plain(k) => {
                        drivers.insert(name.as_str(), Driver::Gate(gates.len()));
                        gates.push(GateDef {
                            name,
                            kind: *k,
                            fanins,
                            loc: *loc,
                        });
                    }
                }
            }
        }
    }

    let pi_count = input_names.len();
    let dff_count = dffs.len();
    let input_count = pi_count + dff_count;
    for (name, _) in &dffs {
        input_names.push((*name).clone());
    }

    // resolve every gate fanin now so undefined signals are reported
    // even when the gate is unreachable; build the gate-on-gate
    // dependency lists for the topological sort
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); gates.len()]; // gate -> gates it feeds
    let mut indegree: Vec<usize> = vec![0; gates.len()];
    for (g, gate) in gates.iter().enumerate() {
        for (fanin, floc) in gate.fanins.iter() {
            match drivers.get(fanin.as_str()) {
                None => {
                    return Err(err(*floc, BenchErrorKind::UndefinedSignal(fanin.clone())));
                }
                Some(Driver::Gate(src)) => {
                    deps[*src].push(g);
                    indegree[g] += 1;
                }
                Some(Driver::Input(_)) | Some(Driver::DffOut(_)) => {}
            }
        }
    }
    // DFF data inputs must also resolve
    for (_, (fanin, floc)) in &dffs {
        if !drivers.contains_key(fanin.as_str()) {
            return Err(err(*floc, BenchErrorKind::UndefinedSignal(fanin.clone())));
        }
    }

    // stable Kahn topological sort: always emit the ready gate with the
    // smallest definition index, so an already-ordered file (e.g. the
    // output of `write_bench`) keeps its gate order exactly
    let mut heap: BinaryHeap<std::cmp::Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(g, _)| std::cmp::Reverse(g))
        .collect();
    let mut order = Vec::with_capacity(gates.len());
    while let Some(std::cmp::Reverse(g)) = heap.pop() {
        order.push(g);
        for &next in &deps[g] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                heap.push(std::cmp::Reverse(next));
            }
        }
    }
    if order.len() < gates.len() {
        // every unplaced gate lies on or downstream of a cycle; walk
        // unplaced predecessors until a gate repeats — that one is on
        // the cycle itself
        let start = (0..gates.len())
            .find(|&g| indegree[g] > 0)
            .expect("some gate is unplaced");
        let mut seen = vec![false; gates.len()];
        let mut g = start;
        while !seen[g] {
            seen[g] = true;
            g = gates[g]
                .fanins
                .iter()
                .find_map(|(fanin, _)| match drivers.get(fanin.as_str()) {
                    Some(Driver::Gate(src)) if indegree[*src] > 0 => Some(*src),
                    _ => None,
                })
                .expect("an unplaced gate has an unplaced gate fanin");
        }
        return Err(err(
            gates[g].loc,
            BenchErrorKind::CombinationalCycle(gates[g].name.to_string()),
        ));
    }

    // node id of each parsed entity
    let node_of = |driver: Driver, topo_pos: &[usize]| -> NodeId {
        match driver {
            Driver::Input(i) => i,
            Driver::DffOut(d) => pi_count + d,
            Driver::Gate(g) => input_count + topo_pos[g],
        }
    };
    let mut topo_pos = vec![0usize; gates.len()];
    for (pos, &g) in order.iter().enumerate() {
        topo_pos[g] = pos;
    }

    let mut netlist = Netlist::new(input_count);
    let mut gate_names = Vec::with_capacity(gates.len());
    for &g in &order {
        let gate = &gates[g];
        let ids: Vec<NodeId> = gate
            .fanins
            .iter()
            .map(|(fanin, _)| node_of(drivers[fanin.as_str()], &topo_pos))
            .collect();
        netlist
            .add_gate(gate.kind, ids)
            .expect("fanin counts and ordering were validated");
        gate_names.push(gate.name.to_string());
    }

    let mut output_names = Vec::with_capacity(outputs.len() + dffs.len());
    for (name, loc) in outputs {
        let driver = *drivers
            .get(name.as_str())
            .ok_or_else(|| err(loc, BenchErrorKind::UndefinedSignal(name.clone())))?;
        netlist
            .add_output(node_of(driver, &topo_pos))
            .expect("resolved drivers are in range");
        output_names.push(name.clone());
    }
    for (_, (fanin, _)) in &dffs {
        netlist
            .add_output(node_of(drivers[fanin.as_str()], &topo_pos))
            .expect("resolved drivers are in range");
        output_names.push(fanin.clone());
    }

    Ok(BenchCircuit {
        netlist,
        input_names,
        gate_names,
        output_names,
        pi_count,
        dff_count,
    })
}

/// Serialises a combinational [`Netlist`] to `.bench` text.
///
/// Canonical naming: input `i` is `I<i>`, the gate driving node `id`
/// is `N<id>`. Inputs are declared in id order, then outputs, then the
/// gates in topological (id) order — so
/// [`parse_bench`]`(&write_bench(&n, ..))` reconstructs a structurally
/// identical netlist.
///
/// The header comment records `name` plus the node counts; it is
/// ignored by the parser.
pub fn write_bench(netlist: &Netlist, name: &str) -> String {
    let node_name = |id: NodeId| -> String {
        if netlist.is_input(id) {
            format!("I{id}")
        } else {
            format!("N{id}")
        }
    };
    let mut out = String::new();
    out.push_str(&format!("# {name}\n"));
    out.push_str(&format!(
        "# {} inputs, {} gates, {} outputs\n",
        netlist.input_count(),
        netlist.gate_count(),
        netlist.outputs().len()
    ));
    for i in 0..netlist.input_count() {
        out.push_str(&format!("INPUT(I{i})\n"));
    }
    for &o in netlist.outputs() {
        out.push_str(&format!("OUTPUT({})\n", node_name(o)));
    }
    for (g, gate) in netlist.gates().iter().enumerate() {
        let id = netlist.input_count() + g;
        let fanins: Vec<String> = gate.fanins.iter().map(|&f| node_name(f)).collect();
        out.push_str(&format!(
            "N{id} = {}({})\n",
            kind_to_bench(gate.kind),
            fanins.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{random_circuit, CircuitSpec};

    const S27ISH: &str = "
# toy sequential core
INPUT(A)
INPUT(B)
INPUT(C)
OUTPUT(Q)
S1 = DFF(N2)
N1 = NAND(A, S1)   # trailing comment
N2 = NOR(N1, B)
Q  = XOR(N2, C)
";

    #[test]
    fn parses_a_sequential_core_into_the_scan_view() {
        let c = parse_bench(S27ISH).unwrap();
        assert_eq!(c.pi_count, 3);
        assert_eq!(c.dff_count, 1);
        assert_eq!(c.netlist.input_count(), 4, "3 PIs + 1 scan cell");
        assert_eq!(c.netlist.gate_count(), 3);
        // outputs: declared Q, then the DFF's data input N2
        assert_eq!(c.output_names, vec!["Q".to_string(), "N2".to_string()]);
        assert_eq!(c.netlist.outputs().len(), 2);
        assert_eq!(c.input_names, vec!["A", "B", "C", "S1"]);
        // gate order is topological: N1 (reads A,S1), N2, Q
        assert_eq!(c.gate_names, vec!["N1", "N2", "Q"]);
    }

    #[test]
    fn out_of_order_definitions_are_sorted() {
        let src = "INPUT(A)\nOUTPUT(Z)\nZ = NOT(Y)\nY = BUFF(A)\n";
        let c = parse_bench(src).unwrap();
        assert_eq!(c.gate_names, vec!["Y", "Z"], "Y must be elaborated first");
        let v = c.netlist.eval(&[true]);
        assert_eq!(v, vec![false]);
    }

    #[test]
    fn case_insensitive_keywords() {
        let src = "input(a)\ninput(b)\noutput(z)\nz = nand(a, b)\n";
        let c = parse_bench(src).unwrap();
        assert_eq!(c.netlist.gate_count(), 1);
        assert_eq!(c.netlist.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn writer_emits_parseable_text() {
        let n = random_circuit(&CircuitSpec::tiny(), 3);
        let text = write_bench(&n, "tiny-3");
        let parsed = parse_bench(&text).unwrap();
        assert_eq!(parsed.netlist, n);
        assert_eq!(parsed.pi_count, n.input_count());
        assert_eq!(parsed.dff_count, 0);
    }

    #[test]
    fn roundtrip_is_exact_for_generated_circuits() {
        for seed in [1, 7, 42] {
            let n = random_circuit(&CircuitSpec::mini(), seed);
            let parsed = parse_bench(&write_bench(&n, "mini")).unwrap();
            assert_eq!(parsed.netlist, n, "seed {seed}");
        }
    }

    /// The adversarial table: every malformed input maps to a
    /// *specific* error kind at a plausible location — never a panic.
    #[test]
    fn malformed_inputs_yield_specific_errors() {
        use BenchErrorKind as K;
        let cases: &[(&str, K)] = &[
            ("", K::EmptyFile),
            ("\n\n# only comments\n", K::EmptyFile),
            ("   \n\t\n", K::EmptyFile),
            // truncated constructs
            ("INPUT(", K::Truncated),
            ("INPUT(A", K::Truncated),
            ("G1 = AND(A, ", K::Truncated),
            ("G1 = AND(A, B", K::Truncated),
            ("G1 =", K::Truncated),
            ("G1 = AND", K::Truncated),
            ("G1", K::Truncated),
            // bad characters
            ("INPUT(A)\nG! = AND(A, A)", K::BadCharacter('!')),
            ("INPUT(A)\nG1 = AND(A; A)", K::BadCharacter(';')),
            ("INPUT(A)\nG1 = AND(A, A) junk", K::BadCharacter('j')),
            ("INPUT(A) extra", K::BadCharacter('e')),
            ("INPUT()", K::BadCharacter(')')),
            ("INPUT(A, B)", K::BadCharacter(',')),
            // unknown names
            ("FOO(A)", K::UnknownDirective("FOO".into())),
            ("INPUT(A)\nG1 = NANDD(A, A)", K::UnknownGate("NANDD".into())),
            // semantic errors
            (
                "INPUT(A)\nOUTPUT(G1)\nG1 = AND(A, B)",
                K::UndefinedSignal("B".into()),
            ),
            ("INPUT(A)\nOUTPUT(Z)", K::UndefinedSignal("Z".into())),
            (
                "INPUT(A)\nD = DFF(Q)\nOUTPUT(D)",
                K::UndefinedSignal("Q".into()),
            ),
            ("INPUT(A)\nINPUT(A)", K::DuplicateDefinition("A".into())),
            ("INPUT(A)\nA = NOT(A)", K::DuplicateDefinition("A".into())),
            (
                "INPUT(A)\nG1 = NOT(A)\nG1 = BUFF(A)",
                K::DuplicateDefinition("G1".into()),
            ),
            // combinational cycles (a DFF in the loop is fine; a pure
            // combinational loop is not)
            (
                "INPUT(A)\nX = AND(A, Y)\nY = NOT(X)\nOUTPUT(Y)",
                K::CombinationalCycle("X".into()),
            ),
            ("X = NOT(X)\nOUTPUT(X)", K::CombinationalCycle("X".into())),
            // fanin arity
            (
                "INPUT(A)\nG1 = NOT(A, A)",
                K::BadFaninCount {
                    gate: "G1".into(),
                    kind: "NOT".into(),
                    got: 2,
                },
            ),
            (
                "INPUT(A)\nG1 = DFF(A, A)",
                K::BadFaninCount {
                    gate: "G1".into(),
                    kind: "DFF".into(),
                    got: 2,
                },
            ),
            (
                "INPUT(A)\nG1 = AND(A)",
                K::BadFaninCount {
                    gate: "G1".into(),
                    kind: "AND".into(),
                    got: 1,
                },
            ),
        ];
        for (src, want) in cases {
            match parse_bench(src) {
                Err(e) => assert_eq!(&e.kind, want, "input {src:?} gave {e}"),
                Ok(_) => panic!("input {src:?} unexpectedly parsed"),
            }
        }
    }

    #[test]
    fn dff_feedback_loops_are_legal() {
        // classic counter bit: the DFF feeds itself through an inverter
        let src = "OUTPUT(Q)\nQ = DFF(NQ)\nNQ = NOT(Q)\n";
        let c = parse_bench(src).unwrap();
        assert_eq!(c.pi_count, 0);
        assert_eq!(c.dff_count, 1);
        assert_eq!(c.netlist.input_count(), 1);
        // scan cell Q=0 -> NQ=1
        assert_eq!(c.netlist.eval(&[false]), vec![false, true]);
    }

    #[test]
    fn error_locations_are_precise() {
        let e = parse_bench("INPUT(A)\nG1 = AND(A; A)").unwrap_err();
        assert_eq!((e.line, e.column), (2, 11));
        // a second directive argument errors at the comma itself
        let e = parse_bench("INPUT(A, B)").unwrap_err();
        assert_eq!((e.line, e.column), (1, 8));
        // columns count characters, not bytes: the two-byte no-break
        // space before the bad char must not shift its column
        let e = parse_bench("INPUT(\u{A0}\u{E9})").unwrap_err();
        assert_eq!(e.kind, BenchErrorKind::BadCharacter('\u{E9}'));
        assert_eq!((e.line, e.column), (1, 8));
        let e = parse_bench("INPUT(A)\n\nQ = NAND(A, zz)\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.kind, BenchErrorKind::UndefinedSignal("zz".into()));
        // display mentions both coordinates
        assert!(e.to_string().starts_with("line 3, column "));
    }

    #[test]
    fn duplicate_outputs_are_allowed() {
        let src = "INPUT(A)\nOUTPUT(Z)\nOUTPUT(Z)\nZ = NOT(A)\n";
        let c = parse_bench(src).unwrap();
        assert_eq!(c.netlist.outputs().len(), 2);
    }
}
