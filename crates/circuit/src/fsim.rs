//! Parallel-pattern single-fault simulation.
//!
//! Simulates 64 test patterns per machine word. For each fault only the
//! transitive fanout cone of the faulted node is re-evaluated, with the
//! node forced to its stuck value; a fault is detected by a pattern
//! when any primary output differs from the good machine.
//!
//! The primary entry points consume bit-sliced
//! [`PackedPatterns`](ss_gf2::PackedPatterns) blocks
//! ([`run_packed`](FaultSimulator::run_packed) /
//! [`coverage_packed`](FaultSimulator::coverage_packed)), dropping a
//! fault as soon as some block detects it, so a list of `N` patterns
//! costs `ceil(N/64)` good-machine evaluations. The `Vec<bool>` entry
//! points pack their input and delegate; the one-pattern-at-a-time
//! path survives as [`run_scalar`](FaultSimulator::run_scalar), the
//! reference oracle the property tests pin the word kernel against.

use ss_gf2::PackedPatterns;

use crate::fault::{Fault, FaultList};
use crate::netlist::Netlist;

/// A fault simulator bound to a netlist.
///
/// # Example
///
/// ```
/// use ss_circuit::{Fault, FaultList, FaultSimulator, GateKind, Netlist, StuckAt};
///
/// # fn main() -> Result<(), ss_circuit::NetlistError> {
/// let mut n = Netlist::new(2);
/// let g = n.add_gate(GateKind::And, vec![0, 1])?;
/// n.add_output(g)?;
/// let fsim = FaultSimulator::new(&n);
/// let faults = FaultList::collapsed(&n);
/// // pattern 11 detects the AND-output sa0
/// let detected = fsim.detected_by_pattern(&faults, &[true, true]);
/// let sa0_index = faults.iter().position(|f| f.node == g && f.stuck == StuckAt::Zero).unwrap();
/// assert!(detected[sa0_index]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
}

impl<'a> FaultSimulator<'a> {
    /// Binds a simulator to `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        FaultSimulator { netlist }
    }

    /// Returns, for each fault, the 64-bit mask of patterns (bit `p` =
    /// pattern `p`) that detect it. `pi_words[i]` carries input `i` of
    /// all 64 patterns.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` differs from the input count.
    pub fn detected_masks(&self, faults: &FaultList, pi_words: &[u64]) -> Vec<u64> {
        let good = self.netlist.eval_nodes_parallel(pi_words);
        faults
            .iter()
            .map(|&fault| self.fault_mask(fault, &good))
            .collect()
    }

    /// Detection flags for a single fully specified pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the input count.
    pub fn detected_by_pattern(&self, faults: &FaultList, pattern: &[bool]) -> Vec<bool> {
        let pi_words: Vec<u64> = pattern.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.detected_masks(faults, &pi_words)
            .into_iter()
            .map(|m| m & 1 == 1)
            .collect()
    }

    /// Runs a bit-sliced pattern list with fault dropping and returns
    /// per-fault detection flags — the primary simulation path: each
    /// 64-pattern block costs one good-machine evaluation plus one
    /// cone re-evaluation per *still-undetected* fault.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.width()` differs from the input count.
    pub fn run_packed(&self, faults: &FaultList, patterns: &PackedPatterns) -> Vec<bool> {
        assert_eq!(
            patterns.width(),
            self.netlist.input_count(),
            "pattern width mismatch"
        );
        let mut detected = vec![false; faults.len()];
        // fault dropping: detected faults leave the worklist entirely
        let mut remaining: Vec<usize> = (0..faults.len()).collect();
        let mut pi_words = Vec::with_capacity(patterns.width());
        for block in 0..patterns.block_count() {
            if remaining.is_empty() {
                break;
            }
            patterns.block_words(block, &mut pi_words);
            let block_mask = patterns.block_mask(block);
            let good = self.netlist.eval_nodes_parallel(&pi_words);
            let all = faults.faults();
            remaining.retain(|&fi| {
                if self.fault_mask(all[fi], &good) & block_mask != 0 {
                    detected[fi] = true;
                    false
                } else {
                    true
                }
            });
        }
        detected
    }

    /// Fault coverage of a bit-sliced pattern list over `faults`.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.width()` differs from the input count.
    pub fn coverage_packed(&self, faults: &FaultList, patterns: &PackedPatterns) -> f64 {
        if faults.is_empty() {
            return 1.0;
        }
        let detected = self.run_packed(faults, patterns);
        detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64
    }

    /// Runs a whole pattern list (each a full-width bool vector) and
    /// returns per-fault detection flags. Packs the list and delegates
    /// to [`run_packed`](FaultSimulator::run_packed).
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from the input count.
    pub fn run(&self, faults: &FaultList, patterns: &[Vec<bool>]) -> Vec<bool> {
        self.run_packed(
            faults,
            &PackedPatterns::from_bools(self.netlist.input_count(), patterns),
        )
    }

    /// Fault coverage of a pattern list over `faults`. Packs the list
    /// and delegates to
    /// [`coverage_packed`](FaultSimulator::coverage_packed).
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from the input count.
    pub fn coverage(&self, faults: &FaultList, patterns: &[Vec<bool>]) -> f64 {
        self.coverage_packed(
            faults,
            &PackedPatterns::from_bools(self.netlist.input_count(), patterns),
        )
    }

    /// The one-pattern-at-a-time reference oracle: simulates every
    /// pattern individually through
    /// [`detected_by_pattern`](FaultSimulator::detected_by_pattern),
    /// with no word packing and no fault dropping. Property tests pin
    /// [`run_packed`](FaultSimulator::run_packed) against this path
    /// bit for bit; benches use it as the scalar baseline.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from the input count.
    pub fn run_scalar(&self, faults: &FaultList, patterns: &[Vec<bool>]) -> Vec<bool> {
        let mut detected = vec![false; faults.len()];
        for pattern in patterns {
            for (fi, hit) in self.detected_by_pattern(faults, pattern).iter().enumerate() {
                if *hit {
                    detected[fi] = true;
                }
            }
        }
        detected
    }

    /// Fault coverage computed by the scalar oracle
    /// ([`run_scalar`](FaultSimulator::run_scalar)).
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from the input count.
    pub fn coverage_scalar(&self, faults: &FaultList, patterns: &[Vec<bool>]) -> f64 {
        if faults.is_empty() {
            return 1.0;
        }
        let detected = self.run_scalar(faults, patterns);
        detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64
    }

    /// Detection mask of one fault given precomputed good values.
    fn fault_mask(&self, fault: Fault, good: &[u64]) -> u64 {
        let forced = if fault.stuck.value() { u64::MAX } else { 0 };
        if good[fault.node] == forced {
            // the fault is never excited by any of the 64 patterns
            return 0;
        }
        let cone = self.netlist.fanout_cone(fault.node);
        // sparse re-evaluation: faulty values only for cone nodes
        let mut faulty: Vec<u64> = Vec::with_capacity(cone.len());
        let value_of = |node: usize, cone: &[usize], faulty: &[u64], good: &[u64]| -> u64 {
            match cone.binary_search(&node) {
                Ok(idx) => faulty[idx],
                Err(_) => good[node],
            }
        };
        for &node in &cone {
            let v = if node == fault.node {
                forced
            } else {
                let gate = self
                    .netlist
                    .gate(node)
                    .expect("cone nodes above the fault are gates");
                let ins = gate
                    .fanins
                    .iter()
                    .map(|&f| value_of(f, &cone, &faulty, good));
                use crate::netlist::GateKind::*;
                match gate.kind {
                    And => ins.fold(u64::MAX, |a, b| a & b),
                    Nand => !gate
                        .fanins
                        .iter()
                        .map(|&f| value_of(f, &cone, &faulty, good))
                        .fold(u64::MAX, |a, b| a & b),
                    Or => ins.fold(0, |a, b| a | b),
                    Nor => !gate
                        .fanins
                        .iter()
                        .map(|&f| value_of(f, &cone, &faulty, good))
                        .fold(0, |a, b| a | b),
                    Xor => ins.fold(0, |a, b| a ^ b),
                    Xnor => !gate
                        .fanins
                        .iter()
                        .map(|&f| value_of(f, &cone, &faulty, good))
                        .fold(0, |a, b| a ^ b),
                    Not => !value_of(gate.fanins[0], &cone, &faulty, good),
                    Buf => value_of(gate.fanins[0], &cone, &faulty, good),
                }
            };
            faulty.push(v);
        }
        let mut mask = 0u64;
        for &o in self.netlist.outputs() {
            if let Ok(idx) = cone.binary_search(&o) {
                mask |= faulty[idx] ^ good[o];
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StuckAt;
    use crate::netlist::GateKind;

    fn c17() -> Netlist {
        let mut n = Netlist::new(5);
        let g10 = n.add_gate(GateKind::Nand, vec![0, 2]).unwrap();
        let g11 = n.add_gate(GateKind::Nand, vec![2, 3]).unwrap();
        let g16 = n.add_gate(GateKind::Nand, vec![1, g11]).unwrap();
        let g19 = n.add_gate(GateKind::Nand, vec![g11, 4]).unwrap();
        let g22 = n.add_gate(GateKind::Nand, vec![g10, g16]).unwrap();
        let g23 = n.add_gate(GateKind::Nand, vec![g16, g19]).unwrap();
        n.add_output(g22).unwrap();
        n.add_output(g23).unwrap();
        n
    }

    /// Brute-force reference: full faulty re-simulation, scalar.
    fn reference_detects(n: &Netlist, fault: Fault, pattern: &[bool]) -> bool {
        let good = n.eval_nodes(pattern);
        // faulty scalar sim
        let mut faulty: Vec<bool> = Vec::with_capacity(n.node_count());
        for (i, &b) in pattern.iter().enumerate() {
            faulty.push(if i == fault.node {
                fault.stuck.value()
            } else {
                b
            });
        }
        for (g, gate) in n.gates().iter().enumerate() {
            let node = n.input_count() + g;
            let mut v = {
                use GateKind::*;
                let ins = gate.fanins.iter().map(|&f| faulty[f]);
                match gate.kind {
                    And => ins.fold(true, |a, b| a & b),
                    Nand => !gate
                        .fanins
                        .iter()
                        .map(|&f| faulty[f])
                        .fold(true, |a, b| a & b),
                    Or => ins.fold(false, |a, b| a | b),
                    Nor => !gate
                        .fanins
                        .iter()
                        .map(|&f| faulty[f])
                        .fold(false, |a, b| a | b),
                    Xor => ins.fold(false, |a, b| a ^ b),
                    Xnor => !gate
                        .fanins
                        .iter()
                        .map(|&f| faulty[f])
                        .fold(false, |a, b| a ^ b),
                    Not => !faulty[gate.fanins[0]],
                    Buf => faulty[gate.fanins[0]],
                }
            };
            if node == fault.node {
                v = fault.stuck.value();
            }
            faulty.push(v);
        }
        n.outputs().iter().any(|&o| faulty[o] != good[o])
    }

    #[test]
    fn matches_bruteforce_on_c17_exhaustively() {
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::full(&n);
        for pattern_bits in 0u32..32 {
            let pattern: Vec<bool> = (0..5).map(|i| (pattern_bits >> i) & 1 == 1).collect();
            let got = fsim.detected_by_pattern(&faults, &pattern);
            for (fi, &fault) in faults.iter().enumerate() {
                assert_eq!(
                    got[fi],
                    reference_detects(&n, fault, &pattern),
                    "fault {fault} pattern {pattern_bits:05b}"
                );
            }
        }
    }

    #[test]
    fn run_accumulates_over_blocks() {
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        let all_patterns: Vec<Vec<bool>> = (0u32..32)
            .map(|p| (0..5).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let detected = fsim.run(&faults, &all_patterns);
        // c17 has no redundant faults; exhaustive patterns detect all
        assert!(
            detected.iter().all(|&d| d),
            "exhaustive set must detect everything"
        );
        assert_eq!(fsim.coverage(&faults, &all_patterns), 1.0);
    }

    #[test]
    fn packed_path_matches_scalar_oracle_bit_for_bit() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::full(&n);
        let mut rng = SmallRng::seed_from_u64(99);
        // ragged count on purpose: 3 blocks, last one 5 lanes wide
        let patterns: Vec<Vec<bool>> = (0..133)
            .map(|_| (0..5).map(|_| rng.gen()).collect())
            .collect();
        let packed = PackedPatterns::from_bools(5, &patterns);
        assert_eq!(
            fsim.run_packed(&faults, &packed),
            fsim.run_scalar(&faults, &patterns)
        );
        assert_eq!(
            fsim.coverage_packed(&faults, &packed),
            fsim.coverage_scalar(&faults, &patterns)
        );
        // and the Vec<bool> front door routes through the same kernel
        assert_eq!(
            fsim.run(&faults, &patterns),
            fsim.run_scalar(&faults, &patterns)
        );
    }

    #[test]
    fn fault_dropping_carries_across_blocks() {
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        // 128 patterns = 2 packed blocks. Block 0 alone is exhaustive
        // (all 32 input combinations, repeated), so every fault drops
        // there and block 1 takes the empty-worklist early exit; the
        // detection state must survive the block boundary.
        let patterns: Vec<Vec<bool>> = (0u32..128)
            .map(|p| (0..5).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let packed = PackedPatterns::from_bools(5, &patterns);
        assert_eq!(packed.block_count(), 2);
        let detected = fsim.run_packed(&faults, &packed);
        assert!(detected.iter().all(|&d| d));
        // and a split where detection straddles blocks agrees with the
        // scalar oracle
        let sparse: Vec<Vec<bool>> = (0u32..100)
            .map(|p| (0..5).map(|i| (p >> (i + 1)) & 1 == 1).collect())
            .collect();
        let packed_sparse = PackedPatterns::from_bools(5, &sparse);
        assert_eq!(
            fsim.run_packed(&faults, &packed_sparse),
            fsim.run_scalar(&faults, &sparse)
        );
    }

    #[test]
    fn empty_pattern_list_detects_nothing() {
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        assert_eq!(fsim.coverage(&faults, &[]), 0.0);
    }

    #[test]
    fn unexcitable_block_shortcut() {
        // AND output is 0 under the all-zero pattern; sa0 never excited
        let mut n = Netlist::new(2);
        let g = n.add_gate(GateKind::And, vec![0, 1]).unwrap();
        n.add_output(g).unwrap();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        let sa0 = faults
            .iter()
            .position(|f| f.node == g && f.stuck == StuckAt::Zero)
            .unwrap();
        let detected = fsim.detected_by_pattern(&faults, &[false, false]);
        assert!(!detected[sa0]);
    }
}
