//! Parallel-pattern single-fault simulation.
//!
//! Simulates 64 test patterns per machine word. For each fault only the
//! transitive fanout cone of the faulted node is re-evaluated, with the
//! node forced to its stuck value; a fault is detected by a pattern
//! when any primary output differs from the good machine.

use crate::fault::{Fault, FaultList};
use crate::netlist::Netlist;

/// A fault simulator bound to a netlist.
///
/// # Example
///
/// ```
/// use ss_circuit::{Fault, FaultList, FaultSimulator, GateKind, Netlist, StuckAt};
///
/// # fn main() -> Result<(), ss_circuit::NetlistError> {
/// let mut n = Netlist::new(2);
/// let g = n.add_gate(GateKind::And, vec![0, 1])?;
/// n.add_output(g)?;
/// let fsim = FaultSimulator::new(&n);
/// let faults = FaultList::collapsed(&n);
/// // pattern 11 detects the AND-output sa0
/// let detected = fsim.detected_by_pattern(&faults, &[true, true]);
/// let sa0_index = faults.iter().position(|f| f.node == g && f.stuck == StuckAt::Zero).unwrap();
/// assert!(detected[sa0_index]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
}

impl<'a> FaultSimulator<'a> {
    /// Binds a simulator to `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        FaultSimulator { netlist }
    }

    /// Returns, for each fault, the 64-bit mask of patterns (bit `p` =
    /// pattern `p`) that detect it. `pi_words[i]` carries input `i` of
    /// all 64 patterns.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` differs from the input count.
    pub fn detected_masks(&self, faults: &FaultList, pi_words: &[u64]) -> Vec<u64> {
        let good = self.netlist.eval_nodes_parallel(pi_words);
        faults
            .iter()
            .map(|&fault| self.fault_mask(fault, &good))
            .collect()
    }

    /// Detection flags for a single fully specified pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the input count.
    pub fn detected_by_pattern(&self, faults: &FaultList, pattern: &[bool]) -> Vec<bool> {
        let pi_words: Vec<u64> = pattern.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.detected_masks(faults, &pi_words)
            .into_iter()
            .map(|m| m & 1 == 1)
            .collect()
    }

    /// Runs a whole pattern list (each a full-width bool vector) and
    /// returns per-fault detection flags.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from the input count.
    pub fn run(&self, faults: &FaultList, patterns: &[Vec<bool>]) -> Vec<bool> {
        let n_in = self.netlist.input_count();
        let mut detected = vec![false; faults.len()];
        for block in patterns.chunks(64) {
            let mut pi_words = vec![0u64; n_in];
            for (p, pattern) in block.iter().enumerate() {
                assert_eq!(pattern.len(), n_in, "pattern width mismatch");
                for (i, &b) in pattern.iter().enumerate() {
                    if b {
                        pi_words[i] |= 1 << p;
                    }
                }
            }
            let block_mask = if block.len() == 64 {
                u64::MAX
            } else {
                (1u64 << block.len()) - 1
            };
            // skip faults already detected
            let good = self.netlist.eval_nodes_parallel(&pi_words);
            for (fi, &fault) in faults.iter().enumerate() {
                if detected[fi] {
                    continue;
                }
                if self.fault_mask(fault, &good) & block_mask != 0 {
                    detected[fi] = true;
                }
            }
        }
        detected
    }

    /// Fault coverage of a pattern list over `faults`.
    pub fn coverage(&self, faults: &FaultList, patterns: &[Vec<bool>]) -> f64 {
        if faults.is_empty() {
            return 1.0;
        }
        let detected = self.run(faults, patterns);
        detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64
    }

    /// Detection mask of one fault given precomputed good values.
    fn fault_mask(&self, fault: Fault, good: &[u64]) -> u64 {
        let forced = if fault.stuck.value() { u64::MAX } else { 0 };
        if good[fault.node] == forced {
            // the fault is never excited by any of the 64 patterns
            return 0;
        }
        let cone = self.netlist.fanout_cone(fault.node);
        // sparse re-evaluation: faulty values only for cone nodes
        let mut faulty: Vec<u64> = Vec::with_capacity(cone.len());
        let value_of = |node: usize, cone: &[usize], faulty: &[u64], good: &[u64]| -> u64 {
            match cone.binary_search(&node) {
                Ok(idx) => faulty[idx],
                Err(_) => good[node],
            }
        };
        for &node in &cone {
            let v = if node == fault.node {
                forced
            } else {
                let gate = self
                    .netlist
                    .gate(node)
                    .expect("cone nodes above the fault are gates");
                let ins = gate
                    .fanins
                    .iter()
                    .map(|&f| value_of(f, &cone, &faulty, good));
                use crate::netlist::GateKind::*;
                match gate.kind {
                    And => ins.fold(u64::MAX, |a, b| a & b),
                    Nand => !gate
                        .fanins
                        .iter()
                        .map(|&f| value_of(f, &cone, &faulty, good))
                        .fold(u64::MAX, |a, b| a & b),
                    Or => ins.fold(0, |a, b| a | b),
                    Nor => !gate
                        .fanins
                        .iter()
                        .map(|&f| value_of(f, &cone, &faulty, good))
                        .fold(0, |a, b| a | b),
                    Xor => ins.fold(0, |a, b| a ^ b),
                    Xnor => !gate
                        .fanins
                        .iter()
                        .map(|&f| value_of(f, &cone, &faulty, good))
                        .fold(0, |a, b| a ^ b),
                    Not => !value_of(gate.fanins[0], &cone, &faulty, good),
                    Buf => value_of(gate.fanins[0], &cone, &faulty, good),
                }
            };
            faulty.push(v);
        }
        let mut mask = 0u64;
        for &o in self.netlist.outputs() {
            if let Ok(idx) = cone.binary_search(&o) {
                mask |= faulty[idx] ^ good[o];
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StuckAt;
    use crate::netlist::GateKind;

    fn c17() -> Netlist {
        let mut n = Netlist::new(5);
        let g10 = n.add_gate(GateKind::Nand, vec![0, 2]).unwrap();
        let g11 = n.add_gate(GateKind::Nand, vec![2, 3]).unwrap();
        let g16 = n.add_gate(GateKind::Nand, vec![1, g11]).unwrap();
        let g19 = n.add_gate(GateKind::Nand, vec![g11, 4]).unwrap();
        let g22 = n.add_gate(GateKind::Nand, vec![g10, g16]).unwrap();
        let g23 = n.add_gate(GateKind::Nand, vec![g16, g19]).unwrap();
        n.add_output(g22).unwrap();
        n.add_output(g23).unwrap();
        n
    }

    /// Brute-force reference: full faulty re-simulation, scalar.
    fn reference_detects(n: &Netlist, fault: Fault, pattern: &[bool]) -> bool {
        let good = n.eval_nodes(pattern);
        // faulty scalar sim
        let mut faulty: Vec<bool> = Vec::with_capacity(n.node_count());
        for (i, &b) in pattern.iter().enumerate() {
            faulty.push(if i == fault.node {
                fault.stuck.value()
            } else {
                b
            });
        }
        for (g, gate) in n.gates().iter().enumerate() {
            let node = n.input_count() + g;
            let mut v = {
                use GateKind::*;
                let ins = gate.fanins.iter().map(|&f| faulty[f]);
                match gate.kind {
                    And => ins.fold(true, |a, b| a & b),
                    Nand => !gate
                        .fanins
                        .iter()
                        .map(|&f| faulty[f])
                        .fold(true, |a, b| a & b),
                    Or => ins.fold(false, |a, b| a | b),
                    Nor => !gate
                        .fanins
                        .iter()
                        .map(|&f| faulty[f])
                        .fold(false, |a, b| a | b),
                    Xor => ins.fold(false, |a, b| a ^ b),
                    Xnor => !gate
                        .fanins
                        .iter()
                        .map(|&f| faulty[f])
                        .fold(false, |a, b| a ^ b),
                    Not => !faulty[gate.fanins[0]],
                    Buf => faulty[gate.fanins[0]],
                }
            };
            if node == fault.node {
                v = fault.stuck.value();
            }
            faulty.push(v);
        }
        n.outputs().iter().any(|&o| faulty[o] != good[o])
    }

    #[test]
    fn matches_bruteforce_on_c17_exhaustively() {
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::full(&n);
        for pattern_bits in 0u32..32 {
            let pattern: Vec<bool> = (0..5).map(|i| (pattern_bits >> i) & 1 == 1).collect();
            let got = fsim.detected_by_pattern(&faults, &pattern);
            for (fi, &fault) in faults.iter().enumerate() {
                assert_eq!(
                    got[fi],
                    reference_detects(&n, fault, &pattern),
                    "fault {fault} pattern {pattern_bits:05b}"
                );
            }
        }
    }

    #[test]
    fn run_accumulates_over_blocks() {
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        let all_patterns: Vec<Vec<bool>> = (0u32..32)
            .map(|p| (0..5).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let detected = fsim.run(&faults, &all_patterns);
        // c17 has no redundant faults; exhaustive patterns detect all
        assert!(
            detected.iter().all(|&d| d),
            "exhaustive set must detect everything"
        );
        assert_eq!(fsim.coverage(&faults, &all_patterns), 1.0);
    }

    #[test]
    fn empty_pattern_list_detects_nothing() {
        let n = c17();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        assert_eq!(fsim.coverage(&faults, &[]), 0.0);
    }

    #[test]
    fn unexcitable_block_shortcut() {
        // AND output is 0 under the all-zero pattern; sa0 never excited
        let mut n = Netlist::new(2);
        let g = n.add_gate(GateKind::And, vec![0, 1]).unwrap();
        n.add_output(g).unwrap();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        let sa0 = faults
            .iter()
            .position(|f| f.node == g && f.stuck == StuckAt::Zero)
            .unwrap();
        let detected = fsim.detected_by_pattern(&faults, &[false, false]);
        assert!(!detected[sa0]);
    }
}
