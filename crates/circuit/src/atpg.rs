//! PODEM automatic test pattern generation.
//!
//! PODEM (Path-Oriented DEcision Making) searches the primary-input
//! space: it repeatedly picks an *objective* (excite the fault, then
//! advance the D-frontier), *backtraces* the objective to an unassigned
//! primary input, assigns it, and re-simulates in the 5-valued
//! D-calculus; conflicts trigger chronological backtracking. The
//! result, when a test exists, is a test **cube** — assigned PIs plus
//! X's — which is precisely what the paper's LFSR-reseeding encoder
//! consumes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ss_testdata::TestCube;

use crate::fault::{Fault, FaultList, StuckAt};
use crate::fsim::FaultSimulator;
use crate::logic::V5;
use crate::netlist::{GateKind, Netlist, NodeId};
use crate::scoap::Scoap;

/// Tuning knobs for [`Podem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Maximum backtracks before a fault is declared aborted.
    pub backtrack_limit: usize,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            backtrack_limit: 200,
        }
    }
}

/// Result of targeting one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgResult {
    /// A test cube detecting the fault.
    Test(TestCube),
    /// Proven untestable (redundant fault).
    Untestable,
    /// Backtrack limit exhausted; testability unknown.
    Aborted,
}

/// A PODEM test generator bound to a netlist.
///
/// # Example
///
/// ```
/// use ss_circuit::{AtpgConfig, Fault, GateKind, Netlist, Podem, StuckAt};
///
/// # fn main() -> Result<(), ss_circuit::NetlistError> {
/// let mut n = Netlist::new(2);
/// let g = n.add_gate(GateKind::And, vec![0, 1])?;
/// n.add_output(g)?;
/// let podem = Podem::new(&n);
/// let fault = Fault { node: g, stuck: StuckAt::Zero };
/// let result = podem.generate(fault, &AtpgConfig::default());
/// assert!(matches!(result, ss_circuit::AtpgResult::Test(_)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    scoap: Option<Scoap>,
}

impl<'a> Podem<'a> {
    /// Binds a generator to `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        Podem {
            netlist,
            scoap: None,
        }
    }

    /// Binds a generator that guides backtrace with SCOAP
    /// controllability: at each gate the X fanin cheapest to drive to
    /// the target value is followed, which reduces backtracks on deep
    /// reconvergent logic.
    pub fn with_scoap(netlist: &'a Netlist) -> Self {
        Podem {
            netlist,
            scoap: Some(Scoap::analyze(netlist)),
        }
    }

    /// Attempts to generate a test cube for `fault`.
    pub fn generate(&self, fault: Fault, config: &AtpgConfig) -> AtpgResult {
        let pi_count = self.netlist.input_count();
        let mut assignment: Vec<Option<bool>> = vec![None; pi_count];
        // decision stack: (pi, value, flipped_already)
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            let values = self.simulate(&assignment, fault);
            if self
                .netlist
                .outputs()
                .iter()
                .any(|&o| values[o].is_fault_effect())
            {
                return AtpgResult::Test(cube_from_assignment(&assignment));
            }

            match self.objective(&values, fault) {
                Some((node, target)) => {
                    let (pi, value) = self.backtrace(node, target, &values);
                    assignment[pi] = Some(value);
                    stack.push((pi, value, false));
                }
                None => {
                    // dead end: undo decisions until one can be flipped
                    loop {
                        let Some((pi, value, flipped)) = stack.pop() else {
                            return AtpgResult::Untestable;
                        };
                        if flipped {
                            assignment[pi] = None;
                            continue;
                        }
                        backtracks += 1;
                        if backtracks > config.backtrack_limit {
                            return AtpgResult::Aborted;
                        }
                        assignment[pi] = Some(!value);
                        stack.push((pi, !value, true));
                        break;
                    }
                }
            }
        }
    }

    /// 5-valued forward simulation with the fault injected.
    fn simulate(&self, assignment: &[Option<bool>], fault: Fault) -> Vec<V5> {
        let mut values: Vec<V5> = Vec::with_capacity(self.netlist.node_count());
        for &a in assignment {
            values.push(a.map_or(V5::X, V5::from_bool));
        }
        if fault.node < values.len() {
            let v = values[fault.node];
            values[fault.node] = inject(v, fault.stuck);
        }
        for (g, gate) in self.netlist.gates().iter().enumerate() {
            let node = self.netlist.input_count() + g;
            let mut v = eval_gate5(gate.kind, &gate.fanins, &values);
            if node == fault.node {
                v = inject(v, fault.stuck);
            }
            values.push(v);
        }
        values
    }

    /// The next objective: excite the fault if it is not yet excited,
    /// otherwise advance the D-frontier. `None` = no progress possible
    /// under the current assignment.
    fn objective(&self, values: &[V5], fault: Fault) -> Option<(NodeId, bool)> {
        match values[fault.node] {
            V5::X => Some((fault.node, fault.stuck.activation())),
            V5::D | V5::Dbar => {
                // D-frontier: gate with X output and a fault-effect input
                for (g, gate) in self.netlist.gates().iter().enumerate() {
                    let node = self.netlist.input_count() + g;
                    if values[node] != V5::X {
                        continue;
                    }
                    if !gate.fanins.iter().any(|&f| values[f].is_fault_effect()) {
                        continue;
                    }
                    // set an X input to the non-controlling value
                    if let Some(&x_input) = gate
                        .fanins
                        .iter()
                        .find(|&&f| values[f] == V5::X && !values[f].is_fault_effect())
                    {
                        let target = match gate.kind.controlling_value() {
                            Some(c) => !c,
                            None => false, // XOR family: any value propagates
                        };
                        return Some((x_input, target));
                    }
                }
                None
            }
            // good value equals the stuck value: fault can never be
            // excited under this assignment prefix
            _ => None,
        }
    }

    /// Walks an objective back to an unassigned primary input.
    fn backtrace(&self, mut node: NodeId, mut target: bool, values: &[V5]) -> (usize, bool) {
        loop {
            if self.netlist.is_input(node) {
                debug_assert_eq!(values[node], V5::X, "backtrace must end on an X input");
                return (node, target);
            }
            let gate = self.netlist.gate(node).expect("non-input node has a gate");
            target ^= gate.kind.inverts();
            // follow an X input (one must exist while the output is X);
            // with SCOAP, follow the cheapest one toward the target
            node = match &self.scoap {
                None => gate
                    .fanins
                    .iter()
                    .copied()
                    .find(|&f| values[f] == V5::X)
                    .expect("X output implies an X input"),
                Some(scoap) => gate
                    .fanins
                    .iter()
                    .copied()
                    .filter(|&f| values[f] == V5::X)
                    .min_by_key(|&f| scoap.cc(f, target))
                    .expect("X output implies an X input"),
            };
        }
    }
}

fn inject(v: V5, stuck: StuckAt) -> V5 {
    match (v.good(), stuck) {
        (Some(true), StuckAt::Zero) => V5::D,
        (Some(false), StuckAt::One) => V5::Dbar,
        (Some(_), _) => v,  // good value equals the stuck value
        (None, _) => V5::X, // conservatively unknown
    }
}

fn eval_gate5(kind: GateKind, fanins: &[NodeId], values: &[V5]) -> V5 {
    let ins = fanins.iter().map(|&f| values[f]);
    match kind {
        GateKind::And => ins.fold(V5::One, V5::and),
        GateKind::Nand => fanins
            .iter()
            .map(|&f| values[f])
            .fold(V5::One, V5::and)
            .not(),
        GateKind::Or => ins.fold(V5::Zero, V5::or),
        GateKind::Nor => fanins
            .iter()
            .map(|&f| values[f])
            .fold(V5::Zero, V5::or)
            .not(),
        GateKind::Xor => ins.fold(V5::Zero, V5::xor),
        GateKind::Xnor => fanins
            .iter()
            .map(|&f| values[f])
            .fold(V5::Zero, V5::xor)
            .not(),
        GateKind::Not => values[fanins[0]].not(),
        GateKind::Buf => values[fanins[0]],
    }
}

fn cube_from_assignment(assignment: &[Option<bool>]) -> TestCube {
    let mut cube = TestCube::all_x(assignment.len());
    for (i, a) in assignment.iter().enumerate() {
        if let Some(v) = a {
            cube.set(i, *v);
        }
    }
    cube
}

/// Outcome of a whole-fault-list ATPG run.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgOutcome {
    /// One test cube per targeted, detected fault (uncompacted: cubes
    /// are never merged).
    pub cubes: Vec<TestCube>,
    /// Faults detected (by a generated cube or by fault-dropping
    /// simulation of an earlier cube).
    pub detected: usize,
    /// Faults proven untestable (redundant).
    pub redundant: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Total faults targeted (collapsed list size).
    pub total: usize,
}

impl AtpgOutcome {
    /// Fault coverage over non-redundant faults (the paper quotes
    /// "100% non-redundant fault coverage" for its Atalanta sets).
    pub fn coverage(&self) -> f64 {
        let testable = self.total - self.redundant;
        if testable == 0 {
            1.0
        } else {
            self.detected as f64 / testable as f64
        }
    }
}

/// Generates an *uncompacted* test set for `netlist` in the Atalanta
/// style: target every collapsed stuck-at fault with PODEM, keep one
/// cube per detected fault, and fault-drop against random fills of the
/// cubes generated so far (so later faults already covered by chance
/// are not targeted again). Deterministic in `seed`.
pub fn generate_uncompacted_test_set(
    netlist: &Netlist,
    config: &AtpgConfig,
    seed: u64,
) -> AtpgOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let podem = Podem::new(netlist);
    let fsim = FaultSimulator::new(netlist);
    let faults = FaultList::collapsed(netlist);
    let total = faults.len();

    let mut detected_flags = vec![false; total];
    let mut outcome = AtpgOutcome {
        cubes: Vec::new(),
        detected: 0,
        redundant: 0,
        aborted: 0,
        total,
    };

    for (i, &fault) in faults.iter().enumerate() {
        if detected_flags[i] {
            continue;
        }
        match podem.generate(fault, config) {
            AtpgResult::Test(cube) => {
                // drop this and any other fault caught by a random fill
                let filled = cube.random_fill(&mut rng);
                let pattern: Vec<bool> = filled.iter().collect();
                let newly = fsim.detected_by_pattern(&faults, &pattern);
                for (j, caught) in newly.iter().enumerate() {
                    if *caught && !detected_flags[j] {
                        detected_flags[j] = true;
                        outcome.detected += 1;
                    }
                }
                if !detected_flags[i] {
                    // the random fill may have missed the targeted fault
                    // (the cube guarantees detection only for its own
                    // specified bits); count it detected regardless —
                    // the cube does detect it by construction.
                    detected_flags[i] = true;
                    outcome.detected += 1;
                }
                outcome.cubes.push(cube);
            }
            AtpgResult::Untestable => outcome.redundant += 1,
            AtpgResult::Aborted => outcome.aborted += 1,
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_circuit() -> Netlist {
        let mut n = Netlist::new(3);
        let g1 = n.add_gate(GateKind::And, vec![0, 1]).unwrap();
        let g2 = n.add_gate(GateKind::Or, vec![g1, 2]).unwrap();
        n.add_output(g2).unwrap();
        n
    }

    #[test]
    fn detects_simple_faults() {
        let n = and_circuit();
        let podem = Podem::new(&n);
        let cfg = AtpgConfig::default();
        // AND output sa0: need a=b=1 (excite) and c=0 (propagate)
        let result = podem.generate(
            Fault {
                node: 3,
                stuck: StuckAt::Zero,
            },
            &cfg,
        );
        let AtpgResult::Test(cube) = result else {
            panic!("expected a test, got {result:?}")
        };
        assert_eq!(cube.get(0), Some(true));
        assert_eq!(cube.get(1), Some(true));
        assert_eq!(cube.get(2), Some(false));
    }

    #[test]
    fn generated_cube_really_detects() {
        // simulate good vs faulty machine on the cube's fill
        let n = and_circuit();
        let podem = Podem::new(&n);
        let cfg = AtpgConfig::default();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        let mut rng = SmallRng::seed_from_u64(3);
        for (fi, &fault) in faults.iter().enumerate() {
            if let AtpgResult::Test(cube) = podem.generate(fault, &cfg) {
                let pattern: Vec<bool> = cube.random_fill(&mut rng).iter().collect();
                let detected = fsim.detected_by_pattern(&faults, &pattern);
                assert!(detected[fi], "cube for {fault} must detect it");
            }
        }
    }

    #[test]
    fn untestable_fault_is_recognised() {
        // a = in0 AND in0' is constant 0 -> sa0 on it is untestable
        let mut n = Netlist::new(1);
        let inv = n.add_gate(GateKind::Not, vec![0]).unwrap();
        let and = n.add_gate(GateKind::And, vec![0, inv]).unwrap();
        n.add_output(and).unwrap();
        let podem = Podem::new(&n);
        let result = podem.generate(
            Fault {
                node: and,
                stuck: StuckAt::Zero,
            },
            &AtpgConfig::default(),
        );
        assert_eq!(result, AtpgResult::Untestable);
    }

    #[test]
    fn sa1_on_constant_zero_is_testable() {
        let mut n = Netlist::new(1);
        let inv = n.add_gate(GateKind::Not, vec![0]).unwrap();
        let and = n.add_gate(GateKind::And, vec![0, inv]).unwrap();
        n.add_output(and).unwrap();
        let podem = Podem::new(&n);
        let result = podem.generate(
            Fault {
                node: and,
                stuck: StuckAt::One,
            },
            &AtpgConfig::default(),
        );
        assert!(matches!(result, AtpgResult::Test(_)));
    }

    #[test]
    fn xor_propagation() {
        let mut n = Netlist::new(2);
        let x = n.add_gate(GateKind::Xor, vec![0, 1]).unwrap();
        n.add_output(x).unwrap();
        let podem = Podem::new(&n);
        for stuck in [StuckAt::Zero, StuckAt::One] {
            let result = podem.generate(Fault { node: 0, stuck }, &AtpgConfig::default());
            assert!(matches!(result, AtpgResult::Test(_)), "{stuck}");
        }
    }

    #[test]
    fn scoap_guided_podem_produces_valid_tests() {
        use crate::fsim::FaultSimulator;
        use crate::generator::{random_circuit, CircuitSpec};
        let n = random_circuit(&CircuitSpec::tiny(), 77);
        let plain = Podem::new(&n);
        let guided = Podem::with_scoap(&n);
        let cfg = AtpgConfig::default();
        let fsim = FaultSimulator::new(&n);
        let faults = FaultList::collapsed(&n);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut guided_resolved = 0usize;
        let mut plain_resolved = 0usize;
        let mut guided_found = 0usize;
        for (fi, &fault) in faults.iter().enumerate() {
            match guided.generate(fault, &cfg) {
                AtpgResult::Test(cube) => {
                    guided_resolved += 1;
                    guided_found += 1;
                    let pattern: Vec<bool> = cube.random_fill(&mut rng).iter().collect();
                    assert!(
                        fsim.detected_by_pattern(&faults, &pattern)[fi],
                        "guided cube for {fault} must detect it"
                    );
                }
                AtpgResult::Untestable => guided_resolved += 1,
                AtpgResult::Aborted => {}
            }
            if !matches!(plain.generate(fault, &cfg), AtpgResult::Aborted) {
                plain_resolved += 1;
            }
        }
        // both heuristics must resolve essentially every fault on a
        // tiny circuit (test vs proven-redundant; aborts are the enemy)
        assert!(
            guided_resolved * 20 >= faults.len() * 19,
            "{guided_resolved}/{}",
            faults.len()
        );
        assert!(plain_resolved * 20 >= faults.len() * 19);
        assert!(guided_found > 0);
    }

    #[test]
    fn uncompacted_set_on_small_circuit() {
        let n = and_circuit();
        let outcome = generate_uncompacted_test_set(&n, &AtpgConfig::default(), 7);
        assert_eq!(outcome.total, FaultList::collapsed(&n).len());
        assert!(
            outcome.coverage() >= 0.99,
            "coverage {}",
            outcome.coverage()
        );
        assert!(outcome.aborted == 0);
        assert!(!outcome.cubes.is_empty());
        // uncompacted: never more cubes than faults
        assert!(outcome.cubes.len() <= outcome.total);
    }

    #[test]
    fn outcome_coverage_edge_cases() {
        let o = AtpgOutcome {
            cubes: vec![],
            detected: 0,
            redundant: 5,
            aborted: 0,
            total: 5,
        };
        assert_eq!(o.coverage(), 1.0, "all-redundant list counts as covered");
    }
}
