//! Distributed tracing primitives for the State Skip fleet.
//!
//! A *trace* is the story of one submission: a 64-bit [`TraceId`]
//! minted by the client (or balancer) at submit time and propagated
//! through every protocol-v6 message the submission causes — the
//! submit itself, any redirect, the write-behind replication pushes it
//! triggers. Every process that touches the trace records [`Span`]s
//! into its own bounded [`SpanRing`]; nothing is pushed anywhere at
//! record time, so the hot path stays one mutex'd ring append. A
//! `TraceDump` admin request drains a server's ring for one trace, and
//! [`stitch`] merges the dumps of every shard into one causally
//! ordered cross-process timeline.
//!
//! # Clock model
//!
//! Span timestamps are *process-monotonic* microseconds (elapsed since
//! that process's [`TraceClock`] origin) — monotonic clocks never go
//! backwards and cost nothing to read, but they are meaningless across
//! processes. Each dump therefore carries a `(wall_micros,
//! mono_micros)` pair sampled together at dump time; [`stitch`] uses
//! it to shift every span onto the wall clock
//! (`abs = wall_micros - mono_micros + span.start_micros`), which is
//! exact up to the NTP skew between hosts and exact on a single host.
//!
//! Everything here is `std`-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A trace identifier: one per submission, minted client-side. The
/// zero id means "untraced" — every recording site treats it as a
/// no-op, which is how tracing is disabled per-request and negotiated
/// away entirely for pre-v6 peers (the context simply never travels).
pub type TraceId = u64;

/// A span identifier, unique within its trace (a [`mix64`] of the
/// trace id and a per-process sequence number, so two processes
/// recording into the same trace cannot collide in practice).
pub type SpanId = u64;

/// The trace context that travels on the wire with a submission:
/// which trace the work belongs to, the span that caused it, and how
/// many failover hops the submission has already taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// The trace this work belongs to; 0 means untraced.
    pub trace: TraceId,
    /// The causing span on the sender's side (0 for a root).
    pub parent: SpanId,
    /// Failover hops already taken (0 = first-choice shard).
    pub hop: u32,
}

impl TraceContext {
    /// A fresh root context for `trace`.
    pub fn root(trace: TraceId) -> TraceContext {
        TraceContext {
            trace,
            parent: 0,
            hop: 0,
        }
    }

    /// Whether this context carries a live trace.
    pub fn is_active(&self) -> bool {
        self.trace != 0
    }
}

/// What a span measured. The discriminants are the wire encoding —
/// append-only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Server side: reading and decoding a trace-carrying request.
    RecvDecode = 0,
    /// Server side: time a job sat in the bounded queue.
    QueueWait = 1,
    /// Server side: memory-tier cache lookup (hit or miss — the note
    /// says which).
    CacheMemory = 2,
    /// Server side: disk-tier lookup (hit, miss or corruption).
    CacheDisk = 3,
    /// Pipeline: LFSR + phase shifter + expression-table synthesis.
    Synthesis = 4,
    /// Pipeline: seed encoding.
    Encode = 5,
    /// Pipeline: seed embedding.
    Embed = 6,
    /// Pipeline: segmentation + finish.
    Segment = 7,
    /// Server side: encoding and writing the reply through the codec.
    CodecTx = 8,
    /// Server side: one write-behind replication push to a ring peer.
    ReplicatePush = 9,
    /// Server side: verifying and admitting a pushed replica.
    ReplicaIngest = 10,
    /// Client side: one failover hop past a down/saturated shard.
    FailoverHop = 11,
    /// Server side: a submission declined with a redirect to the
    /// owning shard.
    Redirect = 12,
    /// Client side: the whole submit-to-report exchange.
    ClientSubmit = 13,
}

impl SpanKind {
    /// Every kind, in wire order — handy for exhaustive tests.
    pub const ALL: [SpanKind; 14] = [
        SpanKind::RecvDecode,
        SpanKind::QueueWait,
        SpanKind::CacheMemory,
        SpanKind::CacheDisk,
        SpanKind::Synthesis,
        SpanKind::Encode,
        SpanKind::Embed,
        SpanKind::Segment,
        SpanKind::CodecTx,
        SpanKind::ReplicatePush,
        SpanKind::ReplicaIngest,
        SpanKind::FailoverHop,
        SpanKind::Redirect,
        SpanKind::ClientSubmit,
    ];

    /// The stable human name rendered in timelines and smoke greps.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::RecvDecode => "recv",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::CacheMemory => "cache-memory",
            SpanKind::CacheDisk => "cache-disk",
            SpanKind::Synthesis => "synthesis",
            SpanKind::Encode => "encode",
            SpanKind::Embed => "embed",
            SpanKind::Segment => "segment",
            SpanKind::CodecTx => "codec-tx",
            SpanKind::ReplicatePush => "replicate-push",
            SpanKind::ReplicaIngest => "replica-ingest",
            SpanKind::FailoverHop => "failover-hop",
            SpanKind::Redirect => "redirect",
            SpanKind::ClientSubmit => "client-submit",
        }
    }

    /// Decodes a wire discriminant.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded measurement inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to (never 0 in a ring).
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// The causing span (0 for a root, or when the cause was remote
    /// and did not travel).
    pub parent: SpanId,
    /// What was measured.
    pub kind: SpanKind,
    /// Start, in process-monotonic microseconds (see the module docs
    /// for how these become comparable across processes).
    pub start_micros: u64,
    /// Duration in microseconds.
    pub duration_micros: u64,
    /// Free-form annotation: `"hit"`, `"miss"`, `"hop=2"`, a peer
    /// address... Kept short; it travels verbatim.
    pub note: String,
}

/// A server's answer to `TraceDump`: the ring contents for one trace
/// plus the clock pair that makes them comparable across processes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanDump {
    /// Wall clock at dump time, microseconds since the Unix epoch.
    pub wall_micros: u64,
    /// The dumping process's monotonic clock at the same instant.
    pub mono_micros: u64,
    /// Spans ever recorded into the ring (all traces).
    pub recorded: u64,
    /// Spans evicted under capacity pressure (all traces).
    pub evicted: u64,
    /// The matching spans, in ring (i.e. arbitrary) order.
    pub spans: Vec<Span>,
}

/// SplitMix64 — the workspace's standard cheap mixer; used for span
/// ids and the ring's seeded eviction sequence.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mints a span id for `trace` from a per-process sequence number.
pub fn span_id(trace: TraceId, seq: u64) -> SpanId {
    // never 0: 0 is the "no parent" sentinel
    mix64(trace ^ mix64(seq)).max(1)
}

/// Mints a fresh trace id from process entropy (wall clock, pid, and
/// a process-local counter). Never 0.
pub fn fresh_trace_id() -> TraceId {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    mix64(nanos ^ (u64::from(std::process::id()) << 32) ^ mix64(n)).max(1)
}

/// A process's span clock: monotonic microseconds since construction.
///
/// One per process (the server builds it in `Shared::new`); every
/// span start/duration is measured against it, and `TraceDump`
/// answers pair its reading with the wall clock so dumps from
/// different processes can be aligned.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    origin: Instant,
}

impl TraceClock {
    /// A clock whose zero is now.
    pub fn new() -> TraceClock {
        TraceClock {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since the clock's origin.
    pub fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Wall clock in microseconds since the Unix epoch.
pub fn wall_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Default capacity of a server's span ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A bounded span buffer with seeded random replacement.
///
/// Appends are O(1). Once the ring is full, each new span overwrites
/// a slot chosen by a seeded SplitMix64 sequence — so under overflow
/// the retained set is a uniform-ish sample of the history rather
/// than just the newest window (a hot fleet would otherwise evict
/// every cold-path span minutes before anyone asks for it), and two
/// runs with the same seed and the same record sequence retain
/// *exactly* the same spans, which keeps the chaos harness
/// deterministic.
#[derive(Debug)]
pub struct SpanRing {
    slots: Vec<Span>,
    capacity: usize,
    rng: u64,
    recorded: u64,
    evicted: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans, evicting on the
    /// sequence seeded by `seed`.
    pub fn new(capacity: usize, seed: u64) -> SpanRing {
        SpanRing {
            slots: Vec::new(),
            capacity: capacity.max(1),
            rng: seed,
            recorded: 0,
            evicted: 0,
        }
    }

    /// Records one span (spans with a zero trace are the caller's bug;
    /// they are dropped silently rather than polluting dumps).
    pub fn record(&mut self, span: Span) {
        if span.trace == 0 {
            return;
        }
        self.recorded += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(span);
        } else {
            self.rng = mix64(self.rng);
            let at = (self.rng % self.capacity as u64) as usize;
            self.slots[at] = span;
            self.evicted += 1;
        }
    }

    /// Spans currently resident.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Spans ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans overwritten under capacity pressure.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The resident spans of `trace` (all resident spans when `trace`
    /// is 0), cloned in ring order. Non-destructive: the ring's own
    /// eviction is its only forgetting.
    pub fn snapshot(&self, trace: TraceId) -> Vec<Span> {
        self.slots
            .iter()
            .filter(|s| trace == 0 || s.trace == trace)
            .cloned()
            .collect()
    }
}

/// One shard's dump, labelled with the address it came from — the
/// unit [`stitch`] merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDump {
    /// The shard's advertised address (or `"client"` for spans the
    /// balancer recorded locally).
    pub addr: String,
    /// Its `TraceDump` answer.
    pub dump: SpanDump,
}

/// One span placed on the stitched cross-shard timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Which process recorded it.
    pub addr: String,
    /// Absolute start, microseconds since the Unix epoch (the span's
    /// monotonic start shifted by its process's clock pair).
    pub abs_start_micros: i128,
    /// The span itself.
    pub span: Span,
}

/// Merges per-process dumps into one causally ordered timeline:
/// every span's monotonic start is shifted onto the wall clock via
/// its dump's `(wall, mono)` pair, then the union is sorted by
/// absolute start (ties broken by address and kind, so the order is
/// deterministic).
pub fn stitch(shards: &[ShardDump]) -> Vec<TimelineEntry> {
    let mut entries: Vec<TimelineEntry> = Vec::new();
    for shard in shards {
        let offset = shard.dump.wall_micros as i128 - shard.dump.mono_micros as i128;
        for span in &shard.dump.spans {
            entries.push(TimelineEntry {
                addr: shard.addr.clone(),
                abs_start_micros: offset + span.start_micros as i128,
                span: span.clone(),
            });
        }
    }
    entries.sort_by(|a, b| {
        a.abs_start_micros
            .cmp(&b.abs_start_micros)
            .then_with(|| a.addr.cmp(&b.addr))
            .then_with(|| (a.span.kind as u8).cmp(&(b.span.kind as u8)))
            .then_with(|| a.span.id.cmp(&b.span.id))
    });
    entries
}

/// Renders a stitched timeline as text: one line per span, offsets
/// relative to the earliest span, with the recording process, kind,
/// duration and note.
pub fn render_timeline(trace: TraceId, entries: &[TimelineEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace {trace:#018x}\n"));
    if entries.is_empty() {
        out.push_str("  (no spans)\n");
        return out;
    }
    let t0 = entries.iter().map(|e| e.abs_start_micros).min().unwrap();
    let addr_w = entries
        .iter()
        .map(|e| e.addr.len())
        .max()
        .unwrap_or(0)
        .max(5);
    for e in entries {
        let offset = e.abs_start_micros - t0;
        let mut line = format!(
            "  +{:>9} us  {:<addr_w$}  {:<14} {:>9} us",
            offset,
            e.addr,
            e.span.kind.name(),
            e.span.duration_micros,
        );
        if !e.span.note.is_empty() {
            line.push_str("  ");
            line.push_str(&e.span.note);
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, seq: u64, kind: SpanKind, start: u64) -> Span {
        Span {
            trace,
            id: span_id(trace, seq),
            parent: 0,
            kind,
            start_micros: start,
            duration_micros: 10,
            note: String::new(),
        }
    }

    #[test]
    fn kinds_round_trip_their_wire_discriminant() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(SpanKind::from_u8(SpanKind::ALL.len() as u8), None);
        // names are unique (they are grep targets in CI)
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanKind::ALL.len());
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        assert_ne!(fresh_trace_id(), 0);
        let a = span_id(7, 0);
        let b = span_id(7, 1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(span_id(8, 0), a, "trace participates in the id");
    }

    #[test]
    fn ring_is_bounded_and_seeded_eviction_is_deterministic() {
        let mut a = SpanRing::new(8, 42);
        let mut b = SpanRing::new(8, 42);
        let mut c = SpanRing::new(8, 43);
        for seq in 0..100 {
            a.record(span(1, seq, SpanKind::Embed, seq));
            b.record(span(1, seq, SpanKind::Embed, seq));
            c.record(span(1, seq, SpanKind::Embed, seq));
        }
        assert_eq!(a.len(), 8);
        assert_eq!(a.recorded(), 100);
        assert_eq!(a.evicted(), 92);
        assert_eq!(a.snapshot(0), b.snapshot(0), "same seed, same survivors");
        assert_ne!(a.snapshot(0), c.snapshot(0), "different seed diverges");
        // zero-trace spans never enter
        a.record(span(0, 1, SpanKind::Embed, 0));
        assert_eq!(a.recorded(), 100);
    }

    #[test]
    fn snapshot_filters_by_trace() {
        let mut ring = SpanRing::new(16, 1);
        ring.record(span(1, 0, SpanKind::Synthesis, 0));
        ring.record(span(2, 1, SpanKind::Encode, 5));
        ring.record(span(1, 2, SpanKind::Embed, 9));
        assert_eq!(ring.snapshot(1).len(), 2);
        assert_eq!(ring.snapshot(2).len(), 1);
        assert_eq!(ring.snapshot(3).len(), 0);
        assert_eq!(ring.snapshot(0).len(), 3);
    }

    /// Two processes whose monotonic clocks started at wildly
    /// different times still stitch into the true causal order once
    /// the wall/mono pairs are applied.
    #[test]
    fn stitch_normalizes_per_process_clocks() {
        // process A: mono origin = wall 1_000_000; span at mono 50
        // process B: mono origin = wall 1_000_030; span at mono 5
        let a = ShardDump {
            addr: "a:1".into(),
            dump: SpanDump {
                wall_micros: 1_000_100,
                mono_micros: 100,
                recorded: 1,
                evicted: 0,
                spans: vec![span(9, 0, SpanKind::Synthesis, 50)],
            },
        };
        let b = ShardDump {
            addr: "b:1".into(),
            dump: SpanDump {
                wall_micros: 1_000_100,
                mono_micros: 70,
                recorded: 1,
                evicted: 0,
                spans: vec![span(9, 1, SpanKind::ReplicaIngest, 5)],
            },
        };
        let timeline = stitch(&[a, b]);
        // A's span is at wall 1_000_050; B's at wall 1_000_035
        assert_eq!(timeline[0].addr, "b:1");
        assert_eq!(timeline[0].abs_start_micros, 1_000_035);
        assert_eq!(timeline[1].addr, "a:1");
        assert_eq!(timeline[1].abs_start_micros, 1_000_050);

        let text = render_timeline(9, &timeline);
        assert!(text.contains("replica-ingest"));
        assert!(text.contains("synthesis"));
        let ingest_at = text.find("replica-ingest").unwrap();
        let synth_at = text.find("synthesis").unwrap();
        assert!(ingest_at < synth_at, "causal order must survive rendering");
    }

    #[test]
    fn render_is_stable_for_empty_traces() {
        assert!(render_timeline(5, &[]).contains("no spans"));
    }
}
