//! Vendored, dependency-free stand-in for the parts of the `rand`
//! crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal implementation under the same crate name. It
//! covers exactly the surface the other crates call:
//!
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`rngs::SmallRng`] — xoshiro256++, as in upstream `rand 0.8` on
//!   64-bit platforms
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//!
//! The generator core (xoshiro256++ with SplitMix64 seeding) and the
//! sampling algorithms (sign-test booleans, widening-multiply integer
//! ranges, `p * 2^64` Bernoulli) follow `rand 0.8.5` /
//! `rand_xoshiro 0.6` so that seeded streams reproduce the values the
//! workspace's calibrated tests and experiment tables were recorded
//! with.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 pseudorandom bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudorandom bits (truncation, as `rand_xoshiro`
    /// implements it for the `++` generators).
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_standard_32!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_64!(u64, usize, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // sign test on the most significant bit of a u32, as upstream
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a [`Rng::gen_range`] call can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Upstream `UniformInt` sampling: widening multiply with rejection of
/// the biased low-word zone. `$large` is the sampled word type and
/// `$wide` its double width.
macro_rules! impl_sample_range_int {
    ($($t:ty => $unsigned:ty, $large:ty, $wide:ty, $draw:ident);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range =
                    (high.wrapping_sub(low) as $unsigned as $large).wrapping_add(1);
                if range == 0 {
                    // the full type range
                    return <$t as Standard>::sample(rng);
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$draw() as $large;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> <$large>::BITS) as $large;
                    let lo = wide as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u32, u64, next_u32;
    u16 => u16, u32, u64, next_u32;
    u32 => u32, u32, u64, next_u32;
    i8 => u8, u32, u64, next_u32;
    i16 => u16, u32, u64, next_u32;
    i32 => u32, u32, u64, next_u32;
    u64 => u64, u64, u128, next_u64;
    i64 => u64, u64, u128, next_u64;
    usize => usize, u64, u128, next_u64;
    isize => usize, u64, u128, next_u64;
);

macro_rules! impl_sample_range_float {
    ($($t:ty, $bits_to_discard:expr, $draw:ident, $exp_bits:expr);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // upstream UniformFloat: uniform mantissa in [1, 2),
                // shifted to [0, 1), then scaled
                let value0_1 = (rng.$draw() >> $bits_to_discard) as $t
                    / (1u64 << $exp_bits) as $t;
                let scale = self.end - self.start;
                let result = value0_1 * scale + self.start;
                if result < self.end { result } else { self.end }
            }
        }
    )*};
}
impl_sample_range_float!(
    f64, 12, next_u64, 52;
    f32, 9, next_u32, 23;
);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (upstream Bernoulli: compare one
    /// `u64` draw against `p * 2^64`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator — bit-compatible with
    /// upstream `rand 0.8`'s `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start all-zero; fall back as
                // rand_xoshiro does
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion, exactly as `rand_xoshiro` seeds
        /// xoshiro256++.
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn matches_upstream_xoshiro256pp_reference() {
        // xoshiro256++ reference vector: state seeded via SplitMix64(0)
        // must reproduce the sequence of the reference implementation,
        // which is what rand 0.8's SmallRng::seed_from_u64(0) produces.
        let mut rng = SmallRng::seed_from_u64(0);
        let expected: [u64; 4] = [
            0x53175d61490b23df,
            0x61da6f3dc380d507,
            0x5c0fdf91ec9a7bfc,
            0x02eebf8c3bbe5e1a,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let z = rng.gen_range(0i32..8);
            assert!((0..8).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_sampling_is_unbiased_enough() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((800..1200).contains(&hits), "p=0.1 gave {hits}/10000");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn bool_and_float_sampling() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((400..600).contains(&trues));
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_access_works() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let r: &mut dyn RngCore = &mut rng;
        let _ = draw(r);
    }
}
