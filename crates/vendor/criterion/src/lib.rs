//! Vendored, dependency-free stand-in for the parts of `criterion`
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal implementation under the same crate name. It
//! runs each benchmark for the configured sample count, reports
//! mean/min wall-clock time per iteration on stdout, and skips all of
//! upstream criterion's statistics, plotting and baseline machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in
/// [`Bencher::iter_batched`]; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; batch many per measurement.
    SmallInput,
    /// Large setup output; batch few per measurement.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration (bounded by one warm-up iteration
    /// minimum).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, &id, f);
        self
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &id, f);
        self
    }

    /// Ends the group (upstream emits summaries here; a no-op).
    pub fn finish(self) {}
}

fn run_bench<F>(criterion: &Criterion, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(criterion.sample_size),
        warmed_up: false,
    };
    // one warm-up pass, then the measured samples
    f(&mut bencher);
    bencher.warmed_up = true;
    let deadline = Instant::now() + criterion.measurement_time;
    for _ in 0..criterion.sample_size {
        f(&mut bencher);
        if Instant::now() >= deadline {
            break;
        }
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<40} mean {:>12} min {:>12} ({} samples)",
        format_time(mean),
        format_time(min),
        samples.len()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Passed to benchmark closures; records per-iteration timings.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    warmed_up: bool,
}

impl Bencher {
    /// Times `routine`, called once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.record(start.elapsed(), 1);
    }

    /// Times `routine` on a fresh `setup()` output, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.record(start.elapsed(), 1);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        if self.warmed_up {
            self.samples.push(elapsed.as_secs_f64() / iters as f64);
        }
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
