//! Vendored, dependency-light stand-in for the parts of `proptest`
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal implementation under the same crate name. It
//! supports the subset the property tests here rely on:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`)
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] / [`prop_oneof!`]
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`],
//!   [`arbitrary::any`], integer-range strategies and
//!   [`collection::vec`] / [`collection::btree_set`]
//!
//! There is **no shrinking**: a failing case panics with the generated
//! inputs' debug representation instead of a minimized counterexample.
//! Generation is fully deterministic per test name, so failures
//! reproduce exactly.

#![forbid(unsafe_code)]

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Support code for the exported macros.
pub mod test_runner {
    /// How a single generated case ended.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and does not count.
        Reject(String),
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// A rejected assumption.
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[non_exhaustive]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic RNG driving strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// Seeds the generator from a test name so every test has its
        /// own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(<rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                h,
            ))
        }

        /// The next 64 pseudorandom bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.0)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A reusable recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no shrinking; `generate` draws
    /// one value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (the [`prop_oneof!`]
    /// expansion).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// A uniform union; `options` must be non-empty.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: exact or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from the range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with `size` elements (exact or ranged).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; retries duplicates up to a
    /// bounded number of attempts, then settles for fewer elements.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 50 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `BTreeSet` strategy with `size` elements (exact or ranged).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)*),
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)*),
                ),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that runs the body over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@config($config:expr)) => {};
    (@config($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name),
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name),
                    accepted,
                    config.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let inputs = format!(
                    concat!("{{", $(" ", stringify!($arg), " = {:?}",)* " }}"),
                    $(&$arg),*
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "proptest `{}` failed after {} cases: {}\ninputs: {}",
                            stringify!($name),
                            accepted,
                            message,
                            inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_each! { @config($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(limit: usize) -> impl Strategy<Value = usize> {
        (0..limit / 2).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..24, k in 1u64..64) {
            prop_assert!((3..24).contains(&n));
            prop_assert!((1..64).contains(&k));
        }

        #[test]
        fn mapped_strategies(e in evens(100)) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<bool>(), 1..30),
            s in crate::collection::btree_set(0usize..16, 1..6),
        ) {
            prop_assert!((1..30).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 6);
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 3 == 0);
            prop_assert_eq!(n % 3, 0, "kept case must satisfy the assumption, n={}", n);
        }

        #[test]
        fn oneof_picks_every_arm(c in prop_oneof![Just('0'), Just('1'), Just('X')]) {
            prop_assert!(c == '0' || c == '1' || c == 'X');
            prop_assert_ne!(c, 'q');
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
