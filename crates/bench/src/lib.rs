//! Shared harness utilities for the paper-reproduction benches.
//!
//! Every `cargo bench -p ss-bench --bench <tableN|fig4|hardware>`
//! target prints the corresponding table/figure of the DATE 2008 paper
//! with **measured** columns next to the **paper-reported** values.
//!
//! # Workload scaling
//!
//! The paper's experiments ran "a few minutes" per circuit on a 2008
//! Pentium; a full five-circuit sweep here is likewise minutes of CPU.
//! To keep `cargo bench` snappy the harness scales the synthetic test
//! sets by `SS_SCALE` (default 0.25 — a quarter of the profile's cube
//! count). Set `SS_SCALE=1` for full-size runs; `EXPERIMENTS.md`
//! records which scale produced the committed numbers. Scaling shrinks
//! seed counts roughly proportionally but leaves every *trend* (who
//! wins, how results move with k, S and L) intact.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Instant;

use ss_core::{Engine, PipelineReport};
use ss_testdata::{generate_test_set, CubeProfile, TestSet, WorkloadRegistry, CORPUS_SEED};

/// Workload scale factor from `SS_SCALE` (default 0.25, clamped to
/// `(0, 1]`).
pub fn scale() -> f64 {
    std::env::var("SS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|s| s.clamp(0.01, 1.0))
        .unwrap_or(0.25)
}

/// Deterministic workload seed shared by all benches — the corpus
/// registry's canonical seed, so bench workloads and registry
/// workloads are the same bits.
pub const WORKLOAD_SEED: u64 = CORPUS_SEED;

/// The five paper circuits at the harness scale.
pub fn scaled_circuits() -> Vec<CubeProfile> {
    CubeProfile::paper_circuits()
        .into_iter()
        .map(|p| p.scaled(scale()))
        .collect()
}

/// The test set for a (possibly scaled) profile, pulled from the
/// named workload corpus.
///
/// Every paper profile is a registry entry
/// ([`WorkloadRegistry::find`] by `profile.name`), so benches, tests
/// and docs all run the same named bits; a scaled profile maps to the
/// corpus entry's prefix (`Workload::test_set_scaled`'s documented
/// truncation-equals-scaled-generation contract). Profiles without a
/// registry entry fall back to direct generation at [`WORKLOAD_SEED`].
pub fn workload(profile: &CubeProfile) -> TestSet {
    match WorkloadRegistry::find(profile.name) {
        Some(w) => w.test_set_prefix(profile.cube_count),
        None => generate_test_set(profile, WORKLOAD_SEED),
    }
}

/// Runs the full State Skip flow for a profile at `(L, S, k)` through
/// the staged [`Engine`], using the paper's LFSR size for that
/// circuit. Intrinsically unencodable cubes (see
/// [`ss_core::HardwareCtx::encodable_subset`]) are dropped first and
/// their count reported on stderr — the paper's real test sets
/// contained none at these LFSR sizes.
///
/// # Panics
///
/// Panics on engine errors — benches want loud failures.
pub fn run_profile(
    profile: &CubeProfile,
    set: &TestSet,
    window: usize,
    segment: usize,
    speedup: u64,
) -> PipelineReport {
    let engine = Engine::builder()
        .window(window)
        .segment(segment)
        .speedup(speedup)
        .lfsr_size(profile.lfsr_size)
        .build()
        .unwrap_or_else(|e| panic!("{}: engine setup failed: {e}", profile.name));
    let (encodable, dropped) = engine
        .encodable_subset(set)
        .unwrap_or_else(|e| panic!("{}: hardware synthesis failed: {e}", profile.name));
    if !dropped.is_empty() {
        eprintln!(
            "note: {}: dropped {} intrinsically unencodable cube(s) of {} (n = {})",
            profile.name,
            dropped.len(),
            set.len(),
            profile.lfsr_size
        );
    }
    engine
        .run(&encodable)
        .unwrap_or_else(|e| panic!("{}: engine run failed: {e}", profile.name))
}

/// Best State-Skip reduction over a parameter sweep, reusing one
/// encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepBest {
    /// TSL of the plain window-based scheme.
    pub orig: u64,
    /// Best proposed TSL found.
    pub prop: u64,
    /// Segment size that achieved it.
    pub segment: usize,
    /// Speedup factor that achieved it.
    pub speedup: u64,
}

/// Sweeps segment sizes and speedup factors over an existing pipeline
/// report (the encoding and embedding map are fixed; only the segment
/// plan and traversal are recomputed — exactly the paper's experiment
/// structure).
pub fn best_reduction(
    report: &PipelineReport,
    scan_depth: usize,
    segments: &[usize],
    speedups: &[u64],
) -> SweepBest {
    let orig = report.tsl_original;
    let mut best: Option<SweepBest> = None;
    for &segment in segments {
        let plan = ss_core::SegmentPlan::build(&report.embedding, segment);
        for &speedup in speedups {
            let prop = plan.tsl(speedup, scan_depth).vectors;
            if best.is_none_or(|b| prop < b.prop) {
                best = Some(SweepBest {
                    orig,
                    prop,
                    segment,
                    speedup,
                });
            }
        }
    }
    best.expect("non-empty sweep")
}

/// Prints a standard bench header with the scale disclosure.
pub fn banner(what: &str) {
    println!("=== {what} ===");
    println!(
        "workload: synthetic profiles at SS_SCALE={} (see DESIGN.md substitutions; SS_SCALE=1 for full size)",
        scale()
    );
    println!();
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_clamped() {
        // without the env var the default applies
        let s = scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn scaled_circuits_have_five_entries() {
        assert_eq!(scaled_circuits().len(), 5);
    }

    #[test]
    fn registry_workload_equals_direct_generation() {
        // the registry-backed path must produce the exact bits the old
        // direct-generation path produced, scaled or not
        for factor in [1.0, 0.25] {
            let profile = CubeProfile::s13207().scaled(factor);
            assert_eq!(
                workload(&profile),
                generate_test_set(&profile, WORKLOAD_SEED),
                "factor {factor}"
            );
        }
    }

    #[test]
    fn run_profile_smoke() {
        let profile = CubeProfile::mini();
        let set = workload(&profile);
        let report = run_profile(&profile, &set, 10, 2, 4);
        assert!(report.seeds > 0);
    }
}
