//! Timing probe: how long does one pipeline run take per circuit and
//! window size at the current `SS_SCALE`? Used to calibrate the bench
//! harness (not part of the paper's tables).
//!
//! ```text
//! SS_SCALE=0.25 cargo run --release -p ss-bench --bin probe
//! ```

use ss_bench::{banner, run_profile, timed, workload};
use ss_core::Table;
use ss_testdata::CubeProfile;

fn main() {
    banner("timing probe");
    let mut table = Table::new([
        "circuit", "cubes", "L", "seeds", "TDV", "TSL prop", "seconds",
    ]);
    let circuits: Vec<CubeProfile> = std::env::args()
        .nth(1)
        .map(|name| {
            ss_bench::scaled_circuits()
                .into_iter()
                .filter(|p| p.name == name)
                .collect()
        })
        .unwrap_or_else(ss_bench::scaled_circuits);
    for profile in circuits {
        let set = workload(&profile);
        for window in [50usize, 200] {
            let (report, secs) = timed(|| run_profile(&profile, &set, window, 5, 20));
            table.add_row([
                profile.name.to_string(),
                set.len().to_string(),
                window.to_string(),
                report.seeds.to_string(),
                report.tdv.to_string(),
                report.tsl_proposed.to_string(),
                format!("{secs:.2}"),
            ]);
            eprintln!(
                "  L={window}: useful segments {} over {} seeds ({:.2}/seed), impr {:.1}%, mean embeddings {:.1}",
                report.plan.total_useful(),
                report.seeds,
                report.plan.total_useful() as f64 / report.seeds as f64,
                report.improvement_percent,
                report.embedding.mean_embeddings(),
            );
        }
    }
    println!("{table}");
}
