//! Section 4 hardware overhead numbers.
//!
//! * State Skip circuit GE vs. k for the s13207 LFSR (paper: 52 GE at
//!   k = 12 rising to 119 GE at k = 32);
//! * the shared "rest of the decompressor" (paper: ~320 GE);
//! * Mode Select GE over 50 <= L <= 500 and 2 <= S <= 50 (paper:
//!   44-262 GE);
//! * the 5-core SoC case study at L = 200, S = 10, k = 10 (paper:
//!   Mode Select 107-373 GE per core, everything else shared).
//!
//! ```text
//! cargo bench -p ss-bench --bench hardware
//! ```

use ss_bench::{banner, run_profile, scaled_circuits, workload};
use ss_core::{ModeSelect, SegmentPlan, Table};
use ss_gf2::primitive_poly;
use ss_lfsr::{CostModel, GateCount, Lfsr, SkipCircuit};

fn main() {
    banner("Section 4: hardware overhead");
    let model = CostModel::default();

    // --- State Skip circuit GE vs k (n = 24, s13207's LFSR) ---
    let lfsr24 = Lfsr::fibonacci(primitive_poly(24).expect("tabulated degree"));
    let mut skip_table = Table::new(["k", "raw XOR2", "shared XOR2", "skip GE (incl. muxes)"]);
    for k in [8u64, 12, 16, 24, 32] {
        let skip = SkipCircuit::new(&lfsr24, k).expect("k >= 1");
        let net = skip.synthesize();
        let ge = model.ge(&GateCount::skip_frontend(24, net.gate_count()));
        skip_table.add_row([
            k.to_string(),
            skip.raw_xor2_count().to_string(),
            net.gate_count().to_string(),
            format!("{ge:.0}"),
        ]);
    }
    println!("{skip_table}");
    println!("paper: State Skip circuit grows from 52 GE (k=12) to 119 GE (k=32) for s13207.\n");

    // --- Mode Select GE over (L, S) for s13207 ---
    let profile = scaled_circuits().remove(1);
    assert_eq!(profile.name, "s13207");
    let set = workload(&profile);
    let mut ms_table = Table::new(["L", "S", "useful segs", "ModeSelect GE", "shared GE"]);
    let mut ms_min = f64::MAX;
    let mut ms_max: f64 = 0.0;
    for window in [50usize, 200, 500] {
        let report = run_profile(&profile, &set, window, 2, 10);
        for segment in [2usize, 10, 50] {
            if segment > window {
                continue;
            }
            let plan = SegmentPlan::build(&report.embedding, segment);
            let ms = ModeSelect::from_plan(&plan);
            let ge = model.ge(&ms.gate_count());
            ms_min = ms_min.min(ge);
            ms_max = ms_max.max(ge);
            ms_table.add_row([
                window.to_string(),
                segment.to_string(),
                plan.total_useful().to_string(),
                format!("{ge:.0}"),
                format!("{:.0}", report.cost.shared_ge()),
            ]);
        }
    }
    println!("{ms_table}");
    println!(
        "measured Mode Select range: {ms_min:.0}-{ms_max:.0} GE (paper: 44-262 GE over 50<=L<=500, 2<=S<=50)"
    );
    println!("paper: rest of the decompressor (shared) ~320 GE for s13207.\n");

    // --- 5-core SoC case study: L = 200, S = 10, k = 10 ---
    let mut soc_table = Table::new(["core", "LFSR n", "ModeSelect GE"]);
    let mut shared: f64 = 0.0;
    let mut skip_ge: f64 = 0.0;
    let mut ms_lo = f64::MAX;
    let mut ms_hi: f64 = 0.0;
    for profile in scaled_circuits() {
        let set = workload(&profile);
        let report = run_profile(&profile, &set, 200, 10, 10);
        shared = shared.max(report.cost.shared_ge());
        skip_ge = skip_ge.max(report.cost.skip_ge());
        let ge = report.cost.mode_select_ge();
        ms_lo = ms_lo.min(ge);
        ms_hi = ms_hi.max(ge);
        soc_table.add_row([
            profile.name.to_string(),
            profile.lfsr_size.to_string(),
            format!("{ge:.0}"),
        ]);
    }
    println!("{soc_table}");
    println!(
        "SoC: shared decompressor {shared:.0} GE + skip {skip_ge:.0} GE; per-core Mode Select {ms_lo:.0}-{ms_hi:.0} GE"
    );
    println!("paper: Mode Select 107-373 GE per core; decompressor = 6.6% of SoC area.");
}
