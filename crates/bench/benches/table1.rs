//! Table 1 — Classical vs. window-based LFSR reseeding.
//!
//! For each circuit: LFSR size, TDV (bits) and TSL (vectors) for the
//! classical scheme (L = 1) and window-based reseeding with L = 50,
//! 200 and 500. Paper-reported values are printed beside the measured
//! ones.
//!
//! ```text
//! cargo bench -p ss-bench --bench table1            # scaled workload
//! SS_SCALE=1 cargo bench -p ss-bench --bench table1 # full size
//! ```

use ss_bench::{banner, run_profile, scaled_circuits, timed, workload};
use ss_core::{Table, PAPER_TABLE1};

fn main() {
    banner("Table 1: classical vs window-based LFSR reseeding");
    let windows = [1usize, 50, 200, 500];
    let mut table = Table::new([
        "circuit",
        "LFSR",
        "L",
        "TDV meas",
        "TDV paper",
        "TSL meas",
        "TSL paper",
    ]);
    let mut total_secs = 0.0;
    for (profile, &(paper_name, paper_n, paper_entries)) in
        scaled_circuits().iter().zip(PAPER_TABLE1)
    {
        assert_eq!(profile.name, paper_name);
        let set = workload(profile);
        for (wi, &window) in windows.iter().enumerate() {
            let ((tdv, tsl), secs) = timed(|| {
                // classical and window-based alike run through the same
                // encoder; L=1 degenerates to classical reseeding
                let report = run_profile(profile, &set, window, 1.max(window / 10), 1);
                (report.tdv, report.tsl_original)
            });
            total_secs += secs;
            let (paper_l, paper_tdv, paper_tsl) = paper_entries[wi];
            assert_eq!(paper_l, window);
            table.add_row([
                profile.name.to_string(),
                paper_n.to_string(),
                window.to_string(),
                tdv.to_string(),
                paper_tdv.to_string(),
                tsl.to_string(),
                paper_tsl.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("total encoding time: {total_secs:.1}s");
    println!("expected shape: TDV falls and TSL grows as L increases, for every circuit.");
}
