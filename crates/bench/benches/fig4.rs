//! Fig. 4 — TSL improvement vs. speedup factor k, for various segment
//! sizes S (bars, L = 300) and window sizes L (curves, S = 5), on
//! s13207.
//!
//! ```text
//! cargo bench -p ss-bench --bench fig4
//! SS_SCALE=1 cargo bench -p ss-bench --bench fig4   # full size
//! ```

use ss_bench::{banner, run_profile, timed, workload};
use ss_core::{improvement_percent, SegmentPlan, Table};
use ss_testdata::CubeProfile;

fn main() {
    banner("Fig. 4: TSL improvement vs k (s13207)");
    let profile = CubeProfile::s13207().scaled(ss_bench::scale());
    let set = workload(&profile);
    let r = set.config().depth();
    let ks: Vec<u64> = (3..=24).step_by(3).collect();

    // --- bars: S in {4, 10, 12, 20}, L = 300 ---
    let ((report300, impr_by_s), secs1) = timed(|| {
        let report = run_profile(&profile, &set, 300, 5, 10);
        let mut rows = Vec::new();
        for segment in [4usize, 10, 12, 20] {
            let plan = SegmentPlan::build(&report.embedding, segment);
            let per_k: Vec<f64> = ks
                .iter()
                .map(|&k| improvement_percent(report.tsl_original, plan.tsl(k, r).vectors))
                .collect();
            rows.push((segment, per_k));
        }
        (report, rows)
    });
    let mut bars = Table::new({
        let mut h = vec!["S \\ k".to_string()];
        h.extend(ks.iter().map(|k| format!("k={k}")));
        h
    });
    for (segment, per_k) in &impr_by_s {
        let mut row = vec![format!("S={segment} (L=300)")];
        row.extend(per_k.iter().map(|i| format!("{i:.1}%")));
        bars.add_row(row);
    }
    println!("{bars}");
    println!(
        "paper (bars): 69-78% at k=3 rising to 80-93% at k=24; improvement grows as S shrinks.\n"
    );

    // --- curves: L in {50, 100, 300, 500}, S = 5 ---
    let (curve_rows, secs2) = timed(|| {
        let mut rows = Vec::new();
        for window in [50usize, 100, 300, 500] {
            // reuse the L=300 encoding where possible
            let report;
            let r300;
            let report_ref = if window == 300 {
                r300 = &report300;
                r300
            } else {
                report = run_profile(&profile, &set, window, 5, 10);
                &report
            };
            let plan = SegmentPlan::build(&report_ref.embedding, 5);
            let per_k: Vec<f64> = ks
                .iter()
                .map(|&k| improvement_percent(report_ref.tsl_original, plan.tsl(k, r).vectors))
                .collect();
            rows.push((window, per_k));
        }
        rows
    });
    let mut curves = Table::new({
        let mut h = vec!["L \\ k".to_string()];
        h.extend(ks.iter().map(|k| format!("k={k}")));
        h
    });
    for (window, per_k) in &curve_rows {
        let mut row = vec![format!("L={window} (S=5)")];
        row.extend(per_k.iter().map(|i| format!("{i:.1}%")));
        curves.add_row(row);
    }
    println!("{curves}");
    println!("paper (curves): improvement rises with L; every curve rises with k.");
    println!("total time: {:.1}s", secs1 + secs2);
}
