//! `packed_vs_scalar`: throughput of the bit-packed 64-lane engine
//! against the one-pattern-at-a-time scalar oracles, on the standard
//! workloads.
//!
//! Three kernels are compared, each pinned bit-identical to its oracle
//! by property tests (`tests/packed_props.rs`):
//!
//! * **fsim** — fault-dropped coverage of a random pattern list
//!   ([`FaultSimulator::coverage_packed`] vs
//!   [`FaultSimulator::coverage_scalar`]);
//! * **expand** — seed-window expansion
//!   ([`ss_core::try_expand_seed_packed`] vs
//!   [`ss_core::try_expand_seed`]);
//! * **embed** — fortuitous-embedding detection
//!   ([`ss_core::EmbeddingMap::build`] vs
//!   [`EmbeddingMap::build_scalar`](ss_core::EmbeddingMap::build_scalar)).
//!
//! Besides the criterion console output, the run records the measured
//! throughput ratios in `BENCH_packed.json` at the workspace root —
//! the first entry of the repo's bench-baseline trajectory. CI uploads
//! the file as an artifact.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ss_circuit::{random_circuit, CircuitSpec, FaultList, FaultSimulator};
use ss_core::{try_expand_seed, EmbeddingMap, Engine, PackedWindowExpander, Table};
use ss_gf2::{BitVec, PackedPatterns};
use ss_testdata::{generate_test_set, CubeProfile};

/// Seconds per iteration: one warm-up call, then at least one measured
/// iteration, continuing until ~300 ms of samples are collected.
fn time_per_iter<T>(mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if start.elapsed() >= Duration::from_millis(300) || iters >= 1000 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

struct Row {
    name: String,
    work_items: usize,
    scalar_s: f64,
    packed_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.packed_s
    }
}

fn fsim_rows(rows: &mut Vec<Row>) {
    for (spec, patterns) in [
        (CircuitSpec::tiny(), 2048usize),
        (CircuitSpec::mini(), 1024),
        (CircuitSpec::s9234_like(), 256),
    ] {
        let netlist = random_circuit(&spec, ss_bench::WORKLOAD_SEED);
        let faults = FaultList::collapsed(&netlist);
        let fsim = FaultSimulator::new(&netlist);
        let mut rng = SmallRng::seed_from_u64(ss_bench::WORKLOAD_SEED);
        let list: Vec<Vec<bool>> = (0..patterns)
            .map(|_| (0..netlist.input_count()).map(|_| rng.gen()).collect())
            .collect();
        let packed = PackedPatterns::from_bools(netlist.input_count(), &list);
        let scalar_s = time_per_iter(|| fsim.coverage_scalar(&faults, &list));
        let packed_s = time_per_iter(|| fsim.coverage_packed(&faults, &packed));
        rows.push(Row {
            name: format!("fsim/{}", spec.name),
            work_items: patterns,
            scalar_s,
            packed_s,
        });
    }
}

fn expand_rows(rows: &mut Vec<Row>) {
    let set = generate_test_set(&CubeProfile::mini(), ss_bench::WORKLOAD_SEED);
    let engine = Engine::builder().window(128).segment(4).build().unwrap();
    let ctx = engine.synthesize(&set).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let seed = BitVec::random(ctx.lfsr_size(), &mut rng);
    let window = 128;
    let scalar_s = time_per_iter(|| {
        try_expand_seed(ctx.lfsr(), ctx.shifter(), set.config(), &seed, window).unwrap()
    });
    // production path: the expander is built once per hardware and
    // amortised over every seed (as EmbeddingMap::build does)
    let expander =
        PackedWindowExpander::new(ctx.lfsr(), ctx.shifter(), set.config(), window).unwrap();
    let packed_s = time_per_iter(|| expander.expand(&seed).unwrap());
    rows.push(Row {
        name: "expand/mini-L128".to_string(),
        work_items: window,
        scalar_s,
        packed_s,
    });
}

fn embed_rows(rows: &mut Vec<Row>) {
    let set = generate_test_set(&CubeProfile::mini(), ss_bench::WORKLOAD_SEED);
    let engine = Engine::builder().window(64).segment(4).build().unwrap();
    let encoded = engine.encode(&set).expect("standard workload encodes");
    let (lfsr, shifter) = (encoded.ctx().lfsr(), encoded.ctx().shifter());
    let scalar_s =
        time_per_iter(|| EmbeddingMap::build_scalar(&set, encoded.encoding(), lfsr, shifter));
    let packed_s = time_per_iter(|| EmbeddingMap::build(&set, encoded.encoding(), lfsr, shifter));
    rows.push(Row {
        name: "embed/mini-L64".to_string(),
        work_items: encoded.seed_count() * 64,
        scalar_s,
        packed_s,
    });
}

fn write_json(rows: &[Row]) {
    let mut entries = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"name\": \"{}\", \"work_items\": {}, \"scalar_s\": {:.6e}, \"packed_s\": {:.6e}, \"speedup\": {:.2}}}",
            row.name,
            row.work_items,
            row.scalar_s,
            row.packed_s,
            row.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"packed_vs_scalar\",\n  \"command\": \"cargo bench -p ss-bench --bench packed_vs_scalar\",\n  \"ss_scale\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        ss_bench::scale(),
        entries
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_packed.json");
    std::fs::write(path, json).expect("write BENCH_packed.json");
    println!("\nwrote {path}");
}

fn bench_packed_vs_scalar(c: &mut Criterion) {
    ss_bench::banner("packed vs scalar: 64-lane bit-parallel engine throughput");

    let mut rows = Vec::new();
    fsim_rows(&mut rows);
    expand_rows(&mut rows);
    embed_rows(&mut rows);

    let mut table = Table::new(["kernel", "items", "scalar", "packed", "speedup"]);
    for row in &rows {
        table.add_row([
            row.name.clone(),
            row.work_items.to_string(),
            format!("{:.3} ms", row.scalar_s * 1e3),
            format!("{:.3} ms", row.packed_s * 1e3),
            format!("{:.1}x", row.speedup()),
        ]);
    }
    println!("{table}");
    write_json(&rows);

    // criterion samples of the packed kernels themselves, for trending
    let netlist = random_circuit(&CircuitSpec::mini(), ss_bench::WORKLOAD_SEED);
    let faults = FaultList::collapsed(&netlist);
    let fsim = FaultSimulator::new(&netlist);
    let mut rng = SmallRng::seed_from_u64(ss_bench::WORKLOAD_SEED);
    let list: Vec<Vec<bool>> = (0..1024)
        .map(|_| (0..netlist.input_count()).map(|_| rng.gen()).collect())
        .collect();
    let packed = PackedPatterns::from_bools(netlist.input_count(), &list);
    let mut group = c.benchmark_group("packed_vs_scalar");
    group.bench_function("fsim_packed/mini_1024p", |b| {
        b.iter(|| fsim.coverage_packed(&faults, &packed))
    });
    group.bench_function("pack_1024p/mini", |b| {
        b.iter(|| PackedPatterns::from_bools(netlist.input_count(), &list))
    });
    group.finish();
}

criterion_group!(benches, bench_packed_vs_scalar);
criterion_main!(benches);
