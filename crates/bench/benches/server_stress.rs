//! `server_stress`: the loopback serving benchmark — cold vs
//! warm-disk vs warm-memory latency per registry workload, and
//! throughput as concurrent clients fan over the corpus at several
//! worker-pool widths.
//!
//! Two measurements, both against a real `ss-server` over loopback
//! TCP at the golden-conformance knobs (`L=24, S=4, k=6`):
//!
//! * **cold vs warm-disk vs warm-memory** — every registry workload is
//!   submitted cold against a store-backed server (miss everywhere:
//!   synthesis + encode + embed + segment, then written through to the
//!   artifact store); the server is then *restarted* on the same store
//!   directory and the workload resubmitted, so the first answer comes
//!   from the persistent tier (disk read + table rebuild + embed +
//!   segment); repeats on the live server hit the in-memory LRU. The
//!   bench *asserts* each warm tier is flagged, digests are equal to
//!   the cold run, and warm-disk is strictly faster than cold on every
//!   workload — so a regression in either cache tier fails CI loudly.
//! * **throughput vs workers** — N concurrent clients each stream the
//!   whole corpus through one server; wall-clock jobs/sec is recorded
//!   per worker-pool width. Every job must come back `Done` with the
//!   digest its workload produced cold — the server may never drop or
//!   corrupt a job under concurrent load.
//! * **fleet vs shard count** — the same balanced workload runs
//!   against 1, 2 and 4 shards whose *per-shard* cache is sized below
//!   the workload's measured working set. Sharding's scaling axis here
//!   is aggregate cache capacity (the artifacts are pure functions of
//!   their content key, so each key lives on exactly one owner): a
//!   single shard thrashes its LRU and re-pays cold synthesis, while
//!   the 4-shard fleet holds the whole working set and answers from
//!   warm memory. On a multi-core host the fleet also scales compute;
//!   the capacity effect makes the row meaningful even on one core.
//! * **replicated failover** — a 3-shard fleet with replication
//!   factor 2 is warmed, one shard is killed, and the full key
//!   population is timed against the degraded fleet. Asserted: every
//!   answer stays bit-identical and costs zero cold re-synthesis
//!   (failover lands on warm replicas), with the healthy:degraded
//!   wall-clock ratio recorded as the price of the death.
//! * **trace overhead** — the warm-memory corpus is timed twice
//!   against one server: once with per-job tracing (the default, every
//!   job stamps a trace id and the server records spans into its ring)
//!   and once with the client's tracing disabled (trace id 0, the
//!   server's span path short-circuits before taking any lock). Both
//!   passes run best-of-`TRACE_ROUNDS`; the bench *asserts* the traced
//!   pass stays within 5% of the untraced one, pinning the
//!   tracing-on-by-default overhead contract in CI.
//!
//! Results land in `BENCH_server.json` at the workspace root, next to
//! `BENCH_packed.json` and `BENCH_encode.json`.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use ss_core::{Engine, Table};
use ss_server::{
    Balancer, CacheTier, Client, CodecCounters, JobReport, JobSpec, RetryPolicy, ServeOptions,
    Server, ServerHandle, ShardSpec,
};
use ss_testdata::{generate_test_set, CubeProfile, Workload, WorkloadRegistry};

const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;
const CACHED_REPEATS: usize = 3;
const CLIENTS: usize = 8;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];
/// Profile workloads run at the golden scale in the throughput fan-out
/// so one round of the corpus is milliseconds, not minutes.
const THROUGHPUT_PROFILE_SCALE: f64 = 0.1;

/// Fleet sweep: shard counts, key population, balanced clients, and
/// the per-shard cache as a fraction of the measured working set —
/// under 1.0 so one shard cannot hold the workload, while at 4 shards
/// even a lopsided rendezvous spread (the ring hashes ephemeral-port
/// addresses, so the split varies run to run) leaves every owner's
/// slice of the 32 keys inside its budget.
const FLEET_SWEEP: [usize; 3] = [1, 2, 4];
const FLEET_KEYS: u64 = 32;
const FLEET_CLIENTS: usize = 4;
const FLEET_DRAWS: usize = 48;
const FLEET_CACHE_FRACTION: f64 = 0.5;
/// Cube-count scale on the s9234 profile for fleet keys. The profile
/// choice shapes the cold:warm cost gap the capacity-scaling
/// assertion depends on: a miss re-pays synthesis + encode over the
/// full 247-cell scan geometry, while a hit re-pays only the cheap
/// stages, which scale with the (deliberately small) cube count.
const FLEET_PROFILE_SCALE: f64 = 0.1;

/// The spec a registry workload submits: profiles at `scale` with
/// their paper LFSR size, file workloads full size with the default
/// (smax-derived) LFSR — the same shapes the golden corpus pins.
fn spec_for(w: &Workload, scale: f64) -> JobSpec {
    let set = if w.profile().is_some() {
        w.test_set_scaled(scale)
    } else {
        w.test_set()
    };
    let mut builder = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP);
    if let Some(profile) = w.profile() {
        builder = builder.lfsr_size(profile.lfsr_size);
    }
    let engine = builder.build().expect("bench knobs are valid");
    JobSpec::new(&set, engine.config())
}

/// Mid-exchange disconnects survived via the typed retryable error
/// (`ClientError::Disconnected`) — reported in `BENCH_server.json` so
/// a flaky loopback shows up in the record instead of a flaky bench.
static DISCONNECT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Runs a job, transparently reconnecting on a retryable mid-exchange
/// disconnect and counting the event. Submissions are idempotent under
/// the content-addressed cache, so a retry costs at most a cache hit.
fn run_resilient(client: &mut Client, addr: SocketAddr, spec: &JobSpec) -> (u64, JobReport) {
    for _ in 0..3 {
        match client.run(spec) {
            Ok(done) => return done,
            Err(err) if err.is_retryable() => {
                DISCONNECT_RETRIES.fetch_add(1, Ordering::Relaxed);
                *client = Client::connect(addr).expect("reconnect after disconnect");
            }
            Err(err) => panic!("job failed: {err}"),
        }
    }
    panic!("job still disconnecting after 3 attempts");
}

struct LatencyRow {
    name: String,
    cubes: u64,
    cold_s: f64,
    warm_disk_s: f64,
    warm_mem_s: f64,
}

impl LatencyRow {
    fn disk_speedup(&self) -> f64 {
        self.cold_s / self.warm_disk_s
    }

    fn mem_speedup(&self) -> f64 {
        self.cold_s / self.warm_mem_s
    }
}

fn serve_with_store(dir: &std::path::Path) -> ServerHandle {
    Server::bind(&ServeOptions {
        store_dir: Some(dir.to_path_buf()),
        ..ServeOptions::default()
    })
    .expect("bind loopback with store dir")
    .spawn()
}

/// Three-tier latency pass. Generation 1 runs every workload cold and
/// writes the artifacts through to a fresh store directory. Each of
/// `CACHED_REPEATS` further generations restarts the server on that
/// directory and submits every workload once — the first answer per
/// workload per generation comes from the persistent tier (best time
/// kept). The last generation then resubmits each workload
/// `CACHED_REPEATS` times against the live server for the in-memory
/// tier (best time kept).
fn measure_latency() -> Vec<LatencyRow> {
    let dir = std::env::temp_dir().join(format!("ss-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // generation 1: cold + write-through
    let handle = serve_with_store(&dir);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut rows = Vec::new();
    let mut digests = HashMap::new();
    for w in WorkloadRegistry::all() {
        let spec = spec_for(w, ss_bench::scale());
        let (_, cold) = run_resilient(&mut client, handle.addr(), &spec);
        assert_eq!(
            cold.tier,
            CacheTier::Cold,
            "{}: first submission hit a cache",
            w.name
        );
        digests.insert(w.name.to_string(), cold.digest);
        rows.push(LatencyRow {
            name: w.name.to_string(),
            cubes: cold.cubes,
            cold_s: cold.service_micros as f64 / 1e6,
            warm_disk_s: f64::MAX,
            warm_mem_s: f64::MAX,
        });
    }
    handle.shutdown();

    // generations 2..: restart on the populated store; first answer
    // per workload is the disk tier
    for round in 0..CACHED_REPEATS {
        let handle = serve_with_store(&dir);
        let mut client = Client::connect(handle.addr()).expect("reconnect");
        for row in &mut rows {
            let w = WorkloadRegistry::find(&row.name).expect("registry entry");
            let spec = spec_for(w, ss_bench::scale());
            let (_, warm) = run_resilient(&mut client, handle.addr(), &spec);
            assert_eq!(
                warm.tier,
                CacheTier::Disk,
                "{}: restart submission missed the persistent tier",
                row.name
            );
            assert_eq!(
                warm.digest, digests[&row.name],
                "{}: disk result diverged from cold",
                row.name
            );
            row.warm_disk_s = row.warm_disk_s.min(warm.service_micros as f64 / 1e6);
        }
        // last generation: repeats on the live server hit the LRU
        if round == CACHED_REPEATS - 1 {
            for row in &mut rows {
                let w = WorkloadRegistry::find(&row.name).expect("registry entry");
                let spec = spec_for(w, ss_bench::scale());
                for _ in 0..CACHED_REPEATS {
                    let (_, warm) = run_resilient(&mut client, handle.addr(), &spec);
                    assert_eq!(
                        warm.tier,
                        CacheTier::Memory,
                        "{}: repeat submission missed the memory tier",
                        row.name
                    );
                    assert_eq!(
                        warm.digest, digests[&row.name],
                        "{}: memory result diverged from cold",
                        row.name
                    );
                    row.warm_mem_s = row.warm_mem_s.min(warm.service_micros as f64 / 1e6);
                }
            }
        }
        handle.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
    rows
}

struct ThroughputRow {
    workers: usize,
    jobs: usize,
    wall_s: f64,
    /// Codec telemetry of the server after the fan-out: reply
    /// compression ratio and integrity rejects (expected 0 here — the
    /// loopback injects no noise; tests/noise_injection.rs does).
    codec: CodecCounters,
}

impl ThroughputRow {
    fn jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.wall_s
    }
}

/// Fan-out pass: `CLIENTS` threads each submit the whole corpus
/// against a fresh server with `workers` workers; every result is
/// checked against the workload's cold digest.
fn measure_throughput(workers: usize) -> ThroughputRow {
    let handle = Server::bind(&ServeOptions {
        workers,
        ..ServeOptions::default()
    })
    .expect("bind loopback")
    .spawn();
    let specs: Vec<(String, JobSpec)> = WorkloadRegistry::all()
        .iter()
        .map(|w| (w.name.to_string(), spec_for(w, THROUGHPUT_PROFILE_SCALE)))
        .collect();
    let digests: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let specs = &specs;
            let digests = &digests;
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // stagger start positions so clients collide on the
                // cache from different directions
                for i in 0..specs.len() {
                    let (name, spec) = &specs[(i + c) % specs.len()];
                    let (_, report) = run_resilient(&mut client, addr, spec);
                    let mut digests = digests.lock().expect("digest map");
                    let seen = digests.entry(name.clone()).or_insert(report.digest);
                    assert_eq!(
                        *seen, report.digest,
                        "{name}: concurrent submissions disagreed"
                    );
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let jobs = CLIENTS * specs.len();
    let stats = handle.stats();
    assert_eq!(
        stats.jobs_done, jobs as u64,
        "server dropped jobs under concurrent load"
    );
    assert_eq!(
        stats.codec.connections_v3, CLIENTS as u64,
        "every fan-out client negotiates the v3 codec"
    );
    assert_eq!(
        stats.codec.crc_rejects, 0,
        "a clean loopback produced CRC rejects"
    );
    handle.shutdown();
    ThroughputRow {
        workers,
        jobs,
        wall_s,
        codec: stats.codec,
    }
}

/// Best-of rounds for the trace-overhead pair; the minimum wall clock
/// of each mode damps loopback noise so the 5% bound measures the
/// span-recording cost, not scheduler jitter.
const TRACE_ROUNDS: usize = 5;
/// Corpus repeats per timed trace-overhead pass.
const TRACE_REPEATS: usize = 3;
/// The CI contract: traced warm-memory throughput must stay within
/// this factor of untraced.
const TRACE_OVERHEAD_BOUND: f64 = 1.05;

struct TraceOverheadRow {
    jobs: usize,
    traced_wall_s: f64,
    untraced_wall_s: f64,
    spans_recorded: u64,
    spans_evicted: u64,
}

impl TraceOverheadRow {
    fn traced_jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.traced_wall_s
    }

    fn untraced_jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.untraced_wall_s
    }

    /// Traced:untraced wall-clock ratio — 1.00 is free, 1.05 the bound.
    fn overhead(&self) -> f64 {
        self.traced_wall_s / self.untraced_wall_s
    }
}

/// Times the warm-memory corpus with tracing on (the default: every
/// job carries a trace id, the server records spans) against the same
/// corpus with the client's tracing off (trace id 0 on the wire, the
/// server's span path no-ops). Alternating best-of-`TRACE_ROUNDS`
/// passes on one live server, so both modes see identical cache state.
fn measure_trace_overhead() -> TraceOverheadRow {
    let handle = Server::bind(&ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    })
    .expect("bind loopback")
    .spawn();
    let addr = handle.addr();
    let specs: Vec<JobSpec> = WorkloadRegistry::all()
        .iter()
        .map(|w| spec_for(w, THROUGHPUT_PROFILE_SCALE))
        .collect();

    // warm every key into the memory tier, and pin the digests both
    // timed modes must reproduce
    let mut warmer = Client::connect(addr).expect("connect warm-up");
    let digests: Vec<u64> = specs
        .iter()
        .map(|spec| run_resilient(&mut warmer, addr, spec).1.digest)
        .collect();

    let mut traced = Client::connect(addr).expect("connect traced");
    traced.set_tracing(true);
    let mut untraced = Client::connect(addr).expect("connect untraced");
    untraced.set_tracing(false);

    let jobs = specs.len() * TRACE_REPEATS;
    let pass = |client: &mut Client, want_trace: bool| -> f64 {
        let start = Instant::now();
        for _ in 0..TRACE_REPEATS {
            for (spec, digest) in specs.iter().zip(&digests) {
                let (_, report) = run_resilient(client, addr, spec);
                assert_eq!(
                    report.tier,
                    CacheTier::Memory,
                    "overhead pass missed memory"
                );
                assert_eq!(report.digest, *digest, "overhead pass diverged");
                assert_eq!(
                    report.trace != 0,
                    want_trace,
                    "job traced={} but the mode wants traced={}",
                    report.trace != 0,
                    want_trace
                );
            }
        }
        start.elapsed().as_secs_f64()
    };

    let (mut traced_wall_s, mut untraced_wall_s) = (f64::MAX, f64::MAX);
    for _ in 0..TRACE_ROUNDS {
        untraced_wall_s = untraced_wall_s.min(pass(&mut untraced, false));
        traced_wall_s = traced_wall_s.min(pass(&mut traced, true));
    }

    let stats = handle.stats();
    assert!(
        stats.spans_recorded > 0,
        "the traced passes never recorded a span"
    );
    handle.shutdown();
    TraceOverheadRow {
        jobs,
        traced_wall_s,
        untraced_wall_s,
        spans_recorded: stats.spans_recorded,
        spans_evicted: stats.spans_evicted,
    }
}

/// One key of the fleet workload: a deterministic cube set drawn from
/// the scaled s9234 profile, so its artifacts are a pure function of
/// the seed.
fn fleet_spec(seed: u64) -> JobSpec {
    let set = generate_test_set(&CubeProfile::s9234().scaled(FLEET_PROFILE_SCALE), seed);
    let engine = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .expect("engine knobs");
    JobSpec::new(&set, engine.config())
}

struct FleetRow {
    shards: usize,
    cache_bytes: usize,
    jobs: usize,
    wall_s: f64,
    /// Cold syntheses summed across the whole fleet — equals
    /// `FLEET_KEYS` exactly when the aggregate cache holds the
    /// working set (exactly-once cluster-wide), larger when a shard
    /// thrashes its LRU and re-pays cold compute.
    synthesis: u64,
    mem_hits: u64,
    mem_misses: u64,
    redirects: u64,
    failovers: u64,
}

impl FleetRow {
    fn jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.wall_s
    }

    fn hit_rate(&self) -> f64 {
        self.mem_hits as f64 / (self.mem_hits + self.mem_misses).max(1) as f64
    }
}

/// Phase 0 of the fleet sweep: run every fleet key cold against a
/// throwaway single server with an ample cache, recording the golden
/// digests and the exact bytes the corpus occupies in the memory
/// tier. The sweep then sizes each shard's cache as a fraction of
/// that working set, so the scaling claim tracks the workload instead
/// of hard-coded byte counts.
fn fleet_working_set() -> (Vec<JobSpec>, Vec<u64>, u64) {
    let handle = Server::bind(&ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    })
    .expect("bind working-set probe")
    .spawn();
    let mut client = Client::connect(handle.addr()).expect("connect probe");
    let specs: Vec<JobSpec> = (1..=FLEET_KEYS).map(fleet_spec).collect();
    let mut digests = Vec::with_capacity(specs.len());
    for spec in &specs {
        let (_, report) = run_resilient(&mut client, handle.addr(), spec);
        assert_eq!(report.tier, CacheTier::Cold, "fleet keys must be distinct");
        digests.push(report.digest);
    }
    let stats = handle.stats();
    assert_eq!(
        stats.memory.evictions, 0,
        "probe cache too small to measure the working set"
    );
    let working_set = stats.memory.bytes;
    handle.shutdown();
    (specs, digests, working_set)
}

/// Binds `shards` servers on ephemeral ports, one worker,
/// `cache_bytes` of memory tier and replication factor `replicas`
/// each, then wires the full peer list into every one before
/// spawning.
fn spawn_fleet(
    shards: usize,
    cache_bytes: usize,
    replicas: usize,
) -> (Vec<String>, Vec<ServerHandle>) {
    let servers: Vec<Server> = (0..shards)
        .map(|_| {
            Server::bind(&ServeOptions {
                workers: 1,
                cache_bytes,
                queue_depth: 16,
                replicas,
                ..ServeOptions::default()
            })
            .expect("bind shard")
        })
        .collect();
    let peers: Vec<String> = servers
        .iter()
        .map(|s| s.local_addr().expect("shard addr").to_string())
        .collect();
    let handles = servers
        .into_iter()
        .enumerate()
        .map(|(id, mut server)| {
            server
                .set_shards(ShardSpec {
                    peers: peers.clone(),
                    id,
                    epoch: 0,
                })
                .expect("shard spec");
            server.spawn()
        })
        .collect();
    (peers, handles)
}

/// One fleet row: an untimed warm-up pass seeds every owner's cache
/// as far as its budget allows, then `FLEET_CLIENTS` balancer clients
/// each draw `FLEET_DRAWS` keys uniformly (seeded xorshift, so every
/// sweep point replays the identical request stream) and every answer
/// is checked against its golden digest.
fn measure_fleet(
    shards: usize,
    cache_bytes: usize,
    specs: &[JobSpec],
    digests: &[u64],
) -> FleetRow {
    // replication off: this sweep deliberately under-provisions each
    // shard's cache to measure capacity scaling, and replica copies
    // would both consume that budget and blur the exactly-once
    // synthesis arithmetic; the replicated row is measured separately
    let (peers, handles) = spawn_fleet(shards, cache_bytes, 1);

    let mut warm = Balancer::new(peers.clone())
        .expect("warm-up balancer")
        .with_policy(RetryPolicy::seeded(7));
    let failovers = AtomicU64::new(0);
    for (spec, digest) in specs.iter().zip(digests) {
        let run = warm.run(spec).expect("warm-up job");
        assert_eq!(run.report.digest, *digest, "fleet warm-up diverged");
        failovers.fetch_add(u64::from(run.failovers), Ordering::Relaxed);
    }
    drop(warm);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..FLEET_CLIENTS {
            let peers = peers.clone();
            let failovers = &failovers;
            scope.spawn(move || {
                let mut balancer = Balancer::new(peers)
                    .expect("client balancer")
                    .with_policy(RetryPolicy::seeded(100 + c as u64));
                // per-client xorshift64 over the key space
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1);
                for _ in 0..FLEET_DRAWS {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let i = (state % FLEET_KEYS) as usize;
                    let run = balancer.run(&specs[i]).expect("fleet job");
                    assert_eq!(run.report.digest, digests[i], "fleet answer diverged");
                    failovers.fetch_add(u64::from(run.failovers), Ordering::Relaxed);
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let mut row = FleetRow {
        shards,
        cache_bytes,
        jobs: FLEET_CLIENTS * FLEET_DRAWS,
        wall_s,
        synthesis: 0,
        mem_hits: 0,
        mem_misses: 0,
        redirects: 0,
        failovers: failovers.into_inner(),
    };
    for handle in handles {
        let stats = handle.stats();
        assert_eq!(stats.shard_count as usize, shards);
        row.synthesis += stats.synthesis.count;
        row.mem_hits += stats.memory.hits;
        row.mem_misses += stats.memory.misses;
        row.redirects += stats.redirects;
        handle.shutdown();
    }
    assert_eq!(
        row.failovers, 0,
        "a healthy fleet must route without failovers"
    );
    assert_eq!(
        row.redirects, 0,
        "the balancer must route every key to its owner first try"
    );
    row
}

struct FailoverRow {
    shards: usize,
    replicas: usize,
    jobs: usize,
    healthy_wall_s: f64,
    degraded_wall_s: f64,
    replicas_pushed: u64,
    failovers: u64,
}

/// The self-healing row: a 3-shard fleet with replication factor 2 is
/// warmed over the whole key population, write-behind replication is
/// allowed to settle, one shard is killed, and the full key population
/// is timed again against the degraded fleet. The contract asserted
/// here is the one `tests/fleet_chaos.rs` pins functionally: every
/// degraded answer is bit-identical and costs **zero** cold
/// re-synthesis, because failover lands on a warm replica.
fn measure_replicated_failover(specs: &[JobSpec], digests: &[u64]) -> FailoverRow {
    const REPLICAS: usize = 2;
    let shards = 3;
    // ample cache: this row measures failover latency, not capacity
    let (peers, mut handles) = spawn_fleet(shards, 64 << 20, REPLICAS);

    let mut balancer = Balancer::new(peers)
        .expect("failover balancer")
        .with_policy(RetryPolicy::seeded(17));
    // untimed warm-up: every key cold on its owner
    for (spec, digest) in specs.iter().zip(digests) {
        let run = balancer.run(spec).expect("failover warm-up");
        assert_eq!(run.report.digest, *digest, "failover warm-up diverged");
    }

    // healthy reference pass, timed
    let start = Instant::now();
    for (spec, digest) in specs.iter().zip(digests) {
        let run = balancer.run(spec).expect("healthy pass");
        assert_eq!(run.report.digest, *digest, "healthy answer diverged");
    }
    let healthy_wall_s = start.elapsed().as_secs_f64();

    // write-behind replication settles: R=2 on 3 shards puts exactly
    // one replica copy of every key somewhere in the fleet
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    let received = loop {
        let received: u64 = handles.iter().map(|h| h.stats().replicas_received).sum();
        if received >= specs.len() as u64 {
            break received;
        }
        assert!(Instant::now() < deadline, "replication never settled");
        std::thread::sleep(std::time::Duration::from_millis(25));
    };

    let survivor_synthesis: u64 = handles[1..].iter().map(|h| h.stats().synthesis.count).sum();
    handles.remove(0).shutdown();

    // degraded pass, timed: the balancer discovers the death, marks
    // the shard down and drains onto the replicas
    let start = Instant::now();
    let mut failovers = 0u64;
    for (spec, digest) in specs.iter().zip(digests) {
        let run = balancer.run(spec).expect("degraded pass");
        assert_eq!(run.report.digest, *digest, "degraded answer diverged");
        failovers += u64::from(run.failovers);
    }
    let degraded_wall_s = start.elapsed().as_secs_f64();

    assert!(failovers > 0, "killing a shard produced no failovers");
    let after: u64 = handles.iter().map(|h| h.stats().synthesis.count).sum();
    assert_eq!(
        after, survivor_synthesis,
        "degraded fleet re-synthesized a replicated key"
    );
    for handle in handles {
        handle.shutdown();
    }
    FailoverRow {
        shards,
        replicas: REPLICAS,
        jobs: specs.len(),
        healthy_wall_s,
        degraded_wall_s,
        replicas_pushed: received,
        failovers,
    }
}

fn write_json(
    latency: &[LatencyRow],
    throughput: &[ThroughputRow],
    fleet: &[FleetRow],
    failover: &FailoverRow,
    trace: &TraceOverheadRow,
) {
    let mut workloads = String::new();
    for (i, row) in latency.iter().enumerate() {
        if i > 0 {
            workloads.push_str(",\n");
        }
        workloads.push_str(&format!(
            "    {{\"name\": \"{}\", \"cubes\": {}, \"cold_s\": {:.6e}, \"warm_disk_s\": {:.6e}, \"warm_mem_s\": {:.6e}, \"disk_speedup\": {:.2}, \"mem_speedup\": {:.2}}}",
            row.name,
            row.cubes,
            row.cold_s,
            row.warm_disk_s,
            row.warm_mem_s,
            row.disk_speedup(),
            row.mem_speedup()
        ));
    }
    let mut fanout = String::new();
    for (i, row) in throughput.iter().enumerate() {
        if i > 0 {
            fanout.push_str(",\n");
        }
        fanout.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"jobs\": {}, \"wall_s\": {:.6e}, \"jobs_per_s\": {:.1}, \"frames_sent\": {}, \"frames_received\": {}, \"tx_compression_ratio\": {:.2}, \"tx_bytes_saved\": {}, \"crc_rejects\": {}}}",
            row.workers,
            CLIENTS,
            row.jobs,
            row.wall_s,
            row.jobs_per_s(),
            row.codec.frames_sent,
            row.codec.frames_received,
            row.codec.tx_ratio(),
            row.codec.tx_bytes_saved(),
            row.codec.crc_rejects
        ));
    }
    let mut fleet_rows = String::new();
    let single = fleet.first().map_or(0.0, FleetRow::jobs_per_s);
    for (i, row) in fleet.iter().enumerate() {
        if i > 0 {
            fleet_rows.push_str(",\n");
        }
        fleet_rows.push_str(&format!(
            "    {{\"shards\": {}, \"clients\": {}, \"keys\": {}, \"cache_bytes_per_shard\": {}, \"jobs\": {}, \"wall_s\": {:.6e}, \"jobs_per_s\": {:.1}, \"speedup_vs_single\": {:.2}, \"synthesis_runs\": {}, \"mem_hit_rate\": {:.3}, \"redirects\": {}, \"failovers\": {}}}",
            row.shards,
            FLEET_CLIENTS,
            FLEET_KEYS,
            row.cache_bytes,
            row.jobs,
            row.wall_s,
            row.jobs_per_s(),
            row.jobs_per_s() / single,
            row.synthesis,
            row.hit_rate(),
            row.redirects,
            row.failovers
        ));
    }
    let failover_row = format!(
        "    {{\"shards\": {}, \"replicas\": {}, \"jobs\": {}, \"healthy_wall_s\": {:.6e}, \"degraded_wall_s\": {:.6e}, \"degraded_slowdown\": {:.2}, \"replicas_pushed\": {}, \"failovers\": {}, \"resyntheses\": 0}}",
        failover.shards,
        failover.replicas,
        failover.jobs,
        failover.healthy_wall_s,
        failover.degraded_wall_s,
        failover.degraded_wall_s / failover.healthy_wall_s,
        failover.replicas_pushed,
        failover.failovers
    );
    let trace_row = format!(
        "    {{\"jobs\": {}, \"rounds\": {}, \"traced_wall_s\": {:.6e}, \"untraced_wall_s\": {:.6e}, \"traced_jobs_per_s\": {:.1}, \"untraced_jobs_per_s\": {:.1}, \"overhead_ratio\": {:.4}, \"bound\": {:.2}, \"spans_recorded\": {}, \"spans_evicted\": {}}}",
        trace.jobs,
        TRACE_ROUNDS,
        trace.traced_wall_s,
        trace.untraced_wall_s,
        trace.traced_jobs_per_s(),
        trace.untraced_jobs_per_s(),
        trace.overhead(),
        TRACE_OVERHEAD_BOUND,
        trace.spans_recorded,
        trace.spans_evicted
    );
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"server_stress\",\n  \"command\": \"cargo bench -p ss-bench --bench server_stress\",\n  \"engine\": \"L={} S={} k={}\",\n  \"ss_scale\": {},\n  \"throughput_profile_scale\": {},\n  \"fleet_cache_fraction\": {},\n  \"available_parallelism\": {},\n  \"disconnect_retries\": {},\n  \"workloads\": [\n{}\n  ],\n  \"throughput\": [\n{}\n  ],\n  \"fleet\": [\n{}\n  ],\n  \"replicated_failover\": [\n{}\n  ],\n  \"trace_overhead\": [\n{}\n  ]\n}}\n",
        WINDOW,
        SEGMENT,
        SPEEDUP,
        ss_bench::scale(),
        THROUGHPUT_PROFILE_SCALE,
        FLEET_CACHE_FRACTION,
        parallelism,
        DISCONNECT_RETRIES.load(Ordering::Relaxed),
        workloads,
        fanout,
        fleet_rows,
        failover_row,
        trace_row
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, json).expect("write BENCH_server.json");
    println!("\nwrote {path}");
}

fn bench_server_stress(_c: &mut Criterion) {
    ss_bench::banner("server stress: content-addressed cache + concurrent fan-out");

    let latency = measure_latency();
    let mut table = Table::new([
        "workload",
        "cubes",
        "cold",
        "warm disk",
        "warm mem",
        "disk x",
        "mem x",
    ]);
    for row in &latency {
        table.add_row([
            row.name.clone(),
            row.cubes.to_string(),
            format!("{:.3} ms", row.cold_s * 1e3),
            format!("{:.3} ms", row.warm_disk_s * 1e3),
            format!("{:.3} ms", row.warm_mem_s * 1e3),
            format!("{:.1}x", row.disk_speedup()),
            format!("{:.1}x", row.mem_speedup()),
        ]);
    }
    println!("{table}");

    let throughput: Vec<ThroughputRow> = WORKER_SWEEP
        .iter()
        .map(|&w| measure_throughput(w))
        .collect();
    let mut table = Table::new(["workers", "clients", "jobs", "wall", "jobs/s", "tx ratio"]);
    for row in &throughput {
        table.add_row([
            row.workers.to_string(),
            CLIENTS.to_string(),
            row.jobs.to_string(),
            format!("{:.3} s", row.wall_s),
            format!("{:.1}", row.jobs_per_s()),
            format!("{:.2}x", row.codec.tx_ratio()),
        ]);
    }
    println!("{table}");

    let (specs, fleet_digests, working_set) = fleet_working_set();
    let cache_bytes = ((working_set as f64 * FLEET_CACHE_FRACTION) as usize).max(1);
    println!(
        "fleet working set: {} keys, {} bytes -> {} bytes of cache per shard\n",
        FLEET_KEYS, working_set, cache_bytes
    );
    let fleet: Vec<FleetRow> = FLEET_SWEEP
        .iter()
        .map(|&n| measure_fleet(n, cache_bytes, &specs, &fleet_digests))
        .collect();
    let mut table = Table::new([
        "shards", "clients", "jobs", "wall", "jobs/s", "speedup", "synth", "hit rate",
    ]);
    for row in &fleet {
        table.add_row([
            row.shards.to_string(),
            FLEET_CLIENTS.to_string(),
            row.jobs.to_string(),
            format!("{:.3} s", row.wall_s),
            format!("{:.1}", row.jobs_per_s()),
            format!("{:.2}x", row.jobs_per_s() / fleet[0].jobs_per_s()),
            row.synthesis.to_string(),
            format!("{:.1}%", row.hit_rate() * 100.0),
        ]);
    }
    println!("{table}");

    let failover = measure_replicated_failover(&specs, &fleet_digests);
    let mut table = Table::new([
        "shards",
        "replicas",
        "jobs",
        "healthy",
        "degraded",
        "slowdown",
        "failovers",
        "resynth",
    ]);
    table.add_row([
        failover.shards.to_string(),
        failover.replicas.to_string(),
        failover.jobs.to_string(),
        format!("{:.3} s", failover.healthy_wall_s),
        format!("{:.3} s", failover.degraded_wall_s),
        format!("{:.2}x", failover.degraded_wall_s / failover.healthy_wall_s),
        failover.failovers.to_string(),
        "0".to_string(),
    ]);
    println!("{table}");

    let trace = measure_trace_overhead();
    let mut table = Table::new(["mode", "jobs", "wall", "jobs/s", "overhead", "spans"]);
    table.add_row([
        "untraced".to_string(),
        trace.jobs.to_string(),
        format!("{:.3} s", trace.untraced_wall_s),
        format!("{:.1}", trace.untraced_jobs_per_s()),
        "1.00x".to_string(),
        "0".to_string(),
    ]);
    table.add_row([
        "traced".to_string(),
        trace.jobs.to_string(),
        format!("{:.3} s", trace.traced_wall_s),
        format!("{:.1}", trace.traced_jobs_per_s()),
        format!("{:.2}x", trace.overhead()),
        trace.spans_recorded.to_string(),
    ]);
    println!("{table}");
    write_json(&latency, &throughput, &fleet, &failover, &trace);

    // CI contract for tracing-on-by-default: stamping a trace id on
    // every job and recording its spans may cost at most 5% of
    // warm-memory throughput — an untraced job's span path must stay
    // a no-op, and a traced one must stay cheap enough to leave on
    assert!(
        trace.overhead() <= TRACE_OVERHEAD_BOUND,
        "tracing costs {:.1}% of warm-memory throughput (bound {:.0}%): {:.1} traced vs {:.1} untraced jobs/s",
        (trace.overhead() - 1.0) * 100.0,
        (TRACE_OVERHEAD_BOUND - 1.0) * 100.0,
        trace.traced_jobs_per_s(),
        trace.untraced_jobs_per_s()
    );

    // CI contract for the fleet sweep. With each shard capped below
    // the working set, the widest fleet holds every key warm on its
    // owner (exactly-once cluster-wide: cold synthesis ran once per
    // key, total, across warm-up and 192 timed jobs) while the single
    // shard thrashes its LRU and re-pays cold compute — so aggregate
    // cache capacity, not core count, must buy the >= 3x throughput.
    let widest = fleet.last().expect("fleet sweep is non-empty");
    assert_eq!(
        widest.synthesis, FLEET_KEYS,
        "{}-shard fleet recomputed a key it should have cached",
        widest.shards
    );
    assert!(
        fleet[0].synthesis > FLEET_KEYS,
        "single under-provisioned shard never thrashed — the sweep is not exercising capacity"
    );
    assert!(
        widest.jobs_per_s() >= 3.0 * fleet[0].jobs_per_s(),
        "{}-shard fleet managed only {:.2}x the single-shard rate ({:.1} vs {:.1} jobs/s)",
        widest.shards,
        widest.jobs_per_s() / fleet[0].jobs_per_s(),
        widest.jobs_per_s(),
        fleet[0].jobs_per_s()
    );

    // CI contract: both warm tiers must beat the cold path on every
    // registry workload — a disk hit skips the dominant encode stage
    // (it re-pays only the file read, table rebuild and cheap stages)
    // and a memory hit skips synthesis too, so losing either race
    // means a cache tier is broken, not slow
    for row in &latency {
        assert!(
            row.warm_disk_s < row.cold_s,
            "{}: warm-disk ({:.3} ms) is not strictly below cold ({:.3} ms)",
            row.name,
            row.warm_disk_s * 1e3,
            row.cold_s * 1e3
        );
        assert!(
            row.warm_mem_s < row.cold_s,
            "{}: warm-memory ({:.3} ms) is not strictly below cold ({:.3} ms)",
            row.name,
            row.warm_mem_s * 1e3,
            row.cold_s * 1e3
        );
    }
}

criterion_group!(benches, bench_server_stress);
criterion_main!(benches);
