//! `server_stress`: the loopback serving benchmark — cold vs cached
//! latency per registry workload, and throughput as concurrent clients
//! fan over the corpus at several worker-pool widths.
//!
//! Two measurements, both against a real `ss-server` over loopback
//! TCP at the golden-conformance knobs (`L=24, S=4, k=6`):
//!
//! * **cold vs cached** — every registry workload is submitted cold
//!   (cache miss: synthesis + encode + embed + segment) and then
//!   repeatedly warm (cache hit: embed + segment only). The bench
//!   *asserts* the warm result is flagged cached, digests equal to the
//!   cold run, and strictly faster — so a regression in the
//!   content-addressed cache fails CI loudly.
//! * **throughput vs workers** — N concurrent clients each stream the
//!   whole corpus through one server; wall-clock jobs/sec is recorded
//!   per worker-pool width. Every job must come back `Done` with the
//!   digest its workload produced cold — the server may never drop or
//!   corrupt a job under concurrent load.
//!
//! Results land in `BENCH_server.json` at the workspace root, next to
//! `BENCH_packed.json` and `BENCH_encode.json`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use ss_core::{Engine, Table};
use ss_server::{Client, JobSpec, ServeOptions, Server};
use ss_testdata::{Workload, WorkloadRegistry};

const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;
const CACHED_REPEATS: usize = 3;
const CLIENTS: usize = 8;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];
/// Profile workloads run at the golden scale in the throughput fan-out
/// so one round of the corpus is milliseconds, not minutes.
const THROUGHPUT_PROFILE_SCALE: f64 = 0.1;

/// The spec a registry workload submits: profiles at `scale` with
/// their paper LFSR size, file workloads full size with the default
/// (smax-derived) LFSR — the same shapes the golden corpus pins.
fn spec_for(w: &Workload, scale: f64) -> JobSpec {
    let set = if w.profile().is_some() {
        w.test_set_scaled(scale)
    } else {
        w.test_set()
    };
    let mut builder = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP);
    if let Some(profile) = w.profile() {
        builder = builder.lfsr_size(profile.lfsr_size);
    }
    let engine = builder.build().expect("bench knobs are valid");
    JobSpec::new(&set, engine.config())
}

struct LatencyRow {
    name: String,
    cubes: u64,
    cold_s: f64,
    cached_s: f64,
}

impl LatencyRow {
    fn speedup(&self) -> f64 {
        self.cold_s / self.cached_s
    }
}

/// Cold-vs-cached pass: one server, every workload submitted once
/// cold and `CACHED_REPEATS` times warm (best warm time kept).
fn measure_latency() -> Vec<LatencyRow> {
    let handle = Server::bind(&ServeOptions::default())
        .expect("bind loopback")
        .spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut rows = Vec::new();
    for w in WorkloadRegistry::all() {
        let spec = spec_for(w, ss_bench::scale());
        let (_, cold) = client.run(&spec).expect("cold run");
        assert!(!cold.cached, "{}: first submission hit the cache", w.name);
        let mut best_cached = u64::MAX;
        for _ in 0..CACHED_REPEATS {
            let (_, warm) = client.run(&spec).expect("warm run");
            assert!(
                warm.cached,
                "{}: repeat submission missed the cache",
                w.name
            );
            assert_eq!(
                warm.digest, cold.digest,
                "{}: cached result diverged from cold",
                w.name
            );
            best_cached = best_cached.min(warm.service_micros);
        }
        rows.push(LatencyRow {
            name: w.name.to_string(),
            cubes: cold.cubes,
            cold_s: cold.service_micros as f64 / 1e6,
            cached_s: best_cached as f64 / 1e6,
        });
    }
    handle.shutdown();
    rows
}

struct ThroughputRow {
    workers: usize,
    jobs: usize,
    wall_s: f64,
}

impl ThroughputRow {
    fn jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.wall_s
    }
}

/// Fan-out pass: `CLIENTS` threads each submit the whole corpus
/// against a fresh server with `workers` workers; every result is
/// checked against the workload's cold digest.
fn measure_throughput(workers: usize) -> ThroughputRow {
    let handle = Server::bind(&ServeOptions {
        workers,
        ..ServeOptions::default()
    })
    .expect("bind loopback")
    .spawn();
    let specs: Vec<(String, JobSpec)> = WorkloadRegistry::all()
        .iter()
        .map(|w| (w.name.to_string(), spec_for(w, THROUGHPUT_PROFILE_SCALE)))
        .collect();
    let digests: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let specs = &specs;
            let digests = &digests;
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // stagger start positions so clients collide on the
                // cache from different directions
                for i in 0..specs.len() {
                    let (name, spec) = &specs[(i + c) % specs.len()];
                    let (_, report) = client.run(spec).expect("fan-out job");
                    let mut digests = digests.lock().expect("digest map");
                    let seen = digests.entry(name.clone()).or_insert(report.digest);
                    assert_eq!(
                        *seen, report.digest,
                        "{name}: concurrent submissions disagreed"
                    );
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let jobs = CLIENTS * specs.len();
    let stats = handle.stats();
    assert_eq!(
        stats.jobs_done, jobs as u64,
        "server dropped jobs under concurrent load"
    );
    handle.shutdown();
    ThroughputRow {
        workers,
        jobs,
        wall_s,
    }
}

fn write_json(latency: &[LatencyRow], throughput: &[ThroughputRow]) {
    let mut workloads = String::new();
    for (i, row) in latency.iter().enumerate() {
        if i > 0 {
            workloads.push_str(",\n");
        }
        workloads.push_str(&format!(
            "    {{\"name\": \"{}\", \"cubes\": {}, \"cold_s\": {:.6e}, \"cached_s\": {:.6e}, \"speedup\": {:.2}}}",
            row.name, row.cubes, row.cold_s, row.cached_s, row.speedup()
        ));
    }
    let mut fanout = String::new();
    for (i, row) in throughput.iter().enumerate() {
        if i > 0 {
            fanout.push_str(",\n");
        }
        fanout.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"jobs\": {}, \"wall_s\": {:.6e}, \"jobs_per_s\": {:.1}}}",
            row.workers,
            CLIENTS,
            row.jobs,
            row.wall_s,
            row.jobs_per_s()
        ));
    }
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"server_stress\",\n  \"command\": \"cargo bench -p ss-bench --bench server_stress\",\n  \"engine\": \"L={} S={} k={}\",\n  \"ss_scale\": {},\n  \"throughput_profile_scale\": {},\n  \"available_parallelism\": {},\n  \"workloads\": [\n{}\n  ],\n  \"throughput\": [\n{}\n  ]\n}}\n",
        WINDOW,
        SEGMENT,
        SPEEDUP,
        ss_bench::scale(),
        THROUGHPUT_PROFILE_SCALE,
        parallelism,
        workloads,
        fanout
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, json).expect("write BENCH_server.json");
    println!("\nwrote {path}");
}

fn bench_server_stress(_c: &mut Criterion) {
    ss_bench::banner("server stress: content-addressed cache + concurrent fan-out");

    let latency = measure_latency();
    let mut table = Table::new(["workload", "cubes", "cold", "cached", "speedup"]);
    for row in &latency {
        table.add_row([
            row.name.clone(),
            row.cubes.to_string(),
            format!("{:.3} ms", row.cold_s * 1e3),
            format!("{:.3} ms", row.cached_s * 1e3),
            format!("{:.1}x", row.speedup()),
        ]);
    }
    println!("{table}");

    let throughput: Vec<ThroughputRow> = WORKER_SWEEP
        .iter()
        .map(|&w| measure_throughput(w))
        .collect();
    let mut table = Table::new(["workers", "clients", "jobs", "wall", "jobs/s"]);
    for row in &throughput {
        table.add_row([
            row.workers.to_string(),
            CLIENTS.to_string(),
            row.jobs.to_string(),
            format!("{:.3} s", row.wall_s),
            format!("{:.1}", row.jobs_per_s()),
        ]);
    }
    println!("{table}");
    write_json(&latency, &throughput);

    // CI contract: a cache hit must beat the cold path on every
    // registry workload — cached submissions skip synthesis + encode,
    // so losing this race means the cache is broken, not slow
    for row in &latency {
        assert!(
            row.cached_s < row.cold_s,
            "{}: cached ({:.3} ms) is not strictly below cold ({:.3} ms)",
            row.name,
            row.cached_s * 1e3,
            row.cold_s * 1e3
        );
    }
}

criterion_group!(benches, bench_server_stress);
criterion_main!(benches);
