//! `server_stress`: the loopback serving benchmark — cold vs
//! warm-disk vs warm-memory latency per registry workload, and
//! throughput as concurrent clients fan over the corpus at several
//! worker-pool widths.
//!
//! Two measurements, both against a real `ss-server` over loopback
//! TCP at the golden-conformance knobs (`L=24, S=4, k=6`):
//!
//! * **cold vs warm-disk vs warm-memory** — every registry workload is
//!   submitted cold against a store-backed server (miss everywhere:
//!   synthesis + encode + embed + segment, then written through to the
//!   artifact store); the server is then *restarted* on the same store
//!   directory and the workload resubmitted, so the first answer comes
//!   from the persistent tier (disk read + table rebuild + embed +
//!   segment); repeats on the live server hit the in-memory LRU. The
//!   bench *asserts* each warm tier is flagged, digests are equal to
//!   the cold run, and warm-disk is strictly faster than cold on every
//!   workload — so a regression in either cache tier fails CI loudly.
//! * **throughput vs workers** — N concurrent clients each stream the
//!   whole corpus through one server; wall-clock jobs/sec is recorded
//!   per worker-pool width. Every job must come back `Done` with the
//!   digest its workload produced cold — the server may never drop or
//!   corrupt a job under concurrent load.
//!
//! Results land in `BENCH_server.json` at the workspace root, next to
//! `BENCH_packed.json` and `BENCH_encode.json`.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use ss_core::{Engine, Table};
use ss_server::{
    CacheTier, Client, CodecCounters, JobReport, JobSpec, ServeOptions, Server, ServerHandle,
};
use ss_testdata::{Workload, WorkloadRegistry};

const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;
const CACHED_REPEATS: usize = 3;
const CLIENTS: usize = 8;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];
/// Profile workloads run at the golden scale in the throughput fan-out
/// so one round of the corpus is milliseconds, not minutes.
const THROUGHPUT_PROFILE_SCALE: f64 = 0.1;

/// The spec a registry workload submits: profiles at `scale` with
/// their paper LFSR size, file workloads full size with the default
/// (smax-derived) LFSR — the same shapes the golden corpus pins.
fn spec_for(w: &Workload, scale: f64) -> JobSpec {
    let set = if w.profile().is_some() {
        w.test_set_scaled(scale)
    } else {
        w.test_set()
    };
    let mut builder = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP);
    if let Some(profile) = w.profile() {
        builder = builder.lfsr_size(profile.lfsr_size);
    }
    let engine = builder.build().expect("bench knobs are valid");
    JobSpec::new(&set, engine.config())
}

/// Mid-exchange disconnects survived via the typed retryable error
/// (`ClientError::Disconnected`) — reported in `BENCH_server.json` so
/// a flaky loopback shows up in the record instead of a flaky bench.
static DISCONNECT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Runs a job, transparently reconnecting on a retryable mid-exchange
/// disconnect and counting the event. Submissions are idempotent under
/// the content-addressed cache, so a retry costs at most a cache hit.
fn run_resilient(client: &mut Client, addr: SocketAddr, spec: &JobSpec) -> (u64, JobReport) {
    for _ in 0..3 {
        match client.run(spec) {
            Ok(done) => return done,
            Err(err) if err.is_retryable() => {
                DISCONNECT_RETRIES.fetch_add(1, Ordering::Relaxed);
                *client = Client::connect(addr).expect("reconnect after disconnect");
            }
            Err(err) => panic!("job failed: {err}"),
        }
    }
    panic!("job still disconnecting after 3 attempts");
}

struct LatencyRow {
    name: String,
    cubes: u64,
    cold_s: f64,
    warm_disk_s: f64,
    warm_mem_s: f64,
}

impl LatencyRow {
    fn disk_speedup(&self) -> f64 {
        self.cold_s / self.warm_disk_s
    }

    fn mem_speedup(&self) -> f64 {
        self.cold_s / self.warm_mem_s
    }
}

fn serve_with_store(dir: &std::path::Path) -> ServerHandle {
    Server::bind(&ServeOptions {
        store_dir: Some(dir.to_path_buf()),
        ..ServeOptions::default()
    })
    .expect("bind loopback with store dir")
    .spawn()
}

/// Three-tier latency pass. Generation 1 runs every workload cold and
/// writes the artifacts through to a fresh store directory. Each of
/// `CACHED_REPEATS` further generations restarts the server on that
/// directory and submits every workload once — the first answer per
/// workload per generation comes from the persistent tier (best time
/// kept). The last generation then resubmits each workload
/// `CACHED_REPEATS` times against the live server for the in-memory
/// tier (best time kept).
fn measure_latency() -> Vec<LatencyRow> {
    let dir = std::env::temp_dir().join(format!("ss-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // generation 1: cold + write-through
    let handle = serve_with_store(&dir);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut rows = Vec::new();
    let mut digests = HashMap::new();
    for w in WorkloadRegistry::all() {
        let spec = spec_for(w, ss_bench::scale());
        let (_, cold) = run_resilient(&mut client, handle.addr(), &spec);
        assert_eq!(
            cold.tier,
            CacheTier::Cold,
            "{}: first submission hit a cache",
            w.name
        );
        digests.insert(w.name.to_string(), cold.digest);
        rows.push(LatencyRow {
            name: w.name.to_string(),
            cubes: cold.cubes,
            cold_s: cold.service_micros as f64 / 1e6,
            warm_disk_s: f64::MAX,
            warm_mem_s: f64::MAX,
        });
    }
    handle.shutdown();

    // generations 2..: restart on the populated store; first answer
    // per workload is the disk tier
    for round in 0..CACHED_REPEATS {
        let handle = serve_with_store(&dir);
        let mut client = Client::connect(handle.addr()).expect("reconnect");
        for row in &mut rows {
            let w = WorkloadRegistry::find(&row.name).expect("registry entry");
            let spec = spec_for(w, ss_bench::scale());
            let (_, warm) = run_resilient(&mut client, handle.addr(), &spec);
            assert_eq!(
                warm.tier,
                CacheTier::Disk,
                "{}: restart submission missed the persistent tier",
                row.name
            );
            assert_eq!(
                warm.digest, digests[&row.name],
                "{}: disk result diverged from cold",
                row.name
            );
            row.warm_disk_s = row.warm_disk_s.min(warm.service_micros as f64 / 1e6);
        }
        // last generation: repeats on the live server hit the LRU
        if round == CACHED_REPEATS - 1 {
            for row in &mut rows {
                let w = WorkloadRegistry::find(&row.name).expect("registry entry");
                let spec = spec_for(w, ss_bench::scale());
                for _ in 0..CACHED_REPEATS {
                    let (_, warm) = run_resilient(&mut client, handle.addr(), &spec);
                    assert_eq!(
                        warm.tier,
                        CacheTier::Memory,
                        "{}: repeat submission missed the memory tier",
                        row.name
                    );
                    assert_eq!(
                        warm.digest, digests[&row.name],
                        "{}: memory result diverged from cold",
                        row.name
                    );
                    row.warm_mem_s = row.warm_mem_s.min(warm.service_micros as f64 / 1e6);
                }
            }
        }
        handle.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
    rows
}

struct ThroughputRow {
    workers: usize,
    jobs: usize,
    wall_s: f64,
    /// Codec telemetry of the server after the fan-out: reply
    /// compression ratio and integrity rejects (expected 0 here — the
    /// loopback injects no noise; tests/noise_injection.rs does).
    codec: CodecCounters,
}

impl ThroughputRow {
    fn jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.wall_s
    }
}

/// Fan-out pass: `CLIENTS` threads each submit the whole corpus
/// against a fresh server with `workers` workers; every result is
/// checked against the workload's cold digest.
fn measure_throughput(workers: usize) -> ThroughputRow {
    let handle = Server::bind(&ServeOptions {
        workers,
        ..ServeOptions::default()
    })
    .expect("bind loopback")
    .spawn();
    let specs: Vec<(String, JobSpec)> = WorkloadRegistry::all()
        .iter()
        .map(|w| (w.name.to_string(), spec_for(w, THROUGHPUT_PROFILE_SCALE)))
        .collect();
    let digests: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let specs = &specs;
            let digests = &digests;
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // stagger start positions so clients collide on the
                // cache from different directions
                for i in 0..specs.len() {
                    let (name, spec) = &specs[(i + c) % specs.len()];
                    let (_, report) = run_resilient(&mut client, addr, spec);
                    let mut digests = digests.lock().expect("digest map");
                    let seen = digests.entry(name.clone()).or_insert(report.digest);
                    assert_eq!(
                        *seen, report.digest,
                        "{name}: concurrent submissions disagreed"
                    );
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let jobs = CLIENTS * specs.len();
    let stats = handle.stats();
    assert_eq!(
        stats.jobs_done, jobs as u64,
        "server dropped jobs under concurrent load"
    );
    assert_eq!(
        stats.codec.connections_v3, CLIENTS as u64,
        "every fan-out client negotiates the v3 codec"
    );
    assert_eq!(
        stats.codec.crc_rejects, 0,
        "a clean loopback produced CRC rejects"
    );
    handle.shutdown();
    ThroughputRow {
        workers,
        jobs,
        wall_s,
        codec: stats.codec,
    }
}

fn write_json(latency: &[LatencyRow], throughput: &[ThroughputRow]) {
    let mut workloads = String::new();
    for (i, row) in latency.iter().enumerate() {
        if i > 0 {
            workloads.push_str(",\n");
        }
        workloads.push_str(&format!(
            "    {{\"name\": \"{}\", \"cubes\": {}, \"cold_s\": {:.6e}, \"warm_disk_s\": {:.6e}, \"warm_mem_s\": {:.6e}, \"disk_speedup\": {:.2}, \"mem_speedup\": {:.2}}}",
            row.name,
            row.cubes,
            row.cold_s,
            row.warm_disk_s,
            row.warm_mem_s,
            row.disk_speedup(),
            row.mem_speedup()
        ));
    }
    let mut fanout = String::new();
    for (i, row) in throughput.iter().enumerate() {
        if i > 0 {
            fanout.push_str(",\n");
        }
        fanout.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"jobs\": {}, \"wall_s\": {:.6e}, \"jobs_per_s\": {:.1}, \"frames_sent\": {}, \"frames_received\": {}, \"tx_compression_ratio\": {:.2}, \"tx_bytes_saved\": {}, \"crc_rejects\": {}}}",
            row.workers,
            CLIENTS,
            row.jobs,
            row.wall_s,
            row.jobs_per_s(),
            row.codec.frames_sent,
            row.codec.frames_received,
            row.codec.tx_ratio(),
            row.codec.tx_bytes_saved(),
            row.codec.crc_rejects
        ));
    }
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"server_stress\",\n  \"command\": \"cargo bench -p ss-bench --bench server_stress\",\n  \"engine\": \"L={} S={} k={}\",\n  \"ss_scale\": {},\n  \"throughput_profile_scale\": {},\n  \"available_parallelism\": {},\n  \"disconnect_retries\": {},\n  \"workloads\": [\n{}\n  ],\n  \"throughput\": [\n{}\n  ]\n}}\n",
        WINDOW,
        SEGMENT,
        SPEEDUP,
        ss_bench::scale(),
        THROUGHPUT_PROFILE_SCALE,
        parallelism,
        DISCONNECT_RETRIES.load(Ordering::Relaxed),
        workloads,
        fanout
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, json).expect("write BENCH_server.json");
    println!("\nwrote {path}");
}

fn bench_server_stress(_c: &mut Criterion) {
    ss_bench::banner("server stress: content-addressed cache + concurrent fan-out");

    let latency = measure_latency();
    let mut table = Table::new([
        "workload",
        "cubes",
        "cold",
        "warm disk",
        "warm mem",
        "disk x",
        "mem x",
    ]);
    for row in &latency {
        table.add_row([
            row.name.clone(),
            row.cubes.to_string(),
            format!("{:.3} ms", row.cold_s * 1e3),
            format!("{:.3} ms", row.warm_disk_s * 1e3),
            format!("{:.3} ms", row.warm_mem_s * 1e3),
            format!("{:.1}x", row.disk_speedup()),
            format!("{:.1}x", row.mem_speedup()),
        ]);
    }
    println!("{table}");

    let throughput: Vec<ThroughputRow> = WORKER_SWEEP
        .iter()
        .map(|&w| measure_throughput(w))
        .collect();
    let mut table = Table::new(["workers", "clients", "jobs", "wall", "jobs/s", "tx ratio"]);
    for row in &throughput {
        table.add_row([
            row.workers.to_string(),
            CLIENTS.to_string(),
            row.jobs.to_string(),
            format!("{:.3} s", row.wall_s),
            format!("{:.1}", row.jobs_per_s()),
            format!("{:.2}x", row.codec.tx_ratio()),
        ]);
    }
    println!("{table}");
    write_json(&latency, &throughput);

    // CI contract: both warm tiers must beat the cold path on every
    // registry workload — a disk hit skips the dominant encode stage
    // (it re-pays only the file read, table rebuild and cheap stages)
    // and a memory hit skips synthesis too, so losing either race
    // means a cache tier is broken, not slow
    for row in &latency {
        assert!(
            row.warm_disk_s < row.cold_s,
            "{}: warm-disk ({:.3} ms) is not strictly below cold ({:.3} ms)",
            row.name,
            row.warm_disk_s * 1e3,
            row.cold_s * 1e3
        );
        assert!(
            row.warm_mem_s < row.cold_s,
            "{}: warm-memory ({:.3} ms) is not strictly below cold ({:.3} ms)",
            row.name,
            row.warm_mem_s * 1e3,
            row.cold_s * 1e3
        );
    }
}

criterion_group!(benches, bench_server_stress);
criterion_main!(benches);
