//! Ablations — design choices the paper makes implicitly, quantified.
//!
//! 1. **CSE on/off** for the State Skip circuit: how much the shared
//!    XOR network saves over the naive per-row implementation.
//! 2. **Selection-criteria ablation** for segment selection: the
//!    paper's set-A + greedy cover vs. a naive "keep every segment
//!    containing an intentional placement" policy.
//! 3. **Truncation vs. State Skip**: how much of the reduction comes
//!    from cutting windows after the last useful segment ([11]-style)
//!    vs. from skipping useless segments (the paper's contribution).
//!
//! ```text
//! cargo bench -p ss-bench --bench ablation
//! ```

use ss_bench::{banner, run_profile, workload};
use ss_core::{improvement_percent, SegmentPlan, Table};
use ss_gf2::primitive_poly;
use ss_lfsr::{Lfsr, SkipCircuit};
use ss_testdata::CubeProfile;

fn main() {
    banner("Ablations");

    // --- 1. CSE on/off ---
    let mut cse = Table::new(["n", "k", "naive XOR2", "shared XOR2", "saving"]);
    for (n, k) in [(24usize, 12u64), (24, 24), (44, 12), (85, 12)] {
        let lfsr = Lfsr::fibonacci(primitive_poly(n).expect("tabulated degree"));
        let skip = SkipCircuit::new(&lfsr, k).expect("k >= 1");
        let naive = skip.raw_xor2_count();
        let shared = skip.synthesize().gate_count();
        cse.add_row([
            n.to_string(),
            k.to_string(),
            naive.to_string(),
            shared.to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - shared as f64 / naive.max(1) as f64)
            ),
        ]);
    }
    println!("{cse}");
    println!("expected: sharing saves a large fraction; absolute cost grows mildly with k.\n");

    // --- 2 & 3. segment selection + skip-vs-truncation ---
    let profile = CubeProfile::s13207().scaled(ss_bench::scale());
    let set = workload(&profile);
    let r = set.config().depth();
    let report = run_profile(&profile, &set, 200, 5, 10);
    let plan = SegmentPlan::build(&report.embedding, 5);

    // naive selection: mark every segment containing an intentional
    // placement useful (ignores fortuitous embeddings entirely)
    let naive_useful: usize = report
        .encoding
        .seeds
        .iter()
        .map(|s| {
            let mut segs: Vec<usize> = s.placements.iter().map(|p| p.position / 5).collect();
            segs.sort_unstable();
            segs.dedup();
            segs.len()
        })
        .sum();
    let mut sel = Table::new(["policy", "useful segments"]);
    sel.add_row([
        "paper (set A + greedy cover)".to_string(),
        plan.total_useful().to_string(),
    ]);
    sel.add_row([
        "naive (intentional placements)".to_string(),
        naive_useful.to_string(),
    ]);
    println!("{sel}");
    println!("expected: the cover exploits fortuitous embeddings and needs fewer segments.\n");

    let mut cut = Table::new(["scheme", "TSL", "improvement vs orig"]);
    let orig = report.tsl_original;
    let trunc = plan.tsl_truncated_only(r).vectors;
    let skip = plan.tsl(20, r).vectors;
    cut.add_row([
        "full windows (orig)".to_string(),
        orig.to_string(),
        "-".to_string(),
    ]);
    cut.add_row([
        "truncation only ([11]-style)".to_string(),
        trunc.to_string(),
        format!("{:.1}%", improvement_percent(orig, trunc)),
    ]);
    cut.add_row([
        "truncation + State Skip (k=20)".to_string(),
        skip.to_string(),
        format!("{:.1}%", improvement_percent(orig, skip)),
    ]);
    println!("{cut}");
    println!("expected: State Skip contributes a large further cut beyond truncation alone.");
}
