//! Table 4 — TSL and TDV of LFSR-reseeding-based methods for IP cores
//! with multiple scan chains.
//!
//! The compression methods [1], [17], [18], [21], [23], [29], [30] and
//! [34] are closed publications: their columns are the paper-reported
//! constants. The classical-reseeding (L = 1) and proposed (L = 200)
//! columns are measured here.
//!
//! ```text
//! cargo bench -p ss-bench --bench table4
//! SS_SCALE=1 cargo bench -p ss-bench --bench table4   # full size
//! ```

use ss_bench::{banner, best_reduction, run_profile, scaled_circuits, timed, workload};
use ss_core::{lit_table4, Table};

fn main() {
    banner("Table 4: vs test data compression methods");
    let mut total_secs = 0.0;
    for (profile, lit) in scaled_circuits().iter().zip(lit_table4()) {
        assert_eq!(profile.name, lit.circuit);
        let set = workload(profile);
        let r = set.config().depth();
        let ((classical, proposed), secs) = timed(|| {
            let classical = run_profile(profile, &set, 1, 1, 1);
            let windowed = run_profile(profile, &set, 200, 5, 10);
            let best = best_reduction(&windowed, r, &[2, 5, 10], &(5..=24).collect::<Vec<_>>());
            (
                (classical.tsl_original, classical.tdv),
                (best.prop, windowed.tdv),
            )
        });
        total_secs += secs;

        let mut table = Table::new([profile.name, "TSL", "TDV (bits)"]);
        for m in &lit.methods {
            let fmt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            table.add_row([m.label.to_string(), fmt(m.tsl), fmt(m.tdv)]);
        }
        table.add_row([
            "classical L=1 (measured)".to_string(),
            classical.0.to_string(),
            classical.1.to_string(),
        ]);
        table.add_row([
            "proposed L=200 (measured)".to_string(),
            proposed.0.to_string(),
            proposed.1.to_string(),
        ]);
        println!("{table}");
    }
    println!("total time: {total_secs:.1}s");
    println!("expected shape: the proposed method has the lowest TDV of all methods (except");
    println!("s38417) while its TSL is roughly 5-10x the compression methods' — the paper's");
    println!("'few data, longer sequences' trade-off that State Skip makes acceptable.");
}
