//! Table 2 — Test sequence length improvements.
//!
//! For each circuit and L in {50, 200, 500}: the original window-based
//! TSL, the proposed State-Skip TSL (best S in {2, 5, 10}, 5 <= k <=
//! 24, as in the paper) and the improvement percentage, printed beside
//! the paper-reported triple. One encoding per (circuit, L); the
//! (S, k) sweep reuses it, exactly like the paper's experiments.
//!
//! ```text
//! cargo bench -p ss-bench --bench table2
//! SS_SCALE=1 cargo bench -p ss-bench --bench table2   # full size
//! ```

use ss_bench::{banner, best_reduction, run_profile, scaled_circuits, timed, workload};
use ss_core::{improvement_percent, Table, PAPER_TABLE2};

fn main() {
    banner("Table 2: TSL improvements (best S in {2,5,10}, 5<=k<=24)");
    let windows = [50usize, 200, 500];
    let segments = [2usize, 5, 10];
    let speedups: Vec<u64> = (5..=24).collect();
    let mut table = Table::new([
        "circuit",
        "L",
        "orig meas",
        "orig paper",
        "prop meas",
        "prop paper",
        "impr meas",
        "impr paper",
        "best S/k",
    ]);
    let mut total_secs = 0.0;
    for (profile, &(paper_name, paper_entries)) in scaled_circuits().iter().zip(PAPER_TABLE2) {
        assert_eq!(profile.name, paper_name);
        let set = workload(profile);
        let r = set.config().depth();
        for (wi, &window) in windows.iter().enumerate() {
            let (best, secs) = timed(|| {
                let report = run_profile(profile, &set, window, segments[0], speedups[0]);
                best_reduction(&report, r, &segments, &speedups)
            });
            total_secs += secs;
            let impr = improvement_percent(best.orig, best.prop);
            let (paper_l, paper_orig, paper_prop, paper_impr) = paper_entries[wi];
            assert_eq!(paper_l, window);
            table.add_row([
                profile.name.to_string(),
                window.to_string(),
                best.orig.to_string(),
                paper_orig.to_string(),
                best.prop.to_string(),
                paper_prop.to_string(),
                format!("{impr:.0}%"),
                format!("{paper_impr}%"),
                format!("{}/{}", best.segment, best.speedup),
            ]);
        }
    }
    println!("{table}");
    println!("total time: {total_secs:.1}s");
    println!("expected shape: improvements of 60-96%, growing with L, lowest for s38584/s38417.");
}
