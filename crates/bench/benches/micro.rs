//! Criterion micro-benchmarks for the computational kernels.
//!
//! Not a paper table — engineering numbers for the library itself:
//! LFSR stepping, State Skip jumps, matrix powering, incremental
//! solving and window expansion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ss_gf2::{primitive_poly, BitVec, IncrementalSolver};
use ss_lfsr::{ExpressionStream, Lfsr, PhaseShifter, SkipCircuit};
use ss_testdata::ScanConfig;

fn bench_lfsr_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfsr_step");
    for n in [24usize, 64, 128] {
        let mut lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        lfsr.load(&BitVec::unit(n, 0));
        group.bench_function(format!("n{n}_1k_steps"), |b| {
            b.iter(|| {
                lfsr.step_by(1000);
                lfsr.state().get(0)
            })
        });
    }
    group.finish();
}

fn bench_skip_jump(c: &mut Criterion) {
    let mut group = c.benchmark_group("skip_jump");
    for n in [24usize, 64] {
        let mut lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        lfsr.load(&BitVec::unit(n, 0));
        let skip = SkipCircuit::new(&lfsr, 24).unwrap();
        group.bench_function(format!("n{n}_k24"), |b| b.iter(|| skip.jump(lfsr.state())));
    }
    group.finish();
}

fn bench_matrix_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_pow");
    for n in [24usize, 85] {
        let lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        let t = lfsr.transition_matrix();
        group.bench_function(format!("n{n}_pow_1M"), |b| b.iter(|| t.pow(1_000_000)));
    }
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_solver");
    for n in [24usize, 85] {
        let mut rng = SmallRng::seed_from_u64(9);
        let equations: Vec<(BitVec, bool)> = (0..n)
            .map(|i| (BitVec::random(n, &mut rng), i % 2 == 0))
            .collect();
        group.bench_function(format!("n{n}_fill_rank"), |b| {
            b.iter_batched(
                || IncrementalSolver::new(n),
                |mut solver| {
                    for (coeffs, rhs) in &equations {
                        let _ = solver.insert(coeffs, *rhs);
                    }
                    solver.rank()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_expression_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("expression_stream");
    let mut rng = SmallRng::seed_from_u64(5);
    let lfsr = Lfsr::fibonacci(primitive_poly(24).unwrap());
    let shifter = PhaseShifter::synthesize(24, 32, 3, &mut rng).unwrap();
    group.bench_function("n24_m32_100_cycles", |b| {
        b.iter_batched(
            || ExpressionStream::new(&lfsr),
            |mut stream| {
                for _ in 0..100 {
                    let exprs = stream.output_exprs(&shifter);
                    stream.step();
                    criterion::black_box(exprs);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_window_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_expansion");
    let mut rng = SmallRng::seed_from_u64(6);
    let lfsr = Lfsr::fibonacci(primitive_poly(24).unwrap());
    let shifter = PhaseShifter::synthesize(24, 32, 3, &mut rng).unwrap();
    let scan = ScanConfig::new(32, 22).unwrap();
    let seed = BitVec::random(24, &mut rng);
    group.bench_function("s13207_window_50", |b| {
        b.iter(|| ss_core::try_expand_seed(&lfsr, &shifter, scan, &seed, 50).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // short sampling: these kernels are microseconds-scale and the
    // suite shares one table-regeneration budget
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets =
        bench_lfsr_step,
        bench_skip_jump,
        bench_matrix_pow,
        bench_solver,
        bench_expression_stream,
        bench_window_expansion
}
criterion_main!(benches);
