//! Table 3 — Comparison against test set embedding methods ([11] and
//! [22]) at L = 300.
//!
//! `[11]` (window-based embedding with truncation, no State Skip) is
//! reimplemented and measured; `[22]` is a closed reconfigurable-
//! network scheme, so its column prints the paper-reported constants
//! (see DESIGN.md § Substitutions). Our proposed column is measured.
//!
//! ```text
//! cargo bench -p ss-bench --bench table3
//! SS_SCALE=1 cargo bench -p ss-bench --bench table3   # full size
//! ```

use ss_bench::{banner, best_reduction, run_profile, scaled_circuits, timed, workload};
use ss_core::{baseline11_tsl, improvement_percent, lit_table3, Table};

fn main() {
    banner("Table 3: vs test set embedding methods (L=300)");
    let mut table = Table::new([
        "circuit",
        "TDV [11] meas",
        "TDV [22] paper",
        "TDV prop meas",
        "TSL [11] meas",
        "TSL [22] paper",
        "TSL prop meas",
        "impr vs [11]",
        "impr vs [22] (paper)",
    ]);
    let mut total_secs = 0.0;
    for (profile, lit) in scaled_circuits().iter().zip(lit_table3()) {
        assert_eq!(profile.name, lit.circuit);
        let set = workload(profile);
        let r = set.config().depth();
        let (row, secs) = timed(|| {
            let report = run_profile(profile, &set, 300, 5, 10);
            // [11]: same seeds, truncation after the last needed vector
            let tsl_11 = baseline11_tsl(&report.embedding);
            let best = best_reduction(&report, r, &[2, 5, 10], &(5..=24).collect::<Vec<_>>());
            (report.tdv, tsl_11, best.prop)
        });
        total_secs += secs;
        let (tdv, tsl_11, tsl_prop) = row;
        table.add_row([
            profile.name.to_string(),
            tdv.to_string(), // [11] stores the same seeds as the proposed method
            lit.tdv_22.to_string(),
            tdv.to_string(),
            tsl_11.to_string(),
            lit.tsl_22.to_string(),
            tsl_prop.to_string(),
            format!("{:.1}%", improvement_percent(tsl_11, tsl_prop)),
            format!(
                "{:.1}% (paper {:.1}%)",
                improvement_percent(lit.tsl_22, tsl_prop),
                lit.impr_22
            ),
        ]);
    }
    println!("{table}");
    println!("paper values for reference: [11] TDV/TSL and prop TDV/TSL per circuit:");
    for lit in lit_table3() {
        println!(
            "  {}: [11] {} bits / {} vectors; prop {} bits / {} vectors (impr {:.1}%)",
            lit.circuit, lit.tdv_11, lit.tsl_11, lit.tdv_prop, lit.tsl_prop, lit.impr_11
        );
    }
    println!("total time: {total_secs:.1}s");
    println!("expected shape: proposed TSL is a small fraction of [11]'s and tiny next to [22]'s;");
    println!("[22] wins TDV by an order of magnitude but with ~100x longer sequences.");
}
