//! `encode_scaling`: throughput of the residue-cached (and parallel)
//! encoder search against the from-scratch reference search, on every
//! registry workload.
//!
//! Three measurements per workload, all over the same hardware context
//! at the golden-conformance knobs (`L=24, S=4, k=6`):
//!
//! * **reference** — [`WindowEncoder::encode_reference`], the
//!   pre-overhaul search (re-eliminates every candidate system from
//!   scratch each round);
//! * **cached** — [`WindowEncoder::encode`], the incremental
//!   residue-cached search on one thread;
//! * **cached-4t** — [`WindowEncoder::encode_with_threads`] with four
//!   probing workers.
//!
//! Every run *asserts* the three searches return bit-identical
//! encodings (seeds and placements) and that the cached single-thread
//! search beats the reference (`speedup > 1`) on every workload large
//! enough to time reliably — so a regression in either correctness or
//! performance fails the bench loudly, which CI relies on. Measured
//! ratios are recorded in `BENCH_encode.json` at the workspace root,
//! next to `BENCH_packed.json`. The 4-thread column only scales on
//! machines with free cores (the encoder clamps its workers to the
//! available parallelism); the JSON records the machine's
//! parallelism so the column can be read honestly.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use ss_core::{EncodingResult, Engine, Table, WindowEncoder};
use ss_testdata::{TestSet, Workload, WorkloadRegistry};

const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;
const PAR_THREADS: usize = 4;

/// Seconds per call, adaptively: a single measured call when the
/// closure is slow (the reference search on the big profiles), more
/// samples within a ~300 ms budget when it is fast.
fn time_adaptive<T>(mut f: impl FnMut() -> T) -> f64 {
    let budget = Duration::from_millis(300);
    let start = Instant::now();
    std::hint::black_box(f());
    let first = start.elapsed();
    if first >= budget {
        return first.as_secs_f64();
    }
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if start.elapsed() >= budget || iters >= 200 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

struct Row {
    name: String,
    cubes: usize,
    seeds: usize,
    reference_s: f64,
    cached_s: f64,
    cached_par_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_s / self.cached_s
    }

    fn speedup_par(&self) -> f64 {
        self.reference_s / self.cached_par_s
    }
}

/// The workload's test set at the bench scale (profiles honour
/// `SS_SCALE`; file workloads are small and run full size).
fn bench_set(w: &Workload) -> TestSet {
    if w.profile().is_some() {
        w.test_set_scaled(ss_bench::scale())
    } else {
        w.test_set()
    }
}

fn measure(w: &Workload) -> Row {
    let set = bench_set(w);
    let mut builder = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP);
    if let Some(profile) = w.profile() {
        builder = builder.lfsr_size(profile.lfsr_size);
    }
    let engine = builder.build().expect("bench knobs are valid");
    let ctx = engine.synthesize(&set).expect("synthesis succeeds");
    let (set, dropped) = ctx.encodable_subset(&set);
    if !dropped.is_empty() {
        eprintln!(
            "note: {}: dropped {} unencodable cube(s)",
            w.name,
            dropped.len()
        );
    }
    let fill_seed = engine.config().fill_seed;
    let encoder = WindowEncoder::new(&set, ctx.table()).expect("one geometry");

    let reference = encoder.encode_reference(fill_seed).expect("encodes");
    let check = |label: &str, result: &EncodingResult| {
        assert_eq!(
            result, &reference,
            "{}: {label} encoding diverged from encode_reference",
            w.name
        );
    };
    check("cached", &encoder.encode(fill_seed).expect("encodes"));
    check(
        "parallel",
        &encoder
            .encode_with_threads(fill_seed, PAR_THREADS)
            .expect("encodes"),
    );

    let reference_s = time_adaptive(|| encoder.encode_reference(fill_seed).unwrap());
    let cached_s = time_adaptive(|| encoder.encode(fill_seed).unwrap());
    let cached_par_s =
        time_adaptive(|| encoder.encode_with_threads(fill_seed, PAR_THREADS).unwrap());

    Row {
        name: w.name.to_string(),
        cubes: set.len(),
        seeds: reference.seeds.len(),
        reference_s,
        cached_s,
        cached_par_s,
    }
}

fn write_json(rows: &[Row]) {
    let mut entries = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"name\": \"{}\", \"cubes\": {}, \"seeds\": {}, \"reference_s\": {:.6e}, \"cached_1t_s\": {:.6e}, \"cached_{}t_s\": {:.6e}, \"speedup_1t\": {:.2}, \"speedup_{}t\": {:.2}}}",
            row.name,
            row.cubes,
            row.seeds,
            row.reference_s,
            row.cached_s,
            PAR_THREADS,
            row.cached_par_s,
            row.speedup(),
            PAR_THREADS,
            row.speedup_par()
        ));
    }
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"encode_scaling\",\n  \"command\": \"cargo bench -p ss-bench --bench encode_scaling\",\n  \"engine\": \"L={} S={} k={}\",\n  \"ss_scale\": {},\n  \"available_parallelism\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        WINDOW,
        SEGMENT,
        SPEEDUP,
        ss_bench::scale(),
        parallelism,
        entries
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encode.json");
    std::fs::write(path, json).expect("write BENCH_encode.json");
    println!("\nwrote {path}");
}

fn bench_encode_scaling(c: &mut Criterion) {
    ss_bench::banner("encode scaling: residue-cached + parallel search vs reference");

    let rows: Vec<Row> = WorkloadRegistry::all().iter().map(measure).collect();

    let mut table = Table::new([
        "workload".to_string(),
        "cubes".to_string(),
        "seeds".to_string(),
        "reference".to_string(),
        "cached 1t".to_string(),
        format!("cached {PAR_THREADS}t"),
        "speedup 1t".to_string(),
        format!("speedup {PAR_THREADS}t"),
    ]);
    for row in &rows {
        table.add_row([
            row.name.clone(),
            row.cubes.to_string(),
            row.seeds.to_string(),
            format!("{:.3} ms", row.reference_s * 1e3),
            format!("{:.3} ms", row.cached_s * 1e3),
            format!("{:.3} ms", row.cached_par_s * 1e3),
            format!("{:.1}x", row.speedup()),
            format!("{:.1}x", row.speedup_par()),
        ]);
    }
    println!("{table}");
    write_json(&rows);

    // smoke contract: the cached search must never regress below the
    // reference on any workload large enough to time reliably
    // (sub-millisecond encodes are timing noise) — CI runs this bench
    // and a failed assert fails the workflow step
    for row in rows.iter().filter(|r| r.reference_s > 1e-3) {
        assert!(
            row.speedup() > 1.0,
            "{}: cached encoder ({:.3} ms) is not faster than the reference ({:.3} ms)",
            row.name,
            row.cached_s * 1e3,
            row.reference_s * 1e3
        );
    }

    // criterion samples of the cached search itself, for trending
    let mini = WorkloadRegistry::find("mini-13").expect("registry entry");
    let set = mini.test_set();
    let engine = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .unwrap();
    let ctx = engine.synthesize(&set).unwrap();
    let (set, _) = ctx.encodable_subset(&set);
    let encoder = WindowEncoder::new(&set, ctx.table()).unwrap();
    let mut group = c.benchmark_group("encode_scaling");
    group.bench_function("cached_1t/mini-13", |b| {
        b.iter(|| encoder.encode(1).unwrap())
    });
    group.bench_function("cached_4t/mini-13", |b| {
        b.iter(|| encoder.encode_with_threads(1, PAR_THREADS).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_encode_scaling);
criterion_main!(benches);
