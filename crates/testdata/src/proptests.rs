//! Property-based tests for cubes, scan geometry and test sets.

#![cfg(test)]

use proptest::prelude::*;

use ss_gf2::BitVec;

use crate::{weighted_transitions, ScanConfig, TestCube, TestSet};

/// A random cube as a `01X` string.
fn cube_string(len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('0'), Just('1'), Just('X')], len)
        .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parse/display round-trip for arbitrary cubes.
    #[test]
    fn cube_text_roundtrip(text in cube_string(40)) {
        let cube: TestCube = text.parse().unwrap();
        prop_assert_eq!(cube.to_string(), text);
    }

    /// A cube always matches its own random fills, and a cube with at
    /// least one specified bit never matches the fill's complement.
    #[test]
    fn fills_match_their_cube(text in cube_string(32), fill_seed in any::<u64>()) {
        let cube: TestCube = text.parse().unwrap();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(fill_seed);
        let fill = cube.random_fill(&mut rng);
        prop_assert!(cube.matches(&fill));
        if cube.specified_count() > 0 {
            let mut complement = fill.clone();
            complement.xor_with(&BitVec::ones(32));
            prop_assert!(!cube.matches(&complement));
        }
    }

    /// Merge is commutative, and the merged cube's matches are exactly
    /// the intersection of the parents' match sets.
    #[test]
    fn merge_is_match_intersection(
        a_text in cube_string(12),
        b_text in cube_string(12),
        probe_raw in any::<u16>(),
    ) {
        let a: TestCube = a_text.parse().unwrap();
        let b: TestCube = b_text.parse().unwrap();
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        let probe = BitVec::from_u128(12, (probe_raw as u128) & 0xFFF);
        match a.merge(&b) {
            Some(m) => {
                prop_assert_eq!(m.matches(&probe), a.matches(&probe) && b.matches(&probe));
            }
            None => {
                // incompatible: no vector matches both
                prop_assert!(!(a.matches(&probe) && b.matches(&probe)));
            }
        }
    }

    /// Scan geometry mappings are mutually inverse bijections.
    #[test]
    fn scan_mappings_are_bijective(chains in 1usize..10, depth in 1usize..20) {
        let cfg = ScanConfig::new(chains, depth).unwrap();
        let mut seen = vec![false; cfg.cells()];
        for chain in 0..chains {
            for pos in 0..depth {
                let cell = cfg.cell_index(chain, pos);
                prop_assert!(!seen[cell], "duplicate cell {}", cell);
                seen[cell] = true;
                prop_assert_eq!(cfg.chain_of(cell), (chain, pos));
            }
        }
        for cycle in 0..depth {
            prop_assert_eq!(cfg.load_cycle(cfg.position_loaded_at(cycle)), cycle);
        }
    }

    /// Test-set text serialisation round-trips arbitrary sets.
    #[test]
    fn test_set_text_roundtrip(
        cubes in proptest::collection::vec(cube_string(12), 0..12),
    ) {
        let mut set = TestSet::new(ScanConfig::new(3, 4).unwrap());
        for text in &cubes {
            set.push(text.parse().unwrap()).unwrap();
        }
        let parsed = TestSet::from_text(&set.to_text()).unwrap();
        prop_assert_eq!(parsed, set);
    }

    /// Cube-file round-trip over arbitrary scan geometries:
    /// `parse(write(set))` is identity for every geometry and cube mix,
    /// and a second write is byte-stable.
    #[test]
    fn cube_file_roundtrip_any_geometry(
        chains in 1usize..6,
        depth in 1usize..8,
        rows in proptest::collection::vec(any::<u64>(), 0..10),
    ) {
        let cfg = ScanConfig::new(chains, depth).unwrap();
        let mut set = TestSet::new(cfg);
        for &row in &rows {
            // derive a 01X row deterministically from the drawn word
            let text: String = (0..cfg.cells())
                .map(|i| match (row >> (i % 32)) & 0b11 {
                    0 => '0',
                    1 => '1',
                    _ => 'X',
                })
                .collect();
            set.push(text.parse().unwrap()).unwrap();
        }
        let text = set.to_text();
        let parsed = TestSet::from_text(&text).unwrap();
        prop_assert_eq!(&parsed, &set);
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// The cube-file parser never panics on arbitrary byte soup.
    #[test]
    fn cube_file_parser_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = TestSet::from_text(&text);
    }

    /// drop_covered never removes coverage: every vector matching some
    /// original cube still matches a surviving cube that implies it...
    /// precisely: for every removed cube there is a surviving cube
    /// whose matches are a subset of the removed one's.
    #[test]
    fn drop_covered_preserves_semantics(
        cubes in proptest::collection::vec(cube_string(8), 1..10),
        probe_raw in any::<u8>(),
    ) {
        let mut set = TestSet::new(ScanConfig::new(2, 4).unwrap());
        for text in &cubes {
            set.push(text.parse().unwrap()).unwrap();
        }
        let original: Vec<TestCube> = set.cubes().to_vec();
        set.drop_covered();
        let probe = BitVec::from_u128(8, probe_raw as u128);
        // if the probe satisfies every surviving cube, it satisfies
        // every original cube too (the survivors are the strongest)
        let survives = set.iter().all(|c| c.matches(&probe));
        if survives {
            for cube in &original {
                prop_assert!(
                    cube.matches(&probe),
                    "dropped cube {} lost coverage",
                    cube
                );
            }
        }
    }

    /// WTM is invariant under complementing the whole vector and
    /// bounded by the analytic maximum.
    #[test]
    fn wtm_bounds_and_symmetry(raw in proptest::collection::vec(any::<bool>(), 24)) {
        let cfg = ScanConfig::new(4, 6).unwrap();
        let v = BitVec::from_bits(raw);
        let mut complement = v.clone();
        complement.xor_with(&BitVec::ones(24));
        let w = weighted_transitions(&v, cfg);
        prop_assert_eq!(w, weighted_transitions(&complement, cfg));
        prop_assert!(w <= crate::max_wtm(cfg));
    }
}
