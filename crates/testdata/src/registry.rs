//! The named workload corpus: every input the system can be driven
//! with, addressable by name.
//!
//! Benches, tests, docs and the `state-skip` CLI all pull workloads
//! from this registry instead of re-generating them ad hoc, so a name
//! like `"mini-7"` or `"s13207"` means the same bits everywhere. Two
//! kinds of entry exist:
//!
//! * **File workloads** — a generator-built circuit serialised to
//!   ISCAS'89 `.bench` text plus its Podem-generated uncompacted cube
//!   set in the workspace cube-file format, both checked in under
//!   `crates/testdata/workloads/` and embedded with [`include_str!`].
//!   Each carries [`FileProvenance`] (generator spec, seeds, chain
//!   count), and the workspace test `corpus_identity` proves the
//!   checked-in bytes are exactly what the provenance regenerates.
//! * **Profile workloads** — the five paper circuits' synthetic cube
//!   sets, materialised on demand from their [`CubeProfile`] with the
//!   canonical corpus seed. Their cube sets are megabytes when
//!   serialised, so they are generated (deterministically) rather than
//!   embedded.
//!
//! ```
//! use ss_testdata::WorkloadRegistry;
//!
//! let workload = WorkloadRegistry::find("mini-7").unwrap();
//! let set = workload.test_set();
//! assert!(!set.is_empty());
//! assert!(WorkloadRegistry::find("s13207").is_some());
//! ```

use crate::{generate_test_set, CubeProfile, TestSet};

/// The RNG seed every profile workload is materialised with — the
/// workspace-wide canonical workload seed (also used by `ss-bench`).
pub const CORPUS_SEED: u64 = 2008;

/// How a file workload was produced, sufficient to regenerate it
/// bit-identically (see the workspace `corpus_identity` test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileProvenance {
    /// `ss_circuit::CircuitSpec` preset name (`"tiny"`, `"mini"`, ...).
    pub spec: &'static str,
    /// Seed passed to `ss_circuit::random_circuit`.
    pub circuit_seed: u64,
    /// Seed passed to `ss_circuit::generate_uncompacted_test_set`.
    pub atpg_seed: u64,
    /// Scan chains the cubes were mapped onto
    /// (`ScanConfig::for_cells(chains, circuit inputs)`).
    pub chains: usize,
}

/// Where a workload's bits come from.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadSource {
    /// Checked-in `.bench` + cube-set text, embedded at compile time.
    Files {
        /// The ISCAS'89 `.bench` netlist source.
        bench: &'static str,
        /// The cube-set file source (workspace `01X` format).
        cubes: &'static str,
        /// How the two files were produced.
        provenance: FileProvenance,
    },
    /// A synthetic profile materialised with [`CORPUS_SEED`].
    Profile {
        /// Constructor of the profile (e.g. [`CubeProfile::s13207`]).
        profile: fn() -> CubeProfile,
    },
}

/// One named corpus entry.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Unique registry name (what benches/tests/CLI reference).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Where the bits come from.
    pub source: WorkloadSource,
}

impl Workload {
    /// The workload's test set.
    ///
    /// File workloads parse their embedded cube text; profile
    /// workloads generate from the profile at [`CORPUS_SEED`].
    ///
    /// # Panics
    ///
    /// Panics if an embedded corpus file is corrupt — impossible for a
    /// released build, since the `corpus_identity` and `golden_corpus`
    /// tests parse every entry.
    pub fn test_set(&self) -> TestSet {
        match self.source {
            WorkloadSource::Files { cubes, .. } => TestSet::from_text(cubes)
                .unwrap_or_else(|e| panic!("corpus entry {:?} is corrupt: {e}", self.name)),
            WorkloadSource::Profile { profile } => generate_test_set(&profile(), CORPUS_SEED),
        }
    }

    /// A prefix of the workload's test set: the first
    /// `ceil(len * factor)` cubes (at least one; `factor` is clamped
    /// to `(0, 1]`).
    ///
    /// For profile workloads this equals generating the scaled profile
    /// directly ([`CubeProfile::scaled`]) because cube generation is
    /// sequential in the RNG stream — a property pinned by a registry
    /// test — so scaled benches and golden tests stay bit-comparable
    /// with full-size runs.
    pub fn test_set_scaled(&self, factor: f64) -> TestSet {
        let total = self.cube_count();
        let keep =
            ((total as f64 * factor.clamp(0.0, 1.0)).round() as usize).clamp(1, total.max(1));
        self.test_set_prefix(keep)
    }

    /// The first `n` cubes of the workload's test set (the whole set
    /// when `n` is larger). Same prefix contract as
    /// [`test_set_scaled`](Workload::test_set_scaled), keyed by count
    /// instead of fraction — what `ss-bench` uses to honour a scaled
    /// [`CubeProfile::cube_count`]. Profile workloads generate only
    /// the `n` cubes asked for (the prefix property makes that exact,
    /// not approximate); file workloads truncate the parsed set.
    pub fn test_set_prefix(&self, n: usize) -> TestSet {
        match self.source {
            WorkloadSource::Profile { profile } => {
                let mut p = profile();
                p.cube_count = p.cube_count.min(n);
                generate_test_set(&p, CORPUS_SEED)
            }
            WorkloadSource::Files { .. } => prefix_of(self.test_set(), n),
        }
    }

    /// Number of cubes in the workload, without materialising a
    /// profile workload's cube set.
    pub fn cube_count(&self) -> usize {
        match self.source {
            WorkloadSource::Files { .. } => self.test_set().len(),
            WorkloadSource::Profile { profile } => profile().cube_count,
        }
    }

    /// The embedded `.bench` netlist text, for file workloads.
    pub fn bench_text(&self) -> Option<&'static str> {
        match self.source {
            WorkloadSource::Files { bench, .. } => Some(bench),
            WorkloadSource::Profile { .. } => None,
        }
    }

    /// The embedded cube-set file text, for file workloads.
    pub fn cubes_text(&self) -> Option<&'static str> {
        match self.source {
            WorkloadSource::Files { cubes, .. } => Some(cubes),
            WorkloadSource::Profile { .. } => None,
        }
    }

    /// The regeneration recipe, for file workloads.
    pub fn provenance(&self) -> Option<FileProvenance> {
        match self.source {
            WorkloadSource::Files { provenance, .. } => Some(provenance),
            WorkloadSource::Profile { .. } => None,
        }
    }

    /// The underlying cube profile, for profile workloads.
    pub fn profile(&self) -> Option<CubeProfile> {
        match self.source {
            WorkloadSource::Files { .. } => None,
            WorkloadSource::Profile { profile } => Some(profile()),
        }
    }
}

/// The first `keep` cubes of `full` as a new set (all of them when
/// `keep` exceeds the set).
fn prefix_of(full: TestSet, keep: usize) -> TestSet {
    if keep >= full.len() {
        return full;
    }
    let mut set = TestSet::new(full.config());
    for cube in full.cubes().iter().take(keep) {
        set.push(cube.clone()).expect("same geometry");
    }
    set
}

/// Every corpus entry, in registry order: the file workloads first,
/// then the five paper profiles.
static WORKLOADS: &[Workload] = &[
    Workload {
        name: "tiny-1",
        description: "12-input generated circuit, Podem cubes on 4 scan chains",
        source: WorkloadSource::Files {
            bench: include_str!("../workloads/tiny-1.bench"),
            cubes: include_str!("../workloads/tiny-1.cubes"),
            provenance: FileProvenance {
                spec: "tiny",
                circuit_seed: 1,
                atpg_seed: 1,
                chains: 4,
            },
        },
    },
    Workload {
        name: "tiny-pad",
        description: "12-input generated circuit on 5 chains (15 cells, 3 padding)",
        source: WorkloadSource::Files {
            bench: include_str!("../workloads/tiny-pad.bench"),
            cubes: include_str!("../workloads/tiny-pad.cubes"),
            provenance: FileProvenance {
                spec: "tiny",
                circuit_seed: 3,
                atpg_seed: 3,
                chains: 5,
            },
        },
    },
    Workload {
        name: "mini-7",
        description: "64-input generated circuit, Podem cubes on 8 scan chains",
        source: WorkloadSource::Files {
            bench: include_str!("../workloads/mini-7.bench"),
            cubes: include_str!("../workloads/mini-7.cubes"),
            provenance: FileProvenance {
                spec: "mini",
                circuit_seed: 7,
                atpg_seed: 7,
                chains: 8,
            },
        },
    },
    Workload {
        name: "mini-13",
        description: "64-input generated circuit (different seed), 8 scan chains",
        source: WorkloadSource::Files {
            bench: include_str!("../workloads/mini-13.bench"),
            cubes: include_str!("../workloads/mini-13.cubes"),
            provenance: FileProvenance {
                spec: "mini",
                circuit_seed: 13,
                atpg_seed: 13,
                chains: 8,
            },
        },
    },
    Workload {
        name: "s9234",
        description: "paper profile: 247 cells, 410 cubes, 44-bit LFSR",
        source: WorkloadSource::Profile {
            profile: CubeProfile::s9234,
        },
    },
    Workload {
        name: "s13207",
        description: "paper profile: 700 cells, 620 cubes, 24-bit LFSR",
        source: WorkloadSource::Profile {
            profile: CubeProfile::s13207,
        },
    },
    Workload {
        name: "s15850",
        description: "paper profile: 611 cells, 505 cubes, 39-bit LFSR",
        source: WorkloadSource::Profile {
            profile: CubeProfile::s15850,
        },
    },
    Workload {
        name: "s38417",
        description: "paper profile: 1664 cells, 1165 cubes, 85-bit LFSR",
        source: WorkloadSource::Profile {
            profile: CubeProfile::s38417,
        },
    },
    Workload {
        name: "s38584",
        description: "paper profile: 1464 cells, 687 cubes, 56-bit LFSR",
        source: WorkloadSource::Profile {
            profile: CubeProfile::s38584,
        },
    },
];

/// The named workload corpus.
///
/// File workloads are checked-in `.bench` + cube pairs with recorded
/// provenance; profile workloads are the five paper circuits
/// materialised at [`CORPUS_SEED`]. Look up entries with
/// [`WorkloadRegistry::find`] or iterate [`WorkloadRegistry::all`].
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRegistry;

impl WorkloadRegistry {
    /// Every workload, in registry order.
    pub fn all() -> &'static [Workload] {
        WORKLOADS
    }

    /// Looks a workload up by name.
    pub fn find(name: &str) -> Option<&'static Workload> {
        WORKLOADS.iter().find(|w| w.name == name)
    }

    /// All registry names, in order.
    pub fn names() -> Vec<&'static str> {
        WORKLOADS.iter().map(|w| w.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_lookup_works() {
        let names = WorkloadRegistry::names();
        for (i, name) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(name), "duplicate name {name}");
            assert_eq!(WorkloadRegistry::find(name).unwrap().name, *name);
        }
        assert!(WorkloadRegistry::find("no-such-workload").is_none());
    }

    #[test]
    fn file_workloads_parse_and_match_their_provenance_geometry() {
        for w in WorkloadRegistry::all() {
            let Some(prov) = w.provenance() else { continue };
            let set = w.test_set();
            assert!(!set.is_empty(), "{}: empty corpus cube set", w.name);
            assert_eq!(
                set.config().chains(),
                prov.chains,
                "{}: chain count drifted from provenance",
                w.name
            );
            assert!(w.bench_text().unwrap().contains("INPUT("), "{}", w.name);
        }
    }

    #[test]
    fn profile_workloads_generate_their_full_profile() {
        let w = WorkloadRegistry::find("s13207").unwrap();
        let profile = w.profile().unwrap();
        let set = w.test_set();
        assert_eq!(set.len(), profile.cube_count);
        assert_eq!(set.smax(), profile.smax);
        assert_eq!(set, generate_test_set(&profile, CORPUS_SEED));
    }

    #[test]
    fn profile_prefix_is_a_true_prefix() {
        // test_set_prefix generates only n cubes for profiles; the
        // result must still be an exact prefix of the full generation
        let w = WorkloadRegistry::find("s13207").unwrap();
        let full = w.test_set();
        let prefix = w.test_set_prefix(10);
        assert_eq!(prefix.cubes(), &full.cubes()[..10]);
        assert_eq!(w.cube_count(), full.len());
        assert_eq!(w.test_set_prefix(usize::MAX), full);
    }

    #[test]
    fn scaled_prefix_equals_scaled_generation() {
        // the documented contract behind test_set_scaled: generating a
        // scaled profile equals truncating the full generation
        let w = WorkloadRegistry::find("s9234").unwrap();
        let profile = w.profile().unwrap();
        let scaled = w.test_set_scaled(0.25);
        assert_eq!(
            scaled,
            generate_test_set(&profile.scaled(0.25), CORPUS_SEED)
        );
        // file workloads truncate too
        let f = WorkloadRegistry::find("tiny-1").unwrap();
        let half = f.test_set_scaled(0.5);
        assert_eq!(
            half.len(),
            (f.test_set().len() as f64 * 0.5).round() as usize
        );
    }
}
