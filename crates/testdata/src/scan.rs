//! Scan-chain geometry and the cube-bit ↔ clock-cycle mapping.

use std::error::Error;
use std::fmt;

/// Error constructing a [`ScanConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScanConfigError {
    /// Zero scan chains requested.
    ZeroChains,
    /// Zero-depth scan chains requested.
    ZeroDepth,
}

impl fmt::Display for ScanConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanConfigError::ZeroChains => write!(f, "scan configuration needs >= 1 chain"),
            ScanConfigError::ZeroDepth => write!(f, "scan chains need depth >= 1"),
        }
    }
}

impl Error for ScanConfigError {}

/// Scan-chain geometry: `chains` (the paper's `m`) balanced chains of
/// `depth` cells each (the paper's `r`).
///
/// Cube positions are flattened as `cell = chain * depth + position`
/// with `position` counted from the scan input (position 0 is loaded
/// *last*). During decompression the phase shifter output for chain
/// `c` at in-vector clock `t` supplies the bit that ends the load at
/// depth `depth - 1 - t`; [`ScanConfig::load_cycle`] encodes that
/// relation and is used identically by the seed-solver and the
/// cycle-accurate decompressor, so the two can never disagree.
///
/// # Example
///
/// ```
/// use ss_testdata::ScanConfig;
///
/// # fn main() -> Result<(), ss_testdata::ScanConfigError> {
/// let cfg = ScanConfig::new(32, 22)?;
/// assert_eq!(cfg.cells(), 704);
/// let (chain, pos) = cfg.chain_of(700);
/// assert_eq!(cfg.cell_index(chain, pos), 700);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScanConfig {
    chains: usize,
    depth: usize,
}

impl ScanConfig {
    /// Creates a configuration of `chains` chains, each `depth` deep.
    ///
    /// # Errors
    ///
    /// Returns [`ScanConfigError`] if either dimension is zero.
    pub fn new(chains: usize, depth: usize) -> Result<Self, ScanConfigError> {
        if chains == 0 {
            return Err(ScanConfigError::ZeroChains);
        }
        if depth == 0 {
            return Err(ScanConfigError::ZeroDepth);
        }
        Ok(ScanConfig { chains, depth })
    }

    /// Builds the smallest balanced configuration with `chains` chains
    /// covering at least `cells` scan cells (`depth = ceil(cells /
    /// chains)`), padding the remainder — how the paper maps the
    /// ISCAS'89 cores onto 32 chains.
    ///
    /// # Errors
    ///
    /// Returns [`ScanConfigError`] if `chains == 0` or `cells == 0`.
    pub fn for_cells(chains: usize, cells: usize) -> Result<Self, ScanConfigError> {
        if cells == 0 {
            return Err(ScanConfigError::ZeroDepth);
        }
        ScanConfig::new(chains, cells.div_ceil(chains.max(1)))
    }

    /// Number of scan chains `m`.
    pub fn chains(&self) -> usize {
        self.chains
    }

    /// Chain depth `r` (cells per chain; also clocks per vector load).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total scan cells `m * r` (the test vector width).
    pub fn cells(&self) -> usize {
        self.chains * self.depth
    }

    /// Flattened cell index of `(chain, position)`.
    ///
    /// # Panics
    ///
    /// Panics if `chain >= chains()` or `position >= depth()`.
    pub fn cell_index(&self, chain: usize, position: usize) -> usize {
        assert!(chain < self.chains, "chain {chain} out of range");
        assert!(position < self.depth, "position {position} out of range");
        chain * self.depth + position
    }

    /// Inverse of [`cell_index`](ScanConfig::cell_index):
    /// `(chain, position)` of a flattened cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cells()`.
    pub fn chain_of(&self, cell: usize) -> (usize, usize) {
        assert!(cell < self.cells(), "cell {cell} out of range");
        (cell / self.depth, cell % self.depth)
    }

    /// The in-vector clock cycle (0-based) at which the bit destined
    /// for `position` must appear at the chain input: position 0 (the
    /// cell nearest the scan input) is loaded last, at cycle
    /// `depth - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= depth()`.
    pub fn load_cycle(&self, position: usize) -> usize {
        assert!(position < self.depth, "position {position} out of range");
        self.depth - 1 - position
    }

    /// The scan position that the bit appearing at in-vector clock
    /// `cycle` ends up in. Inverse of [`load_cycle`](ScanConfig::load_cycle).
    ///
    /// # Panics
    ///
    /// Panics if `cycle >= depth()`.
    pub fn position_loaded_at(&self, cycle: usize) -> usize {
        assert!(cycle < self.depth, "cycle {cycle} out of range");
        self.depth - 1 - cycle
    }
}

impl fmt::Display for ScanConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} chains x {} cells", self.chains, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        assert_eq!(ScanConfig::new(0, 5), Err(ScanConfigError::ZeroChains));
        assert_eq!(ScanConfig::new(5, 0), Err(ScanConfigError::ZeroDepth));
        assert!(ScanConfig::new(1, 1).is_ok());
    }

    #[test]
    fn for_cells_rounds_up() {
        let cfg = ScanConfig::for_cells(32, 247).unwrap();
        assert_eq!(cfg.chains(), 32);
        assert_eq!(cfg.depth(), 8);
        assert!(cfg.cells() >= 247);
        // exact division
        let cfg = ScanConfig::for_cells(32, 704).unwrap();
        assert_eq!(cfg.depth(), 22);
        assert!(ScanConfig::for_cells(32, 0).is_err());
    }

    #[test]
    fn cell_index_roundtrip() {
        let cfg = ScanConfig::new(7, 13).unwrap();
        for cell in 0..cfg.cells() {
            let (chain, pos) = cfg.chain_of(cell);
            assert_eq!(cfg.cell_index(chain, pos), cell);
        }
    }

    #[test]
    fn load_cycle_is_involution_partner() {
        let cfg = ScanConfig::new(3, 9).unwrap();
        for pos in 0..9 {
            assert_eq!(cfg.position_loaded_at(cfg.load_cycle(pos)), pos);
        }
        // first-loaded bit ends deepest
        assert_eq!(cfg.load_cycle(cfg.depth() - 1), 0);
        assert_eq!(cfg.load_cycle(0), cfg.depth() - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_index_bounds() {
        let cfg = ScanConfig::new(2, 3).unwrap();
        cfg.cell_index(2, 0);
    }

    #[test]
    fn display_mentions_geometry() {
        let cfg = ScanConfig::new(32, 22).unwrap();
        assert_eq!(cfg.to_string(), "32 chains x 22 cells");
    }
}
