//! Statistical test-cube generation with paper-calibrated profiles.
//!
//! The paper evaluates on uncompacted Atalanta test sets for the five
//! largest ISCAS'89 circuits. Those exact test sets are not
//! redistributable, but the encoding algorithms only see *test cubes*;
//! what determines the results is the scan-cell count and the
//! specified-bit statistics. [`CubeProfile`] captures those statistics
//! (calibrated against the numbers the paper itself reports: LFSR
//! sizes, seed counts, and the 93123 specified bits quoted for s38417)
//! and [`generate_cubes`] draws a deterministic synthetic test set from
//! a profile. See `DESIGN.md` § Substitutions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{ScanConfig, TestCube, TestSet};

/// Statistical profile of a core's test set.
///
/// # Example
///
/// ```
/// use ss_testdata::{generate_test_set, CubeProfile};
///
/// let set = generate_test_set(&CubeProfile::mini(), 7);
/// assert_eq!(set.len(), CubeProfile::mini().cube_count);
/// assert!(set.smax() <= CubeProfile::mini().smax);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CubeProfile {
    /// Human-readable name (e.g. `"s13207"`).
    pub name: &'static str,
    /// Scan cells of the core (flip-flops + primary inputs).
    pub scan_cells: usize,
    /// Scan chains assumed by the paper (32 for every circuit).
    pub chains: usize,
    /// Number of test cubes in the uncompacted set.
    pub cube_count: usize,
    /// Maximum specified bits of any cube.
    pub smax: usize,
    /// Minimum specified bits of any cube (uncompacted per-fault cubes
    /// always pin at least the fault's activation/propagation cone).
    pub min_specified: usize,
    /// Mean specified bits per cube.
    pub mean_specified: f64,
    /// The LFSR size the paper uses for this core (Table 1).
    pub lfsr_size: usize,
}

impl CubeProfile {
    /// s9234-like profile (247 scan cells, 44-bit LFSR).
    ///
    /// All profiles keep `smax` at least ~10 below the paper's LFSR
    /// size: within-vector linear dependencies are position-invariant
    /// (see `ss-core`'s encoder docs), so the margin keeps the
    /// probability of an unencodable cube negligible, as in the
    /// paper's real test sets.
    pub fn s9234() -> Self {
        CubeProfile {
            name: "s9234",
            scan_cells: 247,
            chains: 32,
            cube_count: 410,
            smax: 37,
            min_specified: 20,
            mean_specified: 26.0,
            lfsr_size: 44,
        }
    }

    /// s13207-like profile (700 scan cells, 24-bit LFSR) — the circuit
    /// the paper's Fig. 4 sweeps focus on.
    pub fn s13207() -> Self {
        CubeProfile {
            name: "s13207",
            scan_cells: 700,
            chains: 32,
            cube_count: 620,
            smax: 20,
            min_specified: 11,
            mean_specified: 14.0,
            lfsr_size: 24,
        }
    }

    /// s15850-like profile (611 scan cells, 39-bit LFSR).
    pub fn s15850() -> Self {
        CubeProfile {
            name: "s15850",
            scan_cells: 611,
            chains: 32,
            cube_count: 505,
            smax: 32,
            min_specified: 18,
            mean_specified: 23.0,
            lfsr_size: 39,
        }
    }

    /// s38417-like profile (1664 scan cells, 85-bit LFSR).
    ///
    /// The paper quotes 93123 specified bits for its s38417 test set —
    /// more than its classical-reseeding TDV of 58225 bits, which is
    /// possible only because real per-fault cubes overlap heavily
    /// (shared activation cones make many equations redundant).
    /// Uniform-random cube positions cannot reproduce both numbers at
    /// once; the profiles are calibrated to the *seed counts* (TDV),
    /// which drive every table, so this profile carries ~58k specified
    /// bits instead.
    pub fn s38417() -> Self {
        CubeProfile {
            name: "s38417",
            scan_cells: 1664,
            chains: 32,
            cube_count: 1165,
            smax: 70,
            min_specified: 39,
            mean_specified: 50.0,
            lfsr_size: 85,
        }
    }

    /// s38584-like profile (1464 scan cells, 56-bit LFSR).
    pub fn s38584() -> Self {
        CubeProfile {
            name: "s38584",
            scan_cells: 1464,
            chains: 32,
            cube_count: 687,
            smax: 47,
            min_specified: 26,
            mean_specified: 33.0,
            lfsr_size: 56,
        }
    }

    /// All five paper circuits, in the paper's table order.
    pub fn paper_circuits() -> Vec<CubeProfile> {
        vec![
            CubeProfile::s9234(),
            CubeProfile::s13207(),
            CubeProfile::s15850(),
            CubeProfile::s38417(),
            CubeProfile::s38584(),
        ]
    }

    /// A small profile for unit tests and examples (64 cells, 8 chains).
    pub fn mini() -> Self {
        CubeProfile {
            name: "mini",
            scan_cells: 64,
            chains: 8,
            cube_count: 40,
            smax: 12,
            min_specified: 2,
            mean_specified: 5.0,
            lfsr_size: 16,
        }
    }

    /// Returns a copy with the cube count scaled by `factor` (rounded,
    /// at least 1). Benches use this to trade fidelity for runtime;
    /// `EXPERIMENTS.md` records the factor used per experiment.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut p = self.clone();
        p.cube_count = ((p.cube_count as f64 * factor).round() as usize).max(1);
        p
    }

    /// The scan geometry the paper maps this core onto.
    pub fn scan_config(&self) -> ScanConfig {
        ScanConfig::for_cells(self.chains, self.scan_cells)
            .expect("profiles always have nonzero geometry")
    }
}

/// Draws `profile.cube_count` cubes with the profile's specified-bit
/// statistics, deterministically from `seed`.
///
/// The per-cube specified count follows a geometric-like distribution
/// with the profile's mean, truncated to `[1, smax]`; one cube is
/// forced to exactly `smax` bits so the set's `smax` (and therefore the
/// required LFSR size) is pinned. Specified positions are uniform over
/// the cells; values are fair coin flips.
pub fn generate_cubes(profile: &CubeProfile, seed: u64) -> Vec<TestCube> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5354_4154_4553_4b50); // "STATESKP"
    let cells = profile.scan_config().cells();
    let mut cubes = Vec::with_capacity(profile.cube_count);
    for i in 0..profile.cube_count {
        let s = if i == 0 {
            profile.smax
        } else {
            sample_specified(profile, &mut rng)
        };
        cubes.push(TestCube::random(cells, s, &mut rng));
    }
    cubes
}

/// Like [`generate_cubes`] but wraps the result in a [`TestSet`] with
/// the profile's scan geometry.
pub fn generate_test_set(profile: &CubeProfile, seed: u64) -> TestSet {
    let mut set = TestSet::new(profile.scan_config());
    for cube in generate_cubes(profile, seed) {
        set.push(cube).expect("generated cubes match the geometry");
    }
    set
}

/// Shifted-geometric sample with the profile's mean, truncated to
/// `[min_specified, smax]`.
fn sample_specified(profile: &CubeProfile, rng: &mut SmallRng) -> usize {
    let min = profile.min_specified.min(profile.smax).max(1);
    // geometric tail above the floor, with the right overall mean;
    // resample (rarely) when above smax to keep the truncation from
    // piling mass at smax
    let tail_mean = (profile.mean_specified - min as f64 + 1.0).max(1.0);
    let p = (1.0 / tail_mean).clamp(1e-6, 1.0);
    for _ in 0..64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let tail = (u.ln() / (1.0 - p).ln()).floor() as usize; // >= 0
        let s = min + tail;
        if s <= profile.smax {
            return s;
        }
    }
    profile.smax
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = CubeProfile::mini();
        assert_eq!(generate_cubes(&p, 42), generate_cubes(&p, 42));
        assert_ne!(generate_cubes(&p, 42), generate_cubes(&p, 43));
    }

    #[test]
    fn smax_is_pinned_and_respected() {
        let p = CubeProfile::mini();
        let set = generate_test_set(&p, 1);
        assert_eq!(set.smax(), p.smax, "one cube must hit smax exactly");
        for cube in &set {
            assert!(cube.specified_count() >= p.min_specified);
            assert!(cube.specified_count() <= p.smax);
        }
    }

    #[test]
    fn mean_specified_is_roughly_calibrated() {
        let p = CubeProfile::s13207().scaled(0.5);
        let set = generate_test_set(&p, 3);
        let stats = set.stats();
        let ratio = stats.mean_specified / p.mean_specified;
        assert!(
            (0.7..1.3).contains(&ratio),
            "mean {} too far from profile {}",
            stats.mean_specified,
            p.mean_specified
        );
    }

    #[test]
    fn paper_profiles_are_consistent() {
        for p in CubeProfile::paper_circuits() {
            assert_eq!(p.chains, 32, "{}: paper assumes 32 chains", p.name);
            assert!(
                p.smax <= p.lfsr_size,
                "{}: smax must not exceed the LFSR size",
                p.name
            );
            assert!(
                p.min_specified as f64 <= p.mean_specified,
                "{}: min above mean",
                p.name
            );
            let cfg = p.scan_config();
            assert!(
                cfg.cells() >= p.scan_cells,
                "{}: geometry must cover cells",
                p.name
            );
        }
    }

    #[test]
    fn profiles_are_calibrated_to_paper_classical_tdv() {
        // cube_count * mean ~= the paper's classical-reseeding TDV
        // (Table 1, L=1), the quantity the profiles are tuned against.
        for (p, tdv) in [
            (CubeProfile::s9234(), 10692.0),
            (CubeProfile::s13207(), 8856.0),
            (CubeProfile::s15850(), 11622.0),
            (CubeProfile::s38417(), 58225.0),
            (CubeProfile::s38584(), 22680.0),
        ] {
            let total = p.cube_count as f64 * p.mean_specified;
            let ratio = total / tdv;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}: total specified {total} vs classical TDV {tdv}",
                p.name
            );
        }
    }

    #[test]
    fn scaled_profile() {
        let p = CubeProfile::s9234();
        assert_eq!(p.scaled(0.5).cube_count, 205);
        assert_eq!(p.scaled(0.0).cube_count, 1);
        assert_eq!(p.scaled(1.0), p);
    }

    #[test]
    fn generated_set_parses_back() {
        let set = generate_test_set(&CubeProfile::mini(), 9);
        let text = set.to_text();
        let parsed = crate::TestSet::from_text(&text).unwrap();
        assert_eq!(parsed, set);
    }
}
