//! Scan-shift power estimation: the weighted transitions metric (WTM).
//!
//! Test power is dominated by the transitions a vector causes while it
//! shifts through the scan chains. The classic estimate (Sankaralingam
//! et al.) weights each adjacent-bit transition of the vector by how
//! many shift cycles it stays in the chain: a transition between scan
//! positions `j` and `j+1` (counted from the scan input) toggles cells
//! for `depth - 1 - j` cycles.
//!
//! The State Skip paper does not evaluate power, but one of its
//! baselines ([21], low-power reseeding) is power-motivated, and a
//! practical adopter will want to know what pseudorandom filling does
//! to shift power — so the workspace carries the metric as an
//! extension (see `DESIGN.md` § 7).

use ss_gf2::BitVec;

use crate::ScanConfig;

/// Weighted transitions of one fully specified vector while it loads
/// into the scan chains.
///
/// For each chain, each transition between scan positions `j` and
/// `j+1` contributes `depth - 1 - j`.
///
/// # Panics
///
/// Panics if `vector.len()` differs from the configuration's cell
/// count.
///
/// # Example
///
/// ```
/// use ss_gf2::BitVec;
/// use ss_testdata::{weighted_transitions, ScanConfig};
///
/// # fn main() -> Result<(), ss_testdata::ScanConfigError> {
/// let scan = ScanConfig::new(1, 4)?;
/// // 0101 has transitions at j=0,1,2 with weights 3,2,1
/// let v = BitVec::from_bits([false, true, false, true]);
/// assert_eq!(weighted_transitions(&v, scan), 6);
/// // constant vectors cause no shift transitions
/// assert_eq!(weighted_transitions(&BitVec::zeros(4), scan), 0);
/// # Ok(())
/// # }
/// ```
pub fn weighted_transitions(vector: &BitVec, scan: ScanConfig) -> u64 {
    assert_eq!(vector.len(), scan.cells(), "vector width mismatch");
    let r = scan.depth();
    let mut total = 0u64;
    for chain in 0..scan.chains() {
        for j in 0..r - 1 {
            let a = vector.get(scan.cell_index(chain, j));
            let b = vector.get(scan.cell_index(chain, j + 1));
            if a != b {
                total += (r - 1 - j) as u64;
            }
        }
    }
    total
}

/// Shift-power summary of an applied test sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Sum of weighted transitions over all vectors.
    pub total_wtm: u64,
    /// Maximum single-vector WTM (peak power proxy).
    pub peak_wtm: u64,
    /// Mean WTM per vector.
    pub mean_wtm: f64,
    /// Vectors accounted.
    pub vectors: usize,
}

/// Computes the [`PowerReport`] of a vector sequence.
///
/// # Panics
///
/// Panics if any vector's width differs from the configuration.
pub fn sequence_power<'a, I>(vectors: I, scan: ScanConfig) -> PowerReport
where
    I: IntoIterator<Item = &'a BitVec>,
{
    let mut total = 0u64;
    let mut peak = 0u64;
    let mut count = 0usize;
    for v in vectors {
        let wtm = weighted_transitions(v, scan);
        total += wtm;
        peak = peak.max(wtm);
        count += 1;
    }
    PowerReport {
        total_wtm: total,
        peak_wtm: peak,
        mean_wtm: if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        },
        vectors: count,
    }
}

/// The maximum possible WTM of a single vector under this geometry
/// (alternating bits in every chain): `chains * depth*(depth-1)/2`.
pub fn max_wtm(scan: ScanConfig) -> u64 {
    let r = scan.depth() as u64;
    scan.chains() as u64 * r * (r - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn alternating_vector_hits_max() {
        let scan = ScanConfig::new(2, 5).unwrap();
        let v = BitVec::from_bits((0..10).map(|i| i % 2 == 0));
        assert_eq!(weighted_transitions(&v, scan), max_wtm(scan));
    }

    #[test]
    fn constant_vectors_are_free() {
        let scan = ScanConfig::new(3, 7).unwrap();
        assert_eq!(weighted_transitions(&BitVec::zeros(21), scan), 0);
        assert_eq!(weighted_transitions(&BitVec::ones(21), scan), 0);
    }

    #[test]
    fn single_transition_weight_depends_on_position() {
        let scan = ScanConfig::new(1, 6).unwrap();
        // transition between positions 0 and 1: weight depth-1-0 = 5
        let mut v = BitVec::zeros(6);
        v.set(0, true);
        assert_eq!(weighted_transitions(&v, scan), 5);
        // transition between positions 4 and 5: weight 1
        let mut v = BitVec::zeros(6);
        v.set(5, true);
        assert_eq!(weighted_transitions(&v, scan), 1);
    }

    #[test]
    fn report_aggregates() {
        let scan = ScanConfig::new(1, 4).unwrap();
        let a = BitVec::from_bits([false, true, false, true]); // 6
        let b = BitVec::zeros(4); // 0
        let report = sequence_power([&a, &b], scan);
        assert_eq!(report.total_wtm, 6);
        assert_eq!(report.peak_wtm, 6);
        assert_eq!(report.vectors, 2);
        assert!((report.mean_wtm - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sequence() {
        let scan = ScanConfig::new(1, 4).unwrap();
        let report = sequence_power(std::iter::empty(), scan);
        assert_eq!(report.total_wtm, 0);
        assert_eq!(report.mean_wtm, 0.0);
    }

    #[test]
    fn random_vectors_average_near_half_max() {
        let scan = ScanConfig::new(4, 16).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let vectors: Vec<BitVec> = (0..200).map(|_| BitVec::random(64, &mut rng)).collect();
        let report = sequence_power(&vectors, scan);
        let ratio = report.mean_wtm / max_wtm(scan) as f64;
        assert!(
            (0.4..0.6).contains(&ratio),
            "random fill should average ~half of max WTM, got {ratio}"
        );
    }
}
