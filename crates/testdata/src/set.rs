//! Test-set containers, statistics and serialisation.

use std::error::Error;
use std::fmt;

use ss_gf2::BitVec;

use crate::{ParseCubeError, ScanConfig, TestCube};

/// Error mutating a [`TestSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TestSetError {
    /// A cube's length differs from the scan configuration's cell count.
    WidthMismatch {
        /// Cube length found.
        cube_len: usize,
        /// Expected cell count.
        cells: usize,
    },
}

impl fmt::Display for TestSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestSetError::WidthMismatch { cube_len, cells } => {
                write!(
                    f,
                    "cube has {cube_len} positions but the scan configuration has {cells} cells"
                )
            }
        }
    }
}

impl Error for TestSetError {}

/// Summary statistics of a [`TestSet`] — the quantities the encoding
/// algorithms and LFSR sizing depend on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestSetStats {
    /// Number of cubes.
    pub cube_count: usize,
    /// Maximum specified bits in any cube (the paper's `smax`,
    /// which lower-bounds the usable LFSR size).
    pub smax: usize,
    /// Total specified bits over all cubes.
    pub total_specified: usize,
    /// Mean specified bits per cube.
    pub mean_specified: f64,
}

/// A pre-computed test set: cubes plus the scan geometry they target.
///
/// # Example
///
/// ```
/// use ss_testdata::{ScanConfig, TestSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut set = TestSet::new(ScanConfig::new(2, 3)?);
/// set.push("1X0X10".parse()?)?;
/// set.push("XX1XXX".parse()?)?;
/// assert_eq!(set.stats().smax, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TestSet {
    config: ScanConfig,
    cubes: Vec<TestCube>,
}

impl TestSet {
    /// Creates an empty test set for the given scan geometry.
    pub fn new(config: ScanConfig) -> Self {
        TestSet {
            config,
            cubes: Vec::new(),
        }
    }

    /// The scan geometry.
    pub fn config(&self) -> ScanConfig {
        self.config
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// `true` when there are no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes, in order.
    pub fn cubes(&self) -> &[TestCube] {
        &self.cubes
    }

    /// Adds a cube.
    ///
    /// # Errors
    ///
    /// Returns [`TestSetError::WidthMismatch`] if the cube length does
    /// not equal the configured cell count.
    pub fn push(&mut self, cube: TestCube) -> Result<(), TestSetError> {
        if cube.len() != self.config.cells() {
            return Err(TestSetError::WidthMismatch {
                cube_len: cube.len(),
                cells: self.config.cells(),
            });
        }
        self.cubes.push(cube);
        Ok(())
    }

    /// Cube at `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cube(&self, index: usize) -> &TestCube {
        &self.cubes[index]
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, TestCube> {
        self.cubes.iter()
    }

    /// Maximum specified-bit count (`smax`); 0 for an empty set.
    pub fn smax(&self) -> usize {
        self.cubes
            .iter()
            .map(TestCube::specified_count)
            .max()
            .unwrap_or(0)
    }

    /// Full statistics snapshot.
    pub fn stats(&self) -> TestSetStats {
        let total: usize = self.cubes.iter().map(TestCube::specified_count).sum();
        TestSetStats {
            cube_count: self.cubes.len(),
            smax: self.smax(),
            total_specified: total,
            mean_specified: if self.cubes.is_empty() {
                0.0
            } else {
                total as f64 / self.cubes.len() as f64
            },
        }
    }

    /// Indices of all cubes, sorted by descending specified-bit count
    /// (the processing order of the paper's encoding algorithm).
    pub fn indices_by_specified_desc(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.cubes.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.cubes[i].specified_count()));
        idx
    }

    /// Removes cubes that are *covered* by another cube in the set (a
    /// cube B covers cube A when every vector matching B also matches
    /// A, i.e. A's specified bits are a sub-assignment of B's). Returns
    /// the number removed. Covered cubes are redundant for embedding:
    /// any vector embedding the coverer embeds the covered.
    pub fn drop_covered(&mut self) -> usize {
        let n = self.cubes.len();
        let mut keep = vec![true; n];
        for j in 0..n {
            for i in 0..n {
                if i == j || !keep[i] {
                    continue;
                }
                let removable = &self.cubes[j];
                let coverer = &self.cubes[i];
                let covers = removable.care().is_subset_of(coverer.care())
                    && removable.is_compatible(coverer);
                if covers {
                    // for identical cubes keep the earlier one
                    let identical = removable.care() == coverer.care();
                    if !identical || i < j {
                        keep[j] = false;
                        break;
                    }
                }
            }
        }
        let before = n;
        let mut it = keep.iter();
        self.cubes.retain(|_| *it.next().unwrap());
        before - self.cubes.len()
    }

    /// Checks which cubes match a fully specified vector; returns their
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the cell count.
    pub fn matching_cubes(&self, vector: &BitVec) -> Vec<usize> {
        self.cubes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(vector))
            .map(|(i, _)| i)
            .collect()
    }

    /// Serialises to the workspace text format:
    ///
    /// ```text
    /// # optional comments
    /// chains 32 depth 22
    /// 01XX10...
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chains {} depth {}\n",
            self.config.chains(),
            self.config.depth()
        ));
        for cube in &self.cubes {
            out.push_str(&cube.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`to_text`](TestSet::to_text).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTestSetError`] for a malformed header, an invalid
    /// cube character or a width mismatch.
    pub fn from_text(text: &str) -> Result<Self, ParseTestSetError> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or(ParseTestSetError::MissingHeader)?;
        let tokens: Vec<&str> = header.split_whitespace().collect();
        let (chains, depth) = match tokens.as_slice() {
            ["chains", c, "depth", d] => (
                c.parse().map_err(|_| ParseTestSetError::BadHeader)?,
                d.parse().map_err(|_| ParseTestSetError::BadHeader)?,
            ),
            _ => return Err(ParseTestSetError::BadHeader),
        };
        let config = ScanConfig::new(chains, depth).map_err(|_| ParseTestSetError::BadHeader)?;
        let mut set = TestSet::new(config);
        for (line_no, line) in lines.enumerate() {
            let cube: TestCube = line.parse().map_err(|e| ParseTestSetError::BadCube {
                line: line_no + 2,
                source: e,
            })?;
            set.push(cube)
                .map_err(|_| ParseTestSetError::WidthMismatch { line: line_no + 2 })?;
        }
        Ok(set)
    }
}

impl<'a> IntoIterator for &'a TestSet {
    type Item = &'a TestCube;
    type IntoIter = std::slice::Iter<'a, TestCube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

/// Error parsing a [`TestSet`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTestSetError {
    /// The input had no header line.
    MissingHeader,
    /// The header line was not `chains <m> depth <r>`.
    BadHeader,
    /// A cube line contained an invalid character.
    BadCube {
        /// 1-based line number.
        line: usize,
        /// Underlying cube parse error.
        source: ParseCubeError,
    },
    /// A cube line had the wrong number of positions.
    WidthMismatch {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseTestSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTestSetError::MissingHeader => write!(f, "missing header line"),
            ParseTestSetError::BadHeader => write!(f, "header must be `chains <m> depth <r>`"),
            ParseTestSetError::BadCube { line, source } => {
                write!(f, "line {line}: {source}")
            }
            ParseTestSetError::WidthMismatch { line } => {
                write!(f, "line {line}: cube width differs from header geometry")
            }
        }
    }
}

impl Error for ParseTestSetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTestSetError::BadCube { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> TestSet {
        let mut set = TestSet::new(ScanConfig::new(2, 3).unwrap());
        set.push("1X0X10".parse().unwrap()).unwrap();
        set.push("XX1XXX".parse().unwrap()).unwrap();
        set.push("0X1XXX".parse().unwrap()).unwrap();
        set
    }

    #[test]
    fn push_validates_width() {
        let mut set = TestSet::new(ScanConfig::new(2, 3).unwrap());
        let err = set.push("1X".parse().unwrap()).unwrap_err();
        assert!(matches!(
            err,
            TestSetError::WidthMismatch {
                cube_len: 2,
                cells: 6
            }
        ));
    }

    #[test]
    fn stats() {
        let set = small_set();
        let stats = set.stats();
        assert_eq!(stats.cube_count, 3);
        assert_eq!(stats.smax, 4);
        assert_eq!(stats.total_specified, 4 + 1 + 2);
        assert!((stats.mean_specified - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_set_stats() {
        let set = TestSet::new(ScanConfig::new(1, 1).unwrap());
        assert_eq!(set.smax(), 0);
        assert_eq!(set.stats().mean_specified, 0.0);
        assert!(set.is_empty());
    }

    #[test]
    fn indices_sorted_by_specified() {
        let set = small_set();
        let order = set.indices_by_specified_desc();
        assert_eq!(order[0], 0, "4-bit cube first");
        assert_eq!(set.cube(order[2]).specified_count(), 1, "1-bit cube last");
    }

    #[test]
    fn drop_covered_removes_subsumed() {
        let mut set = TestSet::new(ScanConfig::new(2, 3).unwrap());
        set.push("1X0XXX".parse().unwrap()).unwrap(); // covered by next
        set.push("1X01X0".parse().unwrap()).unwrap();
        set.push("0XXXXX".parse().unwrap()).unwrap(); // not covered
        let removed = set.drop_covered();
        assert_eq!(removed, 1);
        assert_eq!(set.len(), 2);
        assert_eq!(set.cube(0).to_string(), "1X01X0");
    }

    #[test]
    fn drop_covered_keeps_one_of_identical_pair() {
        let mut set = TestSet::new(ScanConfig::new(1, 3).unwrap());
        set.push("1X0".parse().unwrap()).unwrap();
        set.push("1X0".parse().unwrap()).unwrap();
        let removed = set.drop_covered();
        assert_eq!(removed, 1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn matching_cubes_finds_embeddings() {
        let set = small_set();
        let v = BitVec::from_bits([false, true, true, false, true, true]);
        // cube0 "1X0X10" wants cell0=1 -> no; cube1 "XX1XXX" cell2=1 -> yes;
        // cube2 "0X1XXX" cell0=0, cell2=1 -> yes
        assert_eq!(set.matching_cubes(&v), vec![1, 2]);
    }

    #[test]
    fn text_roundtrip() {
        let set = small_set();
        let text = set.to_text();
        let parsed = TestSet::from_text(&text).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn text_parse_errors() {
        assert_eq!(
            TestSet::from_text("# only comments\n"),
            Err(ParseTestSetError::MissingHeader)
        );
        assert_eq!(
            TestSet::from_text("chains two depth 3\n"),
            Err(ParseTestSetError::BadHeader)
        );
        let err = TestSet::from_text("chains 1 depth 2\n1Z\n").unwrap_err();
        assert!(matches!(err, ParseTestSetError::BadCube { line: 2, .. }));
        let err = TestSet::from_text("chains 1 depth 2\n1X0\n").unwrap_err();
        assert!(matches!(err, ParseTestSetError::WidthMismatch { line: 2 }));
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let text = "# test set\n\nchains 1 depth 3\n# a cube\n1X0\n\n";
        let set = TestSet::from_text(text).unwrap();
        assert_eq!(set.len(), 1);
    }
}
