//! Test cubes, scan-chain configuration and test sets.
//!
//! The DATE 2008 State Skip LFSR paper compresses *pre-computed test
//! sets* for IP cores: collections of partially specified test vectors
//! (*test cubes*, with 0/1/X positions) destined for a core's scan
//! chains. This crate provides:
//!
//! * [`TestCube`] — a care-mask/value-plane representation of a cube
//!   with matching, compatibility and merge operations.
//! * [`ScanConfig`] — the scan-chain geometry (`m` chains of length
//!   `r`) and the cell ↔ (chain, depth) ↔ load-cycle mapping that
//!   links cube bits to decompressor clock cycles.
//! * [`TestSet`] — a cube container with the statistics the encoding
//!   algorithms key on (`smax`, specified-bit totals).
//! * [`CubeProfile`] / [`generate_cubes`] — a statistical cube
//!   generator with profiles mimicking the paper's five ISCAS'89
//!   benchmark test sets (see `DESIGN.md` for the substitution
//!   rationale).
//! * Text serialisation in an Atalanta-like `01X` format
//!   (`chains <m> depth <r>` header + one cube row per line).
//! * [`WorkloadRegistry`] — the named workload corpus: checked-in
//!   circuit + cube-set files and the five paper profiles, addressable
//!   by name from benches, tests, docs and the CLI.
//!
//! # Example
//!
//! ```
//! use ss_testdata::{ScanConfig, TestCube, TestSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ScanConfig::new(4, 8)?; // 4 chains x 8 cells
//! let cube: TestCube = "1XXX0XX1XXXXXXXXXXXXXXXXXXXXXXXX".parse()?;
//! let mut set = TestSet::new(config);
//! set.push(cube)?;
//! assert_eq!(set.smax(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cube;
mod gen;
mod power;
mod proptests;
mod registry;
mod scan;
mod set;

pub use cube::{ParseCubeError, TestCube};
pub use gen::{generate_cubes, generate_test_set, CubeProfile};
pub use power::{max_wtm, sequence_power, weighted_transitions, PowerReport};
pub use registry::{FileProvenance, Workload, WorkloadRegistry, WorkloadSource, CORPUS_SEED};
pub use scan::{ScanConfig, ScanConfigError};
pub use set::{ParseTestSetError, TestSet, TestSetError, TestSetStats};
