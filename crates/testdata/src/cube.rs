//! Partially specified test vectors (test cubes).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use rand::Rng;
use ss_gf2::BitVec;

/// A test cube: a test vector whose positions are `0`, `1` or `X`
/// (don't-care).
///
/// Stored as two bit planes of equal length: `care` marks the specified
/// positions, `values` holds their values (and is zero wherever `care`
/// is zero — an enforced invariant, so plane-level comparisons work).
///
/// # Example
///
/// ```
/// use ss_testdata::TestCube;
///
/// let cube: TestCube = "1X0X".parse()?;
/// assert_eq!(cube.specified_count(), 2);
/// assert_eq!(cube.get(0), Some(true));
/// assert_eq!(cube.get(1), None);
/// assert_eq!(cube.get(2), Some(false));
/// # Ok::<(), ss_testdata::ParseCubeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TestCube {
    care: BitVec,
    values: BitVec,
}

impl TestCube {
    /// Creates an all-X cube of `len` positions.
    pub fn all_x(len: usize) -> Self {
        TestCube {
            care: BitVec::zeros(len),
            values: BitVec::zeros(len),
        }
    }

    /// Creates a cube from explicit planes.
    ///
    /// # Panics
    ///
    /// Panics if the planes have different lengths or if `values` has a
    /// bit set outside `care`.
    pub fn from_planes(care: BitVec, values: BitVec) -> Self {
        assert_eq!(care.len(), values.len(), "plane length mismatch");
        assert!(
            values.is_subset_of(&care),
            "values must be zero on don't-care positions"
        );
        TestCube { care, values }
    }

    /// Creates a fully specified cube from a vector of bits.
    pub fn fully_specified(values: BitVec) -> Self {
        TestCube {
            care: BitVec::ones(values.len()),
            values,
        }
    }

    /// Number of positions (specified or not).
    pub fn len(&self) -> usize {
        self.care.len()
    }

    /// `true` for a zero-length cube.
    pub fn is_empty(&self) -> bool {
        self.care.is_empty()
    }

    /// The care plane (1 = specified).
    pub fn care(&self) -> &BitVec {
        &self.care
    }

    /// The value plane (zero outside the care plane).
    pub fn values(&self) -> &BitVec {
        &self.values
    }

    /// The value at `index`: `Some(bit)` if specified, `None` for X.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> Option<bool> {
        self.care.get(index).then(|| self.values.get(index))
    }

    /// Specifies position `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        self.care.set(index, true);
        self.values.set(index, value);
    }

    /// Reverts position `index` to X.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn clear(&mut self, index: usize) {
        self.care.set(index, false);
        self.values.set(index, false);
    }

    /// Number of specified positions.
    pub fn specified_count(&self) -> usize {
        self.care.count_ones()
    }

    /// `true` when every position is X.
    pub fn is_all_x(&self) -> bool {
        self.care.is_zero()
    }

    /// Iterates `(index, value)` over the specified positions.
    pub fn iter_specified(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.care.iter_ones().map(move |i| (i, self.values.get(i)))
    }

    /// `true` if the fully specified `vector` agrees with every
    /// specified bit of the cube — the *embedding* relation of the
    /// paper (the cube is embedded in the vector).
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != len()`.
    pub fn matches(&self, vector: &BitVec) -> bool {
        self.values.eq_under_mask(vector, &self.care)
    }

    /// The 64-bit mask of patterns in `block` of a packed pattern list
    /// that embed this cube (bit `p` set means pattern `block*64 + p`
    /// [`matches`](TestCube::matches)) — the word-parallel form of the
    /// embedding relation, one word-op per specified bit for a whole
    /// block of 64 candidate vectors.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.width() != len()` or `block` is out of
    /// range.
    pub fn match_mask(&self, patterns: &ss_gf2::PackedPatterns, block: usize) -> u64 {
        patterns.match_mask(block, &self.values, &self.care)
    }

    /// `true` if the two cubes agree on every position where both are
    /// specified (they could be merged into one cube).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_compatible(&self, other: &TestCube) -> bool {
        assert_eq!(self.len(), other.len(), "cube length mismatch");
        let mut both = self.care.clone();
        both.and_with(&other.care);
        self.values.eq_under_mask(&other.values, &both)
    }

    /// Merges two compatible cubes into one, or returns `None` if they
    /// conflict.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge(&self, other: &TestCube) -> Option<TestCube> {
        if !self.is_compatible(other) {
            return None;
        }
        let mut care = self.care.clone();
        care.xor_with(&other.care);
        let mut overlap = self.care.clone();
        overlap.and_with(&other.care);
        care.xor_with(&overlap); // care = self.care | other.care
        let mut values = self.values.clone();
        values.xor_with(&other.values);
        let mut overlap_values = self.values.clone();
        overlap_values.and_with(&other.values);
        values.xor_with(&overlap_values); // values = self.values | other.values
        Some(TestCube { care, values })
    }

    /// Fills every X with random bits, producing a fully specified
    /// vector that the cube matches.
    pub fn random_fill<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        let mut v = BitVec::random(self.len(), rng);
        // force specified positions
        for (i, bit) in self.iter_specified() {
            v.set(i, bit);
        }
        v
    }

    /// Generates a random cube with exactly `specified` specified
    /// positions (distinct, uniformly placed) out of `len`.
    ///
    /// # Panics
    ///
    /// Panics if `specified > len`.
    pub fn random<R: Rng + ?Sized>(len: usize, specified: usize, rng: &mut R) -> Self {
        assert!(specified <= len, "cannot specify more bits than positions");
        let mut cube = TestCube::all_x(len);
        let mut placed = 0;
        while placed < specified {
            let i = rng.gen_range(0..len);
            if cube.get(i).is_none() {
                cube.set(i, rng.gen());
                placed += 1;
            }
        }
        cube
    }
}

impl fmt::Debug for TestCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TestCube({self})")
    }
}

impl fmt::Display for TestCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            match self.get(i) {
                Some(true) => write!(f, "1")?,
                Some(false) => write!(f, "0")?,
                None => write!(f, "X")?,
            }
        }
        Ok(())
    }
}

/// Error parsing a [`TestCube`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCubeError {
    position: usize,
    found: char,
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cube character {:?} at position {} (expected 0, 1, x or X)",
            self.found, self.position
        )
    }
}

impl Error for ParseCubeError {}

impl FromStr for TestCube {
    type Err = ParseCubeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cube = TestCube::all_x(s.chars().count());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => cube.set(i, false),
                '1' => cube.set(i, true),
                'x' | 'X' => {}
                other => {
                    return Err(ParseCubeError {
                        position: i,
                        found: other,
                    })
                }
            }
        }
        Ok(cube)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parse_display_roundtrip() {
        let text = "1X01XX10";
        let cube: TestCube = text.parse().unwrap();
        assert_eq!(cube.to_string(), text);
        assert_eq!(cube.specified_count(), 5);
    }

    #[test]
    fn match_mask_agrees_with_scalar_matches() {
        let mut rng = SmallRng::seed_from_u64(21);
        let cube: TestCube = "1X0XX1".parse().unwrap();
        let vectors: Vec<BitVec> = (0..70).map(|_| BitVec::random(6, &mut rng)).collect();
        let packed = ss_gf2::PackedPatterns::from_vectors(6, &vectors);
        for block in 0..packed.block_count() {
            let mask = cube.match_mask(&packed, block);
            for lane in 0..64 {
                let p = block * 64 + lane;
                let expect = p < vectors.len() && cube.matches(&vectors[p]);
                assert_eq!((mask >> lane) & 1 == 1, expect, "pattern {p}");
            }
        }
    }

    #[test]
    fn parse_rejects_bad_chars() {
        let err = "10Z1".parse::<TestCube>().unwrap_err();
        assert_eq!(err.position, 2);
        assert!(err.to_string().contains("'Z'"));
    }

    #[test]
    fn get_set_clear() {
        let mut cube = TestCube::all_x(5);
        assert!(cube.is_all_x());
        cube.set(2, true);
        cube.set(4, false);
        assert_eq!(cube.get(2), Some(true));
        assert_eq!(cube.get(4), Some(false));
        assert_eq!(cube.get(0), None);
        cube.clear(2);
        assert_eq!(cube.get(2), None);
        assert_eq!(cube.specified_count(), 1);
    }

    #[test]
    fn from_planes_enforces_invariant() {
        let care = BitVec::from_bits([true, false]);
        let bad_values = BitVec::from_bits([false, true]);
        let result = std::panic::catch_unwind(|| TestCube::from_planes(care, bad_values));
        assert!(result.is_err());
    }

    #[test]
    fn matches_embedding_relation() {
        let cube: TestCube = "1X0X".parse().unwrap();
        assert!(cube.matches(&BitVec::from_bits([true, true, false, false])));
        assert!(cube.matches(&BitVec::from_bits([true, false, false, true])));
        assert!(!cube.matches(&BitVec::from_bits([false, true, false, false])));
        assert!(!cube.matches(&BitVec::from_bits([true, true, true, false])));
    }

    #[test]
    fn compatibility_and_merge() {
        let a: TestCube = "1XX0".parse().unwrap();
        let b: TestCube = "1X1X".parse().unwrap();
        let c: TestCube = "0XXX".parse().unwrap();
        assert!(a.is_compatible(&b));
        assert!(!a.is_compatible(&c));
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.to_string(), "1X10");
        assert!(a.merge(&c).is_none());
        // merge is commutative
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn merge_result_matches_what_both_match() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = TestCube::random(24, 6, &mut rng);
            let b = TestCube::random(24, 6, &mut rng);
            if let Some(m) = a.merge(&b) {
                let v = m.random_fill(&mut rng);
                assert!(
                    a.matches(&v) && b.matches(&v),
                    "merged fill must satisfy both"
                );
            }
        }
    }

    #[test]
    fn random_fill_always_matches() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let cube = TestCube::random(40, 10, &mut rng);
            let v = cube.random_fill(&mut rng);
            assert!(cube.matches(&v));
        }
    }

    #[test]
    fn random_cube_has_exact_specified_count() {
        let mut rng = SmallRng::seed_from_u64(10);
        for s in [0, 1, 5, 40] {
            let cube = TestCube::random(40, s, &mut rng);
            assert_eq!(cube.specified_count(), s);
        }
    }

    #[test]
    fn fully_specified_matches_only_itself() {
        let v = BitVec::from_bits([true, false, true]);
        let cube = TestCube::fully_specified(v.clone());
        assert_eq!(cube.specified_count(), 3);
        assert!(cube.matches(&v));
        assert!(!cube.matches(&BitVec::from_bits([true, false, false])));
    }

    #[test]
    fn iter_specified_order() {
        let cube: TestCube = "X1X0".parse().unwrap();
        let items: Vec<_> = cube.iter_specified().collect();
        assert_eq!(items, vec![(1, true), (3, false)]);
    }
}
