//! File-based workload ingestion: pairing a `.bench` netlist with a
//! cube-set file and driving the staged [`Engine`](crate::Engine) from
//! the pair.
//!
//! This is the integration point between the circuit layer
//! (`ss_circuit::parse_bench`), the workload layer
//! (`ss_testdata::TestSet::from_text`) and the compression engine: the
//! `state-skip run --bench <file> --cubes <file>` CLI path, the golden
//! conformance harness and any user-supplied workload all enter the
//! system here.
//!
//! Besides parsing and cross-validating the pair, this module closes
//! the loop the paper's experiments close: [`sequence_coverage`]
//! fault-simulates the vectors the decompressor actually emits against
//! the ingested netlist, so a workload run reports real stuck-at
//! coverage, not just compression numbers.

use std::error::Error;
use std::fmt;

use ss_circuit::{parse_bench, BenchCircuit, BenchParseError, FaultList, FaultSimulator, Netlist};
use ss_gf2::{BitVec, PackedPatterns};
use ss_testdata::{ParseTestSetError, TestSet};

use crate::artifacts::HardwareCtx;
use crate::pipeline::{PackedWindowExpander, PipelineReport};
use crate::SchemeError;

/// Error ingesting a `.bench` + cube-file workload pair.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadIoError {
    /// The `.bench` netlist failed to parse.
    Bench(BenchParseError),
    /// The cube-set file failed to parse.
    Cubes(ParseTestSetError),
    /// The cube geometry cannot host the circuit: fewer scan cells
    /// than the netlist has inputs.
    Geometry {
        /// Scan cells declared by the cube file header.
        cells: usize,
        /// Inputs (PIs + scan cells) of the parsed netlist.
        inputs: usize,
    },
}

impl fmt::Display for WorkloadIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadIoError::Bench(e) => write!(f, "bench file: {e}"),
            WorkloadIoError::Cubes(e) => write!(f, "cube file: {e}"),
            WorkloadIoError::Geometry { cells, inputs } => write!(
                f,
                "cube file provides {cells} scan cells but the circuit needs {inputs} inputs"
            ),
        }
    }
}

impl Error for WorkloadIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadIoError::Bench(e) => Some(e),
            WorkloadIoError::Cubes(e) => Some(e),
            WorkloadIoError::Geometry { .. } => None,
        }
    }
}

impl From<BenchParseError> for WorkloadIoError {
    fn from(e: BenchParseError) -> Self {
        WorkloadIoError::Bench(e)
    }
}

impl From<ParseTestSetError> for WorkloadIoError {
    fn from(e: ParseTestSetError) -> Self {
        WorkloadIoError::Cubes(e)
    }
}

/// A validated circuit + cube-set pair, ready for the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct FileWorkload {
    /// The parsed full-scan circuit.
    pub circuit: BenchCircuit,
    /// The parsed cube set (width = the scan geometry's cell count,
    /// which may exceed the circuit's input count by padding cells).
    pub set: TestSet,
}

/// Parses a `.bench` netlist and a cube-set file into a cross-checked
/// [`FileWorkload`].
///
/// The cube file's scan geometry must provide at least as many cells
/// as the netlist has inputs; surplus cells are padding (balanced
/// chains rarely divide the input count exactly) and are ignored when
/// the expanded vectors are applied to the circuit.
///
/// # Errors
///
/// [`WorkloadIoError`] for a malformed netlist, a malformed cube file
/// or an impossible geometry. Never panics.
///
/// # Example
///
/// ```
/// use ss_core::parse_workload;
/// use ss_testdata::WorkloadRegistry;
///
/// let w = WorkloadRegistry::find("tiny-1").unwrap();
/// let loaded = parse_workload(w.bench_text().unwrap(), w.cubes_text().unwrap())?;
/// assert!(loaded.set.config().cells() >= loaded.circuit.netlist.input_count());
/// # Ok::<(), ss_core::WorkloadIoError>(())
/// ```
pub fn parse_workload(bench_text: &str, cubes_text: &str) -> Result<FileWorkload, WorkloadIoError> {
    let circuit = parse_bench(bench_text)?;
    let set = TestSet::from_text(cubes_text)?;
    let cells = set.config().cells();
    let inputs = circuit.netlist.input_count();
    if cells < inputs {
        return Err(WorkloadIoError::Geometry { cells, inputs });
    }
    Ok(FileWorkload { circuit, set })
}

/// Stuck-at coverage of the decompressed test sequences, measured by
/// fault simulation against an ingested netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Collapsed stuck-at faults simulated.
    pub faults: usize,
    /// Vectors in the full Normal-mode window sequence
    /// (`seeds x window`).
    pub window_vectors: usize,
    /// Coverage of that full window sequence.
    pub window_coverage: f64,
    /// Vectors actually applied under State Skip (useful segments
    /// only; skipped segments fly by at `k` states per clock without
    /// touching the scan chains).
    pub applied_vectors: usize,
    /// Coverage of the applied State Skip sequence.
    pub applied_coverage: f64,
}

/// Fault-simulates the decompressor's output sequences against
/// `netlist` and reports stuck-at coverage — for the full window
/// sequence and for the vectors the State Skip traversal actually
/// applies.
///
/// Expanded vectors are as wide as the scan geometry; only the first
/// `netlist.input_count()` positions drive the circuit (the rest are
/// chain-balancing padding).
///
/// # Errors
///
/// [`SchemeError::BadConfig`] when the scan geometry is narrower than
/// the netlist's input count, or when `ctx` was synthesised with a
/// different LFSR size than the one `report`'s seeds were encoded
/// for. (A context with the right size but different hardware seeds
/// is indistinguishable from the original and will silently describe
/// a different decompressor — pass the same engine configuration that
/// produced the report.)
pub fn sequence_coverage(
    netlist: &Netlist,
    ctx: &HardwareCtx,
    report: &PipelineReport,
) -> Result<CoverageReport, SchemeError> {
    let scan = ctx.scan();
    let inputs = netlist.input_count();
    if scan.cells() < inputs {
        return Err(SchemeError::bad_config(format!(
            "scan geometry has {} cells but the netlist needs {inputs} inputs",
            scan.cells()
        )));
    }
    if ctx.lfsr_size() != report.lfsr_size {
        return Err(SchemeError::bad_config(format!(
            "hardware context has a {}-bit LFSR but the report was encoded for {} bits",
            ctx.lfsr_size(),
            report.lfsr_size
        )));
    }

    let window = report.window;
    let segment = report.segment;
    let expander = PackedWindowExpander::new(ctx.lfsr(), ctx.shifter(), scan, window)?;
    let mut window_rows: Vec<BitVec> = Vec::with_capacity(report.seeds * window);
    let mut applied_rows: Vec<BitVec> = Vec::new();
    for (s, seed) in report.encoding.seeds.iter().enumerate() {
        // truncate each vector to the circuit's inputs word-wise; the
        // dropped tail is chain-balancing padding
        let mut vectors = expander.expand(&seed.seed)?.to_vectors();
        for v in &mut vectors {
            v.resize(inputs);
        }
        for seg in report.plan.useful_segments(s) {
            let lo = seg * segment;
            let hi = ((seg + 1) * segment).min(window);
            applied_rows.extend_from_slice(&vectors[lo..hi]);
        }
        window_rows.append(&mut vectors);
    }

    let faults = FaultList::collapsed(netlist);
    let fsim = FaultSimulator::new(netlist);
    let window_packed = PackedPatterns::from_vectors(inputs, &window_rows);
    let applied_packed = PackedPatterns::from_vectors(inputs, &applied_rows);
    Ok(CoverageReport {
        faults: faults.len(),
        window_vectors: window_rows.len(),
        window_coverage: fsim.coverage_packed(&faults, &window_packed),
        applied_vectors: applied_rows.len(),
        applied_coverage: fsim.coverage_packed(&faults, &applied_packed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encoded, Engine};
    use ss_circuit::write_bench;
    use ss_circuit::{generate_uncompacted_test_set, random_circuit, AtpgConfig, CircuitSpec};
    use ss_testdata::{ScanConfig, TestCube};

    /// Builds a tiny circuit + cube-set pair entirely in memory.
    fn tiny_pair(chains: usize) -> (String, String) {
        let circuit = random_circuit(&CircuitSpec::tiny(), 5);
        let outcome = generate_uncompacted_test_set(&circuit, &AtpgConfig::default(), 5);
        let scan = ScanConfig::for_cells(chains, circuit.input_count()).unwrap();
        let mut set = TestSet::new(scan);
        for cube in &outcome.cubes {
            let mut padded = TestCube::all_x(scan.cells());
            for (i, bit) in cube.iter_specified() {
                padded.set(i, bit);
            }
            set.push(padded).unwrap();
        }
        (write_bench(&circuit, "tiny-5"), set.to_text())
    }

    #[test]
    fn parse_workload_accepts_a_generated_pair() {
        let (bench, cubes) = tiny_pair(4);
        let w = parse_workload(&bench, &cubes).unwrap();
        assert_eq!(w.circuit.netlist.input_count(), 12);
        assert_eq!(w.set.config().cells(), 12);
        assert!(!w.set.is_empty());
    }

    #[test]
    fn parse_workload_rejects_too_narrow_geometry() {
        let (bench, _) = tiny_pair(4);
        let cubes = "chains 2 depth 2\n01XX\n";
        let err = parse_workload(&bench, cubes).unwrap_err();
        assert_eq!(
            err,
            WorkloadIoError::Geometry {
                cells: 4,
                inputs: 12
            }
        );
        // and the parse errors pass through with their own flavour
        assert!(matches!(
            parse_workload("INPUT(", cubes),
            Err(WorkloadIoError::Bench(_))
        ));
        assert!(matches!(
            parse_workload(&bench, "not a header"),
            Err(WorkloadIoError::Cubes(_))
        ));
    }

    #[test]
    fn sequence_coverage_detects_faults_and_applied_is_a_subset() {
        let (bench, cubes) = tiny_pair(4);
        let w = parse_workload(&bench, &cubes).unwrap();
        let engine = Engine::builder()
            .window(16)
            .segment(4)
            .speedup(4)
            .build()
            .unwrap();
        let ctx = engine.synthesize(&w.set).unwrap();
        let (encodable, _) = ctx.encodable_subset(&w.set);
        let report = Encoded::from_ctx(&encodable, ctx)
            .unwrap()
            .embed()
            .segment()
            .finish()
            .unwrap();
        let ctx = engine.synthesize(&w.set).unwrap();
        let cov = sequence_coverage(&w.circuit.netlist, &ctx, &report).unwrap();
        assert!(cov.faults > 0);
        assert_eq!(cov.window_vectors, report.seeds * 16);
        assert!(cov.applied_vectors <= cov.window_vectors);
        assert!(cov.applied_vectors > 0);
        assert!(cov.window_coverage > 0.5, "window {}", cov.window_coverage);
        assert!(cov.applied_coverage > 0.0);
        assert!(cov.applied_coverage <= cov.window_coverage + 1e-12);
    }

    #[test]
    fn padded_geometry_truncates_cleanly() {
        // 5 chains x 3 = 15 cells for a 12-input circuit
        let (bench, cubes) = tiny_pair(5);
        let w = parse_workload(&bench, &cubes).unwrap();
        assert_eq!(w.set.config().cells(), 15);
        let engine = Engine::builder()
            .window(8)
            .segment(2)
            .speedup(3)
            .build()
            .unwrap();
        let ctx = engine.synthesize(&w.set).unwrap();
        let (encodable, _) = ctx.encodable_subset(&w.set);
        let report = Encoded::from_ctx(&encodable, ctx)
            .unwrap()
            .embed()
            .segment()
            .finish()
            .unwrap();
        let ctx = engine.synthesize(&w.set).unwrap();
        let cov = sequence_coverage(&w.circuit.netlist, &ctx, &report).unwrap();
        assert!(cov.window_coverage > 0.0);
    }
}
