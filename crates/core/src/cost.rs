//! Decompressor hardware cost roll-up (the paper's Section 4 GE
//! numbers).

use ss_lfsr::{CostModel, GateCount};

/// Everything the estimator needs about one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompressorCostInputs {
    /// LFSR size `n`.
    pub lfsr_size: usize,
    /// Characteristic polynomial weight (term count).
    pub poly_weight: usize,
    /// Phase shifter 2-input XOR count.
    pub ps_xor2: usize,
    /// State Skip network XOR count *after* common-subexpression
    /// extraction.
    pub skip_xor2: usize,
    /// Scan depth `r` (Bit Counter range).
    pub scan_depth: usize,
    /// Segment size `S` (Vector Counter range).
    pub segment: usize,
    /// Window length `L` (Segment Counter range is `ceil(L/S)`).
    pub window: usize,
    /// Number of seed groups (Group Counter range).
    pub group_count: usize,
    /// Largest group size (Seed Counter range).
    pub max_group_size: usize,
    /// Largest useful-segment count (Useful Segment Counter range).
    pub max_useful: usize,
    /// Mode Select product terms.
    pub mode_select_terms: usize,
}

/// Per-block gate inventories and gate-equivalent totals for the
/// decompression architecture of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompressorCost {
    /// LFSR (cells + feedback cone).
    pub lfsr: GateCount,
    /// State Skip circuit (shared XOR network + per-cell mode muxes).
    pub skip: GateCount,
    /// Phase shifter XOR block.
    pub phase_shifter: GateCount,
    /// All six counters of Fig. 3.
    pub counters: GateCount,
    /// Mode Select combinational unit.
    pub mode_select: GateCount,
}

impl DecompressorCost {
    /// Estimates the cost from configuration inputs.
    pub fn estimate(inputs: &DecompressorCostInputs) -> Self {
        let counters_bits = bits_for(inputs.scan_depth)
            + bits_for(inputs.segment)
            + bits_for(inputs.window.div_ceil(inputs.segment.max(1)))
            + bits_for(inputs.max_useful.max(1))
            + bits_for(inputs.max_group_size.max(1))
            + bits_for(inputs.group_count.max(1));
        let t = inputs.mode_select_terms;
        DecompressorCost {
            lfsr: GateCount::lfsr(inputs.lfsr_size, inputs.poly_weight),
            skip: GateCount::skip_frontend(inputs.lfsr_size, inputs.skip_xor2),
            phase_shifter: GateCount::xor_block(inputs.ps_xor2),
            counters: GateCount::counter(counters_bits),
            mode_select: GateCount {
                and2: 2 * t + t.saturating_sub(1),
                ..GateCount::default()
            },
        }
    }

    /// Total inventory.
    pub fn total(&self) -> GateCount {
        self.lfsr + self.skip + self.phase_shifter + self.counters + self.mode_select
    }

    /// Total gate equivalents under the default cost model.
    pub fn total_ge(&self) -> f64 {
        self.total_ge_with(&CostModel::default())
    }

    /// Total gate equivalents under a custom cost model.
    pub fn total_ge_with(&self, model: &CostModel) -> f64 {
        model.ge(&self.total())
    }

    /// GE of the *shared* decompressor blocks (everything except Mode
    /// Select, which must be re-implemented per core — the paper's
    /// "rest of the decompressor" figure of ~320 GE for s13207).
    pub fn shared_ge(&self) -> f64 {
        let model = CostModel::default();
        model.ge(&self.lfsr) + model.ge(&self.phase_shifter) + model.ge(&self.counters)
    }

    /// GE of the State Skip circuit alone (the paper's 52–119 GE
    /// range for s13207, k = 12..32).
    pub fn skip_ge(&self) -> f64 {
        CostModel::default().ge(&self.skip)
    }

    /// GE of the Mode Select unit alone (the paper's 44–262 GE range).
    pub fn mode_select_ge(&self) -> f64 {
        CostModel::default().ge(&self.mode_select)
    }
}

/// Bits needed to count to `range - 1` (at least 1).
fn bits_for(range: usize) -> usize {
    match range {
        0 | 1 => 1,
        n => (usize::BITS - (n - 1).leading_zeros()) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> DecompressorCostInputs {
        DecompressorCostInputs {
            lfsr_size: 24,
            poly_weight: 5,
            ps_xor2: 64,
            skip_xor2: 30,
            scan_depth: 22,
            segment: 10,
            window: 200,
            group_count: 3,
            max_group_size: 40,
            max_useful: 4,
            mode_select_terms: 20,
        }
    }

    #[test]
    fn bits_for_ranges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(22), 5);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn totals_add_up() {
        let cost = DecompressorCost::estimate(&inputs());
        let total = cost.total();
        assert_eq!(
            total.total_primitives(),
            cost.lfsr.total_primitives()
                + cost.skip.total_primitives()
                + cost.phase_shifter.total_primitives()
                + cost.counters.total_primitives()
                + cost.mode_select.total_primitives()
        );
        assert!(cost.total_ge() > 0.0);
        assert!(cost.shared_ge() < cost.total_ge());
    }

    #[test]
    fn skip_cost_tracks_xor_count() {
        let mut i = inputs();
        let small = DecompressorCost::estimate(&i).skip_ge();
        i.skip_xor2 = 120;
        let big = DecompressorCost::estimate(&i).skip_ge();
        assert!(big > small);
    }

    #[test]
    fn mode_select_cost_tracks_terms() {
        let mut i = inputs();
        let small = DecompressorCost::estimate(&i).mode_select_ge();
        i.mode_select_terms = 80;
        let big = DecompressorCost::estimate(&i).mode_select_ge();
        assert!(big > small);
    }

    #[test]
    fn paper_ballpark_for_s13207() {
        // n=24, 32 chains, L=200, S=10: shared decompressor should be
        // in the few-hundred-GE range the paper reports (~320 GE).
        let cost = DecompressorCost::estimate(&inputs());
        let shared = cost.shared_ge();
        assert!(
            (150.0..600.0).contains(&shared),
            "shared GE {shared} out of the plausible range"
        );
    }
}
