//! Segment labelling, useful-segment selection, seed grouping and TSL
//! accounting — Section 3.2 of the paper.
//!
//! Every window is partitioned into segments of `S` vectors. A segment
//! is *useful* if the final test relies on a cube embedded there, and
//! *useless* otherwise; useless segments are traversed in State Skip
//! mode. Because sparse cubes are fortuitously embedded in many
//! segments, choosing *which* segments to rely on is a set-cover
//! problem; the paper's heuristic is:
//!
//! 1. cubes embedded in exactly **one** segment anywhere (set A) force
//!    that segment useful;
//! 2. remaining cubes (set B) already covered by a forced segment are
//!    dropped;
//! 3. greedily pick the segment embedding the most remaining cubes,
//!    preferring segments closest to the beginning of a window, until
//!    every cube is covered.
//!
//! Seeds are then grouped by useful-segment count (ascending) so a
//! single Group Counter value tells the hardware how many useful
//! segments to generate before moving to the next seed, and every
//! window is cut right after its last useful segment.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::embedding::EmbeddingMap;

/// The chosen useful segments for every seed, plus the seed grouping.
///
/// # Example
///
/// Built by [`Pipeline::run`](crate::Pipeline::run); see
/// [`PipelineReport`](crate::PipelineReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Segment size `S` in vectors.
    segment: usize,
    /// Window length `L` in vectors.
    window: usize,
    /// Per seed: sorted indices of useful segments.
    useful: Vec<Vec<usize>>,
    /// Groups in application order: `(useful_count, seed indices)`,
    /// ascending by count.
    groups: Vec<(usize, Vec<usize>)>,
}

impl SegmentPlan {
    /// Runs the selection over an embedding map.
    ///
    /// # Panics
    ///
    /// Panics if `segment == 0` or `segment > window`, or if some cube
    /// has no embedding at all (i.e. `map.validate()` is false — the
    /// encoding and map must come from the same hardware).
    pub fn build(map: &EmbeddingMap, segment: usize) -> Self {
        let window = map.window();
        assert!(segment >= 1, "segment size must be >= 1");
        assert!(segment <= window, "segment size must not exceed the window");
        assert!(map.validate(), "every cube must be embedded somewhere");

        let seg_count = window.div_ceil(segment);
        // per cube: the distinct (seed, segment) locations embedding it
        let cube_segments: Vec<Vec<(usize, usize)>> = (0..map.cube_count())
            .map(|ci| {
                let mut segs: Vec<(usize, usize)> = map
                    .matches(ci)
                    .iter()
                    .map(|&(seed, pos)| (seed, pos / segment))
                    .collect();
                segs.sort_unstable();
                segs.dedup();
                segs
            })
            .collect();

        let mut useful: Vec<HashSet<usize>> = vec![HashSet::new(); map.seed_count()];

        // set A: cubes pinned to a single segment
        let mut covered = vec![false; map.cube_count()];
        for (ci, segs) in cube_segments.iter().enumerate() {
            if let [(seed, seg)] = segs.as_slice() {
                useful[*seed].insert(*seg);
                covered[ci] = true;
            }
        }
        // drop set-B cubes already covered by the forced segments
        for (ci, segs) in cube_segments.iter().enumerate() {
            if !covered[ci] && segs.iter().any(|&(seed, seg)| useful[seed].contains(&seg)) {
                covered[ci] = true;
            }
        }

        // greedy cover for the rest
        let mut remaining: HashSet<usize> = covered
            .iter()
            .enumerate()
            .filter_map(|(ci, &c)| (!c).then_some(ci))
            .collect();
        while !remaining.is_empty() {
            // count remaining cubes per candidate segment
            let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
            for &ci in &remaining {
                for &loc in &cube_segments[ci] {
                    *counts.entry(loc).or_insert(0) += 1;
                }
            }
            // most cubes; tie -> earliest segment in its window, then
            // earliest seed (deterministic)
            let (&(seed, seg), _) = counts
                .iter()
                .min_by_key(|&(&(seed, seg), &c)| (usize::MAX - c, seg, seed))
                .expect("remaining cubes always have candidate segments");
            useful[seed].insert(seg);
            remaining.retain(|&ci| !cube_segments[ci].contains(&(seed, seg)));
        }

        // hardware invariant (Section 3.3): the first segment of every
        // seed is useful. The encoder guarantees a cube at position 0,
        // but the cover may satisfy that cube elsewhere; in that rare
        // case segment 0 is forced useful so Mode Select stays simple.
        for set in &mut useful {
            if set.is_empty() {
                set.insert(0);
            }
        }
        // also: selection keeps the seed's own segment-0 when present —
        // no action needed; forcing is only for empty sets.

        let useful: Vec<Vec<usize>> = useful
            .into_iter()
            .map(|s| {
                let mut v: Vec<usize> = s.into_iter().collect();
                v.sort_unstable();
                debug_assert!(v.last().copied().unwrap_or(0) < seg_count);
                v
            })
            .collect();

        // group by useful count, ascending
        let mut by_count: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (seed, segs) in useful.iter().enumerate() {
            by_count.entry(segs.len()).or_default().push(seed);
        }
        let groups = by_count.into_iter().collect();

        SegmentPlan {
            segment,
            window,
            useful,
            groups,
        }
    }

    /// Segment size `S`.
    pub fn segment(&self) -> usize {
        self.segment
    }

    /// Window length `L`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Segments per window (`ceil(L/S)`).
    pub fn segments_per_window(&self) -> usize {
        self.window.div_ceil(self.segment)
    }

    /// Number of vectors in segment `seg` (the last segment of a
    /// window may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `seg >= segments_per_window()`.
    pub fn segment_len(&self, seg: usize) -> usize {
        assert!(seg < self.segments_per_window(), "segment out of range");
        (self.window - seg * self.segment).min(self.segment)
    }

    /// Sorted useful segments of `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is out of range.
    pub fn useful_segments(&self, seed: usize) -> &[usize] {
        &self.useful[seed]
    }

    /// Number of seeds.
    pub fn seed_count(&self) -> usize {
        self.useful.len()
    }

    /// Total useful segments over all seeds (drives the Mode Select
    /// unit's size).
    pub fn total_useful(&self) -> usize {
        self.useful.iter().map(Vec::len).sum()
    }

    /// The seed groups in application order: `(useful_count, seeds)`,
    /// ascending by count.
    pub fn groups(&self) -> &[(usize, Vec<usize>)] {
        &self.groups
    }

    /// Seed application order implied by the grouping.
    pub fn seed_order(&self) -> Vec<usize> {
        self.groups
            .iter()
            .flat_map(|(_, seeds)| seeds.iter().copied())
            .collect()
    }

    /// Computes the test sequence length under State Skip traversal
    /// with speedup `k`, for scan depth `r`.
    ///
    /// Model (see `DESIGN.md`): each window is generated only up to its
    /// last useful segment. Useful segments run in Normal mode
    /// (`len * r` clocks, `len` vectors applied). Maximal runs of
    /// useless segments with a total of `G` skipped states take
    /// `G/k + G%k` clocks and apply `ceil(clocks/r)` (garbage) vectors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `r == 0`.
    pub fn tsl(&self, k: u64, r: usize) -> TslReport {
        assert!(k >= 1, "speedup must be >= 1");
        assert!(r >= 1, "scan depth must be >= 1");
        let mut total_clocks = 0u64;
        let mut vectors = 0u64;
        let mut useful_vectors = 0u64;
        let mut per_seed = Vec::with_capacity(self.useful.len());

        for seed in self.seed_order() {
            let segs = &self.useful[seed];
            let last = *segs.last().expect("every seed has a useful segment");
            let mut seed_clocks = 0u64;
            let mut seed_vectors = 0u64;
            let mut pending_gap = 0u64; // states of the current useless run
            for seg in 0..=last {
                let len = self.segment_len(seg) as u64;
                if segs.binary_search(&seg).is_ok() {
                    // flush the useless run first
                    if pending_gap > 0 {
                        let clocks = pending_gap / k + pending_gap % k;
                        seed_clocks += clocks;
                        seed_vectors += clocks.div_ceil(r as u64);
                        pending_gap = 0;
                    }
                    seed_clocks += len * r as u64;
                    seed_vectors += len;
                    useful_vectors += len;
                } else {
                    pending_gap += len * r as u64;
                }
            }
            debug_assert_eq!(pending_gap, 0, "the last segment is useful");
            total_clocks += seed_clocks;
            vectors += seed_vectors;
            per_seed.push(seed_vectors);
        }

        TslReport {
            total_clocks,
            vectors,
            useful_vectors,
            per_seed,
        }
    }

    /// TSL of the `[11]`-style baseline: no State Skip hardware, but
    /// each window still ends after its last useful segment (all
    /// traversed segments run in Normal mode). Equivalent to
    /// `tsl(1, r)`.
    pub fn tsl_truncated_only(&self, r: usize) -> TslReport {
        self.tsl(1, r)
    }
}

/// Test-sequence-length accounting for a [`SegmentPlan`] traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TslReport {
    /// Total decompressor clocks.
    pub total_clocks: u64,
    /// Total vectors applied to the CUT (useful + garbage) — the
    /// paper's TSL metric.
    pub vectors: u64,
    /// Vectors belonging to useful segments only.
    pub useful_vectors: u64,
    /// Applied vectors per seed, in application order.
    pub per_seed: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EmbeddingMap;
    use ss_gf2::BitVec;
    use ss_testdata::{ScanConfig, TestCube, TestSet};

    /// Hand-built map: 2 seeds, window 6, cubes with known embeddings.
    fn handmade_map() -> (TestSet, EmbeddingMap) {
        let mut set = TestSet::new(ScanConfig::new(1, 2).unwrap());
        // cube 0 matches only seed0 vector 0 (set A)
        set.push("11".parse::<TestCube>().unwrap()).unwrap();
        // cube 1 matches seed0 v4, seed1 v2 (set B)
        set.push("00".parse::<TestCube>().unwrap()).unwrap();
        // cube 2 matches seed1 v0 only (set A)
        set.push("01".parse::<TestCube>().unwrap()).unwrap();
        let z = |bits: [u8; 2]| BitVec::from_bits(bits.iter().map(|&b| b == 1));
        let windows = vec![
            vec![
                z([1, 1]),
                z([1, 0]),
                z([1, 0]),
                z([1, 0]),
                z([0, 0]),
                z([1, 0]),
            ],
            vec![
                z([0, 1]),
                z([1, 0]),
                z([0, 0]),
                z([1, 0]),
                z([1, 0]),
                z([1, 0]),
            ],
        ];
        let map = EmbeddingMap::from_windows(&set, &windows);
        (set, map)
    }

    #[test]
    fn set_a_segments_are_forced_and_cover_set_b() {
        let (_, map) = handmade_map();
        // S=2: segments are vector pairs {0,1},{2,3},{4,5}
        let plan = SegmentPlan::build(&map, 2);
        // cube 0 pins (seed0, seg0); cube 2 pins (seed1, seg0);
        // cube 1 embedded at (seed0, seg2) and (seed1, seg1): neither
        // forced, greedy picks one (earliest segment index wins: seed1 seg1)
        assert_eq!(plan.useful_segments(0), &[0]);
        assert_eq!(plan.useful_segments(1), &[0, 1]);
        assert_eq!(plan.total_useful(), 3);
    }

    #[test]
    fn groups_ascend_by_useful_count() {
        let (_, map) = handmade_map();
        let plan = SegmentPlan::build(&map, 2);
        let groups = plan.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (1, vec![0]));
        assert_eq!(groups[1], (2, vec![1]));
        assert_eq!(plan.seed_order(), vec![0, 1]);
    }

    #[test]
    fn segment_len_handles_partial_tail() {
        let (_, map) = handmade_map();
        let plan = SegmentPlan::build(&map, 4); // window 6 => segs of 4 and 2
        assert_eq!(plan.segments_per_window(), 2);
        assert_eq!(plan.segment_len(0), 4);
        assert_eq!(plan.segment_len(1), 2);
    }

    #[test]
    fn tsl_counts_skip_runs_exactly() {
        let (_, map) = handmade_map();
        let plan = SegmentPlan::build(&map, 2);
        let r = 2;
        // seed0: useful {0}: 2 vectors, 4 clocks. seed1: useful {0,1}:
        // 4 vectors, 8 clocks. No useless traversal at all (last useful
        // caps the window).
        let t = plan.tsl(4, r);
        assert_eq!(t.vectors, 6);
        assert_eq!(t.total_clocks, 12);
        assert_eq!(t.useful_vectors, 6);
        assert_eq!(t.per_seed, vec![2, 4]);
    }

    #[test]
    fn tsl_with_gap_and_speedup() {
        // Force a plan with a hole: seed embeds cubes at segments 0 and 2.
        let mut set = TestSet::new(ScanConfig::new(1, 2).unwrap());
        set.push("11".parse::<TestCube>().unwrap()).unwrap();
        set.push("00".parse::<TestCube>().unwrap()).unwrap();
        let z = |bits: [u8; 2]| BitVec::from_bits(bits.iter().map(|&b| b == 1));
        let windows = vec![vec![
            z([1, 1]),
            z([1, 0]),
            z([1, 0]),
            z([1, 0]),
            z([0, 0]),
            z([1, 0]),
        ]];
        let map = EmbeddingMap::from_windows(&set, &windows);
        let plan = SegmentPlan::build(&map, 2);
        assert_eq!(plan.useful_segments(0), &[0, 2]);

        let r = 2;
        // segment 1 is useless: G = 2 vectors * 2 = 4 states.
        // k=4: clocks = 4/4 + 0 = 1; garbage vectors = ceil(1/2) = 1.
        let t = plan.tsl(4, r);
        assert_eq!(t.total_clocks, (2 * 2) + 1 + (2 * 2));
        assert_eq!(t.vectors, 2 + 1 + 2);
        assert_eq!(t.useful_vectors, 4);

        // k=1 degenerates to truncation-only: all 3 segments in normal mode
        let t1 = plan.tsl_truncated_only(r);
        assert_eq!(t1.vectors, 6);
        assert_eq!(t1.total_clocks, 12);

        // k=3: clocks = 4/3 + 4%3 = 1 + 1 = 2; vectors = ceil(2/2) = 1
        let t3 = plan.tsl(3, r);
        assert_eq!(t3.total_clocks, 4 + 2 + 4);
        assert_eq!(t3.vectors, 5);
    }

    #[test]
    fn speedup_never_beats_the_k1_baseline_backwards() {
        // clocks = floor(G/k) + G mod k is not strictly monotone in k,
        // but no k can be worse than plain normal-mode traversal
        let (_, map) = handmade_map();
        let plan = SegmentPlan::build(&map, 1);
        let baseline = plan.tsl(1, 5).vectors;
        for k in 2..=24 {
            let t = plan.tsl(k, 5);
            assert!(t.vectors <= baseline, "k={k} worse than k=1");
        }
    }

    #[test]
    #[should_panic(expected = "segment size")]
    fn zero_segment_rejected() {
        let (_, map) = handmade_map();
        let _ = SegmentPlan::build(&map, 0);
    }

    #[test]
    fn empty_seed_gets_segment_zero_forced() {
        // one cube embedded in both seeds; greedy covers with seed0 only
        let mut set = TestSet::new(ScanConfig::new(1, 2).unwrap());
        set.push("1X".parse::<TestCube>().unwrap()).unwrap();
        let z = |bits: [u8; 2]| BitVec::from_bits(bits.iter().map(|&b| b == 1));
        let windows = vec![vec![z([1, 0]), z([0, 0])], vec![z([1, 0]), z([0, 0])]];
        let map = EmbeddingMap::from_windows(&set, &windows);
        let plan = SegmentPlan::build(&map, 1);
        // both seeds end with at least segment 0 useful
        assert!(!plan.useful_segments(0).is_empty());
        assert!(!plan.useful_segments(1).is_empty());
    }
}
