//! Plain-text table formatting for the experiment harness.

use std::fmt;

/// TSL improvement in percent, the paper's relation (2):
/// `(1 - new/old) * 100`.
///
/// Returns 0 when `old` is zero.
///
/// # Example
///
/// ```
/// assert_eq!(ss_core::improvement_percent(100, 25), 75.0);
/// ```
pub fn improvement_percent(old: u64, new: u64) -> f64 {
    if old == 0 {
        0.0
    } else {
        (1.0 - new as f64 / old as f64) * 100.0
    }
}

/// A minimal aligned-column text table, used by every bench target to
/// print paper-style rows.
///
/// # Example
///
/// ```
/// use ss_core::Table;
///
/// let mut t = Table::new(["circuit", "TDV", "TSL"]);
/// t.add_row(["s13207", "3816", "1756"]);
/// let text = t.to_string();
/// assert!(text.contains("s13207"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn add_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_formula() {
        assert_eq!(improvement_percent(200, 50), 75.0);
        assert_eq!(improvement_percent(10, 10), 0.0);
        assert_eq!(improvement_percent(0, 5), 0.0);
        assert!(improvement_percent(10, 20) < 0.0, "regressions go negative");
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["a", "long-header", "x"]);
        t.add_row(["1", "2", "3"]);
        t.add_row(["100000", "2", "3"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines equal width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only"]);
        assert_eq!(t.row_count(), 1);
        assert!(t.to_string().contains("only"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn long_rows_panic() {
        let mut t = Table::new(["a"]);
        t.add_row(["1", "2"]);
    }
}
