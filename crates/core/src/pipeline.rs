//! The legacy monolithic pipeline API, now a thin shim over the staged
//! [`Engine`](crate::Engine) flow.
//!
//! [`Pipeline`] predates the [`CompressionScheme`](crate::CompressionScheme)
//! trait and the typed `Encoded -> Embedded -> Segmented` stages; it is
//! kept for one release so existing callers compile unchanged, and it
//! delegates every step to the same stage functions, so its numbers are
//! bit-identical to `Engine::run`. New code should use
//! [`Engine::builder`](crate::Engine::builder); see the `MIGRATION`
//! section of `CHANGES.md` for the call-by-call mapping.

use ss_gf2::{BitVec, PackedPatterns, PATTERNS_PER_BLOCK};
use ss_lfsr::{Lfsr, LfsrKind, PhaseShifter};
use ss_testdata::{ScanConfig, TestSet};

use crate::artifacts::{Encoded, HardwareCtx};
use crate::builder::{Engine, EngineConfig};
use crate::cost::DecompressorCost;
use crate::embedding::EmbeddingMap;
use crate::encoder::EncodingResult;
use crate::error::SchemeError;
use crate::expr_table::ExprTable;
use crate::modeselect::ModeSelect;
use crate::segments::{SegmentPlan, TslReport};

/// Legacy name of the unified [`SchemeError`]; every variant and
/// `From` impl carried over, so existing `match`es and `?` conversions
/// keep compiling.
pub type PipelineError = SchemeError;

/// Expands a seed into its window of `window` fully specified test
/// vectors, exactly as the decompressor hardware would generate them
/// in Normal mode.
///
/// # Errors
///
/// [`SchemeError::BadConfig`] if the seed width differs from the LFSR
/// size or the shifter does not match the LFSR/scan geometry.
pub fn try_expand_seed(
    lfsr: &Lfsr,
    shifter: &PhaseShifter,
    scan: ScanConfig,
    seed: &BitVec,
    window: usize,
) -> Result<Vec<BitVec>, SchemeError> {
    if seed.len() != lfsr.size() {
        return Err(SchemeError::bad_config(format!(
            "seed width {} differs from LFSR size {}",
            seed.len(),
            lfsr.size()
        )));
    }
    if shifter.input_count() != lfsr.size() {
        return Err(SchemeError::bad_config(format!(
            "phase shifter reads {} cells but the LFSR has {}",
            shifter.input_count(),
            lfsr.size()
        )));
    }
    if shifter.output_count() != scan.chains() {
        return Err(SchemeError::bad_config(format!(
            "phase shifter drives {} chains but the scan geometry has {}",
            shifter.output_count(),
            scan.chains()
        )));
    }
    let mut lfsr = lfsr.clone();
    lfsr.load(seed);
    let r = scan.depth();
    let mut vectors = Vec::with_capacity(window);
    for _ in 0..window {
        let mut vector = BitVec::zeros(scan.cells());
        for t in 0..r {
            let outs = shifter.outputs(lfsr.state());
            let pos = scan.position_loaded_at(t);
            for c in 0..scan.chains() {
                if outs.get(c) {
                    vector.set(scan.cell_index(c, pos), true);
                }
            }
            lfsr.step();
        }
        vectors.push(vector);
    }
    Ok(vectors)
}

/// Packed variant of [`try_expand_seed`]: expands a seed into its
/// window of fully specified vectors as a bit-sliced
/// [`PackedPatterns`] block set (64 window positions per `u64` lane),
/// bit-identical to the scalar expansion. The win is in the
/// phase-shifter side: one packed [`PhaseShifter::outputs_packed`]
/// evaluation per clock serves 64 window positions at once, where the
/// scalar path pays a full matrix-vector product and per-cell bit
/// sets for every window separately.
///
/// One-shot convenience over [`PackedWindowExpander`]; callers
/// expanding many seeds against the same hardware should build the
/// expander once so the transition-matrix powers are amortised.
///
/// # Errors
///
/// [`SchemeError::BadConfig`] under exactly the same geometry checks
/// as [`try_expand_seed`].
pub fn try_expand_seed_packed(
    lfsr: &Lfsr,
    shifter: &PhaseShifter,
    scan: ScanConfig,
    seed: &BitVec,
    window: usize,
) -> Result<PackedPatterns, SchemeError> {
    PackedWindowExpander::new(lfsr, shifter, scan, window)?.expand(seed)
}

/// Reusable packed seed-window expander: one `(LFSR, phase shifter,
/// scan, window)` setup, many seeds.
///
/// Each 64-position block runs one [`PackedLfsrStream`] pass of `r`
/// clocks — 64 lanes stepped together bit-sliced, one lane per window
/// position — and block starts are reached with a precomputed
/// `T^(64·r)` transition-matrix jump ([`ExpressionStream::to_matrix`]
/// territory: one [`BitMatrix::pow`](ss_gf2::BitMatrix::pow) at
/// construction) instead of `64·r` scalar `step()`s per block. This
/// is the generation path behind
/// [`EmbeddingMap::build`](crate::EmbeddingMap::build).
///
/// [`PackedLfsrStream`]: ss_lfsr::PackedLfsrStream
/// [`ExpressionStream::to_matrix`]: ss_lfsr::ExpressionStream::to_matrix
///
/// # Example
///
/// ```
/// use ss_core::{try_expand_seed, PackedWindowExpander};
/// use ss_gf2::{primitive_poly, BitVec};
/// use ss_lfsr::{Lfsr, PhaseShifter};
/// use ss_testdata::ScanConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lfsr = Lfsr::fibonacci(primitive_poly(8)?);
/// let shifter = PhaseShifter::identity(8);
/// let scan = ScanConfig::new(8, 4)?;
/// let expander = PackedWindowExpander::new(&lfsr, &shifter, scan, 70)?;
/// let seed = BitVec::from_u128(8, 0xA5);
/// let packed = expander.expand(&seed)?;
/// // bit-identical to the scalar path, 64 windows per word
/// let scalar = try_expand_seed(&lfsr, &shifter, scan, &seed, 70)?;
/// assert_eq!(packed.to_vectors(), scalar);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedWindowExpander<'a> {
    lfsr: &'a Lfsr,
    shifter: &'a PhaseShifter,
    scan: ScanConfig,
    window: usize,
    /// `T^(64·r)`: the block-to-block jump; `None` for single-block
    /// windows.
    block_jump: Option<ss_gf2::BitMatrix>,
}

impl<'a> PackedWindowExpander<'a> {
    /// Validates the hardware geometry and precomputes the jump
    /// matrices.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadConfig`] if the shifter does not match the
    /// LFSR/scan geometry.
    pub fn new(
        lfsr: &'a Lfsr,
        shifter: &'a PhaseShifter,
        scan: ScanConfig,
        window: usize,
    ) -> Result<Self, SchemeError> {
        if shifter.input_count() != lfsr.size() {
            return Err(SchemeError::bad_config(format!(
                "phase shifter reads {} cells but the LFSR has {}",
                shifter.input_count(),
                lfsr.size()
            )));
        }
        if shifter.output_count() != scan.chains() {
            return Err(SchemeError::bad_config(format!(
                "phase shifter drives {} chains but the scan geometry has {}",
                shifter.output_count(),
                scan.chains()
            )));
        }
        let block_jump = (window > PATTERNS_PER_BLOCK).then(|| {
            lfsr.transition_matrix()
                .pow((PATTERNS_PER_BLOCK * scan.depth()) as u64)
        });
        Ok(PackedWindowExpander {
            lfsr,
            shifter,
            scan,
            window,
            block_jump,
        })
    }

    /// The window length this expander produces.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Expands one seed into its packed window.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadConfig`] if the seed width differs from the
    /// LFSR size.
    pub fn expand(&self, seed: &BitVec) -> Result<PackedPatterns, SchemeError> {
        let mut packed = PackedPatterns::zeros(0, 0);
        self.expand_into(seed, &mut packed)?;
        Ok(packed)
    }

    /// [`expand`](PackedWindowExpander::expand) into a reusable
    /// scratch buffer (reset first), for allocation-free outer loops
    /// over many seeds.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadConfig`] if the seed width differs from the
    /// LFSR size.
    pub fn expand_into(&self, seed: &BitVec, out: &mut PackedPatterns) -> Result<(), SchemeError> {
        if seed.len() != self.lfsr.size() {
            return Err(SchemeError::bad_config(format!(
                "seed width {} differs from LFSR size {}",
                seed.len(),
                self.lfsr.size()
            )));
        }
        let r = self.scan.depth();
        out.reset(self.scan.cells(), self.window);
        let blocks = self.window.div_ceil(PATTERNS_PER_BLOCK);
        let mut base = seed.clone();
        let mut outs = Vec::with_capacity(self.scan.chains());
        for block in 0..blocks {
            let lanes = (self.window - block * PATTERNS_PER_BLOCK).min(PATTERNS_PER_BLOCK);
            // lane starts are r-step neighbours: a scalar walk beats a
            // matrix-vector product per lane at scan-depth strides
            let mut stream =
                ss_lfsr::PackedLfsrStream::from_walk(self.lfsr, &base, r as u64, lanes);
            for t in 0..r {
                self.shifter.outputs_packed_into(stream.slices(), &mut outs);
                let pos = self.scan.position_loaded_at(t);
                for (c, &word) in outs.iter().enumerate() {
                    out.set_word(self.scan.cell_index(c, pos), block, word);
                }
                stream.step();
            }
            if block + 1 < blocks {
                // the 64-window jump to the next block's start: one
                // precomputed T^(64*r) matrix-vector product
                let jump = self.block_jump.as_ref().expect("multi-block windows");
                base = jump.mul_vec(&base);
            }
        }
        Ok(())
    }
}

/// Panicking wrapper around [`try_expand_seed`], kept for legacy
/// callers.
///
/// # Panics
///
/// Panics if the seed width differs from the LFSR size or the shifter
/// does not match the LFSR/scan geometry.
#[deprecated(since = "0.2.0", note = "use try_expand_seed, which returns a Result")]
pub fn expand_seed(
    lfsr: &Lfsr,
    shifter: &PhaseShifter,
    scan: ScanConfig,
    seed: &BitVec,
    window: usize,
) -> Vec<BitVec> {
    try_expand_seed(lfsr, shifter, scan, seed, window)
        .unwrap_or_else(|e| panic!("expand_seed: {e}"))
}

/// Configuration of a [`Pipeline`] run.
///
/// Superseded by [`Engine::builder`](crate::Engine::builder) /
/// [`EngineConfig`]; kept field-for-field compatible (and therefore
/// *not* `#[non_exhaustive]`) so legacy struct literals keep
/// compiling. `From` conversions exist in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Window length `L` (vectors per seed).
    pub window: usize,
    /// Segment size `S` (vectors per segment), `1..=L`.
    pub segment: usize,
    /// State Skip speedup factor `k`.
    pub speedup: u64,
    /// LFSR size `n`; `None` picks `smax + 4` (clamped to a tabulated
    /// primitive-polynomial degree).
    pub lfsr_size: Option<usize>,
    /// LFSR feedback structure.
    pub lfsr_kind: LfsrKind,
    /// Phase shifter taps per scan chain.
    pub ps_taps: usize,
    /// RNG seed for phase shifter synthesis (the "hardware" seed).
    pub hw_seed: u64,
    /// RNG seed for the pseudorandom fill of free seed variables.
    pub fill_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window: 100,
            segment: 5,
            speedup: 10,
            lfsr_size: None,
            lfsr_kind: LfsrKind::Fibonacci,
            ps_taps: 3,
            // calibrated so the default phase shifter yields zero
            // intrinsically unencodable cubes across the standard
            // synthetic workloads (mini + scaled paper profiles and the
            // tiny-circuit ATPG sets)
            hw_seed: 0x14A2_4108_A00E_3508,
            fill_seed: 1,
        }
    }
}

impl From<PipelineConfig> for EngineConfig {
    fn from(c: PipelineConfig) -> Self {
        EngineConfig {
            window: c.window,
            segment: c.segment,
            speedup: c.speedup,
            lfsr_size: c.lfsr_size,
            lfsr_kind: c.lfsr_kind,
            ps_taps: c.ps_taps,
            hw_seed: c.hw_seed,
            fill_seed: c.fill_seed,
            // the legacy API predates the knob; results are
            // thread-count-invariant, so the default is safe
            threads: None,
        }
    }
}

impl From<EngineConfig> for PipelineConfig {
    fn from(c: EngineConfig) -> Self {
        PipelineConfig {
            window: c.window,
            segment: c.segment,
            speedup: c.speedup,
            lfsr_size: c.lfsr_size,
            lfsr_kind: c.lfsr_kind,
            ps_taps: c.ps_taps,
            hw_seed: c.hw_seed,
            fill_seed: c.fill_seed,
        }
    }
}

/// The legacy monolithic entry point: hardware synthesis at
/// construction, everything else behind one `run()`.
///
/// Thin shim over [`Engine`](crate::Engine) + the staged artifacts;
/// see the `MIGRATION` section of `CHANGES.md` for the call-by-call
/// mapping.
#[derive(Debug)]
pub struct Pipeline<'a> {
    set: &'a TestSet,
    config: PipelineConfig,
    ctx: HardwareCtx,
}

impl<'a> Pipeline<'a> {
    /// Synthesises the hardware and precomputes the expression table.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] for invalid configuration or failed
    /// hardware synthesis.
    pub fn new(set: &'a TestSet, config: PipelineConfig) -> Result<Self, PipelineError> {
        let engine = Engine::from_config(config.into())?;
        let ctx = engine.synthesize(set)?;
        Ok(Pipeline { set, config, ctx })
    }

    /// The synthesised LFSR.
    pub fn lfsr(&self) -> &Lfsr {
        self.ctx.lfsr()
    }

    /// The synthesised phase shifter.
    pub fn shifter(&self) -> &PhaseShifter {
        self.ctx.shifter()
    }

    /// The precomputed expression table.
    pub fn table(&self) -> &ExprTable {
        self.ctx.table()
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// The staged hardware context this shim wraps.
    pub fn ctx(&self) -> &HardwareCtx {
        &self.ctx
    }

    /// Splits the test set into the cubes this hardware can encode and
    /// the indices of *intrinsically unencodable* cubes; see
    /// [`HardwareCtx::encodable_subset`].
    pub fn encodable_subset(&self) -> (TestSet, Vec<usize>) {
        self.ctx.encodable_subset(self.set)
    }

    /// Runs encoding, embedding detection, segment selection and cost
    /// estimation — the staged flow end to end.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Encode`] if some cube cannot be encoded
    /// (LFSR too small).
    pub fn run(&self) -> Result<PipelineReport, PipelineError> {
        Encoded::from_ctx_ref(self.set, &self.ctx)?
            .embed()
            .segment()
            .finish()
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// LFSR size `n` used.
    pub lfsr_size: usize,
    /// Window length `L`.
    pub window: usize,
    /// Segment size `S`.
    pub segment: usize,
    /// Speedup factor `k`.
    pub speedup: u64,
    /// Number of seeds.
    pub seeds: usize,
    /// Test data volume in bits (`seeds * n`).
    pub tdv: usize,
    /// TSL of the plain window-based scheme (`seeds * L`).
    pub tsl_original: u64,
    /// TSL with truncation after the last useful segment but no State
    /// Skip (the `[11]`-flavoured baseline).
    pub tsl_truncated: u64,
    /// TSL of the proposed State Skip scheme.
    pub tsl_proposed: u64,
    /// TSL improvement over the original window-based scheme, percent
    /// (the paper's relation (2)).
    pub improvement_percent: f64,
    /// The raw encoding.
    pub encoding: EncodingResult,
    /// All cube embeddings.
    pub embedding: EmbeddingMap,
    /// The segment plan.
    pub plan: SegmentPlan,
    /// Detailed TSL accounting.
    pub tsl_report: TslReport,
    /// The Mode Select unit model.
    pub mode_select: ModeSelect,
    /// Hardware cost estimate.
    pub cost: DecompressorCost,
}

impl PipelineReport {
    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} L={} S={} k={}: {} seeds, TDV {} bits, TSL {} -> {} vectors ({:.1}% shorter; truncation-only {}), decompressor {:.0} GE",
            self.lfsr_size,
            self.window,
            self.segment,
            self.speedup,
            self.seeds,
            self.tdv,
            self.tsl_original,
            self.tsl_proposed,
            self.improvement_percent,
            self.tsl_truncated,
            self.cost.total_ge()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_testdata::{generate_test_set, CubeProfile};

    fn mini_config() -> PipelineConfig {
        PipelineConfig {
            window: 24,
            segment: 4,
            speedup: 6,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn full_run_on_mini_profile() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        let report = pipeline.run().unwrap();
        assert!(report.seeds > 0);
        assert_eq!(report.tdv, report.seeds * report.lfsr_size);
        assert_eq!(report.tsl_original, (report.seeds * 24) as u64);
        assert!(report.tsl_proposed <= report.tsl_truncated);
        assert!(report.tsl_truncated <= report.tsl_original);
        assert!(report.improvement_percent > 0.0);
        assert!(report.embedding.validate());
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn config_validation() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let bad = |cfg: PipelineConfig| {
            matches!(Pipeline::new(&set, cfg), Err(PipelineError::BadConfig(_)))
        };
        assert!(bad(PipelineConfig {
            window: 0,
            ..mini_config()
        }));
        assert!(bad(PipelineConfig {
            segment: 0,
            ..mini_config()
        }));
        assert!(bad(PipelineConfig {
            segment: 25,
            ..mini_config()
        }));
        assert!(bad(PipelineConfig {
            speedup: 0,
            ..mini_config()
        }));
        assert!(bad(PipelineConfig {
            lfsr_size: Some(5),
            ..mini_config()
        }));
    }

    #[test]
    fn default_lfsr_size_is_smax_plus_margin() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        assert_eq!(pipeline.lfsr().size(), set.smax() + 4);
    }

    #[test]
    fn expand_seed_is_window_long_and_deterministic() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        let seed = BitVec::ones(pipeline.lfsr().size());
        let a =
            try_expand_seed(pipeline.lfsr(), pipeline.shifter(), set.config(), &seed, 7).unwrap();
        let b =
            try_expand_seed(pipeline.lfsr(), pipeline.shifter(), set.config(), &seed, 7).unwrap();
        assert_eq!(a.len(), 7);
        assert_eq!(a, b);
        for v in &a {
            assert_eq!(v.len(), set.config().cells());
        }
    }

    #[test]
    fn packed_expansion_is_bit_identical_to_scalar() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        // windows straddling one block, an exact block and a ragged tail
        for window in [1, 7, 64, 70, 130] {
            let seed = BitVec::random(pipeline.lfsr().size(), &mut rng);
            let scalar = try_expand_seed(
                pipeline.lfsr(),
                pipeline.shifter(),
                set.config(),
                &seed,
                window,
            )
            .unwrap();
            let packed = try_expand_seed_packed(
                pipeline.lfsr(),
                pipeline.shifter(),
                set.config(),
                &seed,
                window,
            )
            .unwrap();
            assert_eq!(packed.count(), window);
            assert_eq!(packed.to_vectors(), scalar, "window {window}");
        }
    }

    #[test]
    fn packed_expansion_rejects_the_same_geometry_mismatches() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        let narrow = BitVec::ones(pipeline.lfsr().size() - 1);
        let result = try_expand_seed_packed(
            pipeline.lfsr(),
            pipeline.shifter(),
            set.config(),
            &narrow,
            4,
        );
        assert!(matches!(result, Err(SchemeError::BadConfig(_))));
    }

    #[test]
    fn try_expand_seed_rejects_geometry_mismatches() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        let narrow = BitVec::ones(pipeline.lfsr().size() - 1);
        let result = try_expand_seed(
            pipeline.lfsr(),
            pipeline.shifter(),
            set.config(),
            &narrow,
            4,
        );
        assert!(matches!(result, Err(SchemeError::BadConfig(_))));
        // the deprecated wrapper panics on the same input
        #[allow(deprecated)]
        let panicked = std::panic::catch_unwind(|| {
            expand_seed(
                pipeline.lfsr(),
                pipeline.shifter(),
                set.config(),
                &narrow,
                4,
            )
        });
        assert!(panicked.is_err());
    }

    #[test]
    fn higher_k_shortens_proposed_tsl() {
        let set = generate_test_set(&CubeProfile::mini(), 2);
        let slow = Pipeline::new(
            &set,
            PipelineConfig {
                speedup: 2,
                ..mini_config()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        let fast = Pipeline::new(
            &set,
            PipelineConfig {
                speedup: 12,
                ..mini_config()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        // same seeds/plan (speedup affects traversal only)
        assert_eq!(slow.seeds, fast.seeds);
        assert!(fast.tsl_proposed <= slow.tsl_proposed);
    }

    #[test]
    fn config_conversions_roundtrip() {
        let legacy = mini_config();
        let engine: EngineConfig = legacy.into();
        let back: PipelineConfig = engine.into();
        assert_eq!(legacy, back);
    }
}
