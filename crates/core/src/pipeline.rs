//! End-to-end State Skip compression pipeline.

use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ss_gf2::{primitive_poly, BitVec, PrimitivePolyError};
use ss_lfsr::{Lfsr, LfsrError, LfsrKind, PhaseShifter, PhaseShifterError, SkipCircuit};
use ss_testdata::{ScanConfig, TestSet};

use crate::cost::{DecompressorCost, DecompressorCostInputs};
use crate::embedding::EmbeddingMap;
use crate::encoder::{EncodeError, EncodingResult, WindowEncoder};
use crate::expr_table::ExprTable;
use crate::modeselect::ModeSelect;
use crate::segments::{SegmentPlan, TslReport};

/// Expands a seed into its window of `window` fully specified test
/// vectors, exactly as the decompressor hardware would generate them in
/// Normal mode.
///
/// # Panics
///
/// Panics if the seed width differs from the LFSR size or the shifter
/// does not match the LFSR/scan geometry.
pub fn expand_seed(
    lfsr: &Lfsr,
    shifter: &PhaseShifter,
    scan: ScanConfig,
    seed: &BitVec,
    window: usize,
) -> Vec<BitVec> {
    assert_eq!(shifter.output_count(), scan.chains(), "shifter/scan mismatch");
    let mut lfsr = lfsr.clone();
    lfsr.load(seed);
    let r = scan.depth();
    let mut vectors = Vec::with_capacity(window);
    for _ in 0..window {
        let mut vector = BitVec::zeros(scan.cells());
        for t in 0..r {
            let outs = shifter.outputs(lfsr.state());
            let pos = scan.position_loaded_at(t);
            for c in 0..scan.chains() {
                if outs.get(c) {
                    vector.set(scan.cell_index(c, pos), true);
                }
            }
            lfsr.step();
        }
        vectors.push(vector);
    }
    vectors
}

/// Configuration of a [`Pipeline`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Window length `L` (vectors per seed).
    pub window: usize,
    /// Segment size `S` (vectors per segment), `1..=L`.
    pub segment: usize,
    /// State Skip speedup factor `k`.
    pub speedup: u64,
    /// LFSR size `n`; `None` picks `smax + 4` (clamped to a tabulated
    /// primitive-polynomial degree).
    pub lfsr_size: Option<usize>,
    /// LFSR feedback structure.
    pub lfsr_kind: LfsrKind,
    /// Phase shifter taps per scan chain.
    pub ps_taps: usize,
    /// RNG seed for phase shifter synthesis (the "hardware" seed).
    pub hw_seed: u64,
    /// RNG seed for the pseudorandom fill of free seed variables.
    pub fill_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window: 100,
            segment: 5,
            speedup: 10,
            lfsr_size: None,
            lfsr_kind: LfsrKind::Fibonacci,
            ps_taps: 3,
            hw_seed: 0xDA7E_2008,
            fill_seed: 1,
        }
    }
}

/// Error from [`Pipeline`] construction or execution.
#[derive(Debug)]
pub enum PipelineError {
    /// Invalid configuration (message explains the constraint).
    BadConfig(String),
    /// No primitive polynomial for the requested LFSR size.
    Poly(PrimitivePolyError),
    /// LFSR construction failed.
    Lfsr(LfsrError),
    /// Phase shifter synthesis failed.
    PhaseShifter(PhaseShifterError),
    /// Seed encoding failed.
    Encode(EncodeError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BadConfig(msg) => write!(f, "bad pipeline configuration: {msg}"),
            PipelineError::Poly(e) => write!(f, "polynomial selection: {e}"),
            PipelineError::Lfsr(e) => write!(f, "LFSR construction: {e}"),
            PipelineError::PhaseShifter(e) => write!(f, "phase shifter synthesis: {e}"),
            PipelineError::Encode(e) => write!(f, "seed encoding: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::BadConfig(_) => None,
            PipelineError::Poly(e) => Some(e),
            PipelineError::Lfsr(e) => Some(e),
            PipelineError::PhaseShifter(e) => Some(e),
            PipelineError::Encode(e) => Some(e),
        }
    }
}

impl From<PrimitivePolyError> for PipelineError {
    fn from(e: PrimitivePolyError) -> Self {
        PipelineError::Poly(e)
    }
}

impl From<LfsrError> for PipelineError {
    fn from(e: LfsrError) -> Self {
        PipelineError::Lfsr(e)
    }
}

impl From<PhaseShifterError> for PipelineError {
    fn from(e: PhaseShifterError) -> Self {
        PipelineError::PhaseShifter(e)
    }
}

impl From<EncodeError> for PipelineError {
    fn from(e: EncodeError) -> Self {
        PipelineError::Encode(e)
    }
}

/// The full State Skip flow bound to one test set: LFSR + phase
/// shifter synthesis, expression table, seed encoding, embedding
/// detection, segment selection, TSL accounting and hardware cost
/// estimation.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Pipeline<'a> {
    set: &'a TestSet,
    config: PipelineConfig,
    lfsr: Lfsr,
    shifter: PhaseShifter,
    table: ExprTable,
}

impl<'a> Pipeline<'a> {
    /// Synthesises the hardware and precomputes the expression table.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] for invalid configuration or failed
    /// hardware synthesis.
    pub fn new(set: &'a TestSet, config: PipelineConfig) -> Result<Self, PipelineError> {
        if config.window == 0 {
            return Err(PipelineError::BadConfig("window must be >= 1".into()));
        }
        if config.segment == 0 || config.segment > config.window {
            return Err(PipelineError::BadConfig(
                "segment must be in 1..=window".into(),
            ));
        }
        if config.speedup == 0 {
            return Err(PipelineError::BadConfig("speedup must be >= 1".into()));
        }
        if set.is_empty() {
            return Err(PipelineError::BadConfig("test set is empty".into()));
        }
        let n = config.lfsr_size.unwrap_or((set.smax() + 4).clamp(3, 168));
        if n < set.smax() {
            return Err(PipelineError::BadConfig(format!(
                "LFSR size {n} is below smax {}",
                set.smax()
            )));
        }
        let poly = primitive_poly(n)?;
        let lfsr = Lfsr::try_new(poly, config.lfsr_kind)?;
        let mut rng = SmallRng::seed_from_u64(config.hw_seed);
        let shifter =
            PhaseShifter::synthesize(n, set.config().chains(), config.ps_taps, &mut rng)?;
        let table = ExprTable::build(&lfsr, &shifter, set.config(), config.window);
        Ok(Pipeline {
            set,
            config,
            lfsr,
            shifter,
            table,
        })
    }

    /// The synthesised LFSR.
    pub fn lfsr(&self) -> &Lfsr {
        &self.lfsr
    }

    /// The synthesised phase shifter.
    pub fn shifter(&self) -> &PhaseShifter {
        &self.shifter
    }

    /// The precomputed expression table.
    pub fn table(&self) -> &ExprTable {
        &self.table
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Splits the test set into the cubes this hardware can encode and
    /// the indices of *intrinsically unencodable* cubes.
    ///
    /// A cube whose specified-bit expressions are linearly dependent
    /// with inconsistent values conflicts in an **empty** window — and
    /// because moving a cube from window position 0 to position `v`
    /// multiplies every expression by the invertible matrix `T^(v*r)`,
    /// such a conflict holds at *every* position: no seed can ever
    /// carry the cube. This is a property of the (LFSR, phase shifter,
    /// cube) triple; the paper's real test sets simply did not contain
    /// such cubes at the chosen LFSR sizes, and a DFT engineer hitting
    /// one would bump `n`. Benches use this filter to emulate the
    /// former; see `EXPERIMENTS.md`.
    pub fn encodable_subset(&self) -> (TestSet, Vec<usize>) {
        use ss_gf2::{IncrementalSolver, SolveOutcome};
        let mut keep = TestSet::new(self.set.config());
        let mut dropped = Vec::new();
        for (ci, cube) in self.set.iter().enumerate() {
            let mut solver = IncrementalSolver::new(self.table.vars());
            let mut ok = true;
            for (cell, bit) in cube.iter_specified() {
                let expr = self.table.cell_expr(0, cell);
                if solver.insert(&expr, bit) == SolveOutcome::Conflict {
                    ok = false;
                    break;
                }
            }
            if ok {
                keep.push(cube.clone()).expect("same geometry");
            } else {
                dropped.push(ci);
            }
        }
        (keep, dropped)
    }

    /// Runs encoding, embedding detection, segment selection and cost
    /// estimation.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Encode`] if some cube cannot be encoded
    /// (LFSR too small).
    pub fn run(&self) -> Result<PipelineReport, PipelineError> {
        let encoding = WindowEncoder::new(self.set, &self.table)?.encode(self.config.fill_seed)?;
        let embedding = EmbeddingMap::build(self.set, &encoding, &self.lfsr, &self.shifter);
        let plan = SegmentPlan::build(&embedding, self.config.segment);
        let r = self.set.config().depth();
        let tsl_report = plan.tsl(self.config.speedup, r);
        let mode_select = ModeSelect::from_plan(&plan);

        let skip = SkipCircuit::new(&self.lfsr, self.config.speedup)
            .expect("speedup validated in new()");
        let skip_net = skip.synthesize();
        let cost = DecompressorCost::estimate(&DecompressorCostInputs {
            lfsr_size: self.lfsr.size(),
            poly_weight: self.lfsr.poly().weight(),
            ps_xor2: self.shifter.xor2_count(),
            skip_xor2: skip_net.gate_count(),
            scan_depth: r,
            segment: self.config.segment,
            window: self.config.window,
            group_count: plan.groups().len(),
            max_group_size: plan.groups().iter().map(|(_, s)| s.len()).max().unwrap_or(0),
            max_useful: plan.groups().last().map(|(c, _)| *c).unwrap_or(0),
            mode_select_terms: mode_select.term_count(),
        });

        let tsl_original = encoding.tsl_original() as u64;
        let tsl_proposed = tsl_report.vectors;
        Ok(PipelineReport {
            lfsr_size: self.lfsr.size(),
            window: self.config.window,
            segment: self.config.segment,
            speedup: self.config.speedup,
            seeds: encoding.seeds.len(),
            tdv: encoding.tdv(),
            tsl_original,
            tsl_truncated: plan.tsl_truncated_only(r).vectors,
            tsl_proposed,
            improvement_percent: crate::report::improvement_percent(tsl_original, tsl_proposed),
            encoding,
            embedding,
            plan,
            tsl_report,
            mode_select,
            cost,
        })
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// LFSR size `n` used.
    pub lfsr_size: usize,
    /// Window length `L`.
    pub window: usize,
    /// Segment size `S`.
    pub segment: usize,
    /// Speedup factor `k`.
    pub speedup: u64,
    /// Number of seeds.
    pub seeds: usize,
    /// Test data volume in bits (`seeds * n`).
    pub tdv: usize,
    /// TSL of the plain window-based scheme (`seeds * L`).
    pub tsl_original: u64,
    /// TSL with truncation after the last useful segment but no State
    /// Skip (the `[11]`-flavoured baseline).
    pub tsl_truncated: u64,
    /// TSL of the proposed State Skip scheme.
    pub tsl_proposed: u64,
    /// TSL improvement over the original window-based scheme, percent
    /// (the paper's relation (2)).
    pub improvement_percent: f64,
    /// The raw encoding.
    pub encoding: EncodingResult,
    /// All cube embeddings.
    pub embedding: EmbeddingMap,
    /// The segment plan.
    pub plan: SegmentPlan,
    /// Detailed TSL accounting.
    pub tsl_report: TslReport,
    /// The Mode Select unit model.
    pub mode_select: ModeSelect,
    /// Hardware cost estimate.
    pub cost: DecompressorCost,
}

impl PipelineReport {
    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} L={} S={} k={}: {} seeds, TDV {} bits, TSL {} -> {} vectors ({:.1}% shorter; truncation-only {}), decompressor {:.0} GE",
            self.lfsr_size,
            self.window,
            self.segment,
            self.speedup,
            self.seeds,
            self.tdv,
            self.tsl_original,
            self.tsl_proposed,
            self.improvement_percent,
            self.tsl_truncated,
            self.cost.total_ge()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_testdata::{generate_test_set, CubeProfile};

    fn mini_config() -> PipelineConfig {
        PipelineConfig {
            window: 24,
            segment: 4,
            speedup: 6,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn full_run_on_mini_profile() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        let report = pipeline.run().unwrap();
        assert!(report.seeds > 0);
        assert_eq!(report.tdv, report.seeds * report.lfsr_size);
        assert_eq!(report.tsl_original, (report.seeds * 24) as u64);
        assert!(report.tsl_proposed <= report.tsl_truncated);
        assert!(report.tsl_truncated <= report.tsl_original);
        assert!(report.improvement_percent > 0.0);
        assert!(report.embedding.validate());
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn config_validation() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let bad = |cfg: PipelineConfig| matches!(Pipeline::new(&set, cfg), Err(PipelineError::BadConfig(_)));
        assert!(bad(PipelineConfig { window: 0, ..mini_config() }));
        assert!(bad(PipelineConfig { segment: 0, ..mini_config() }));
        assert!(bad(PipelineConfig { segment: 25, ..mini_config() }));
        assert!(bad(PipelineConfig { speedup: 0, ..mini_config() }));
        assert!(bad(PipelineConfig { lfsr_size: Some(5), ..mini_config() }));
    }

    #[test]
    fn default_lfsr_size_is_smax_plus_margin() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        assert_eq!(pipeline.lfsr().size(), set.smax() + 4);
    }

    #[test]
    fn expand_seed_is_window_long_and_deterministic() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let pipeline = Pipeline::new(&set, mini_config()).unwrap();
        let seed = BitVec::ones(pipeline.lfsr().size());
        let a = expand_seed(pipeline.lfsr(), pipeline.shifter(), set.config(), &seed, 7);
        let b = expand_seed(pipeline.lfsr(), pipeline.shifter(), set.config(), &seed, 7);
        assert_eq!(a.len(), 7);
        assert_eq!(a, b);
        for v in &a {
            assert_eq!(v.len(), set.config().cells());
        }
    }

    #[test]
    fn higher_k_shortens_proposed_tsl() {
        let set = generate_test_set(&CubeProfile::mini(), 2);
        let slow = Pipeline::new(&set, PipelineConfig { speedup: 2, ..mini_config() })
            .unwrap()
            .run()
            .unwrap();
        let fast = Pipeline::new(&set, PipelineConfig { speedup: 12, ..mini_config() })
            .unwrap()
            .run()
            .unwrap();
        // same seeds/plan (speedup affects traversal only)
        assert_eq!(slow.seeds, fast.seeds);
        assert!(fast.tsl_proposed <= slow.tsl_proposed);
    }
}
