//! The staged [`Engine`] front-end and its builder.
//!
//! [`Engine::builder()`] collects the scheme knobs, validates them
//! once in [`EngineBuilder::build`], and the resulting [`Engine`]
//! exposes the flow as typed stages —
//! [`Encoded`](crate::Encoded) → [`Embedded`](crate::Embedded) →
//! [`Segmented`](crate::Segmented) → [`TslReport`](crate::TslReport) —
//! so callers can stop, inspect or re-enter at any point instead of
//! one opaque `run()`.

use std::panic;
use std::thread;

use ss_lfsr::LfsrKind;
use ss_testdata::TestSet;

use crate::artifacts::{Encoded, HardwareCtx};
use crate::error::SchemeError;
use crate::pipeline::PipelineReport;
use crate::scheme::{CompressionScheme, SchemeReport};

/// The validated knob set an [`Engine`] runs with.
///
/// `#[non_exhaustive]`: new knobs can be added without breaking
/// callers. Construct it through [`Engine::builder`] (or convert a
/// legacy [`PipelineConfig`](crate::PipelineConfig) with `From`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Window length `L` (vectors per seed).
    pub window: usize,
    /// Segment size `S` (vectors per segment), `1..=L`.
    pub segment: usize,
    /// State Skip speedup factor `k`.
    pub speedup: u64,
    /// LFSR size `n`; `None` picks `smax + 4` (clamped to a tabulated
    /// primitive-polynomial degree).
    pub lfsr_size: Option<usize>,
    /// LFSR feedback structure.
    pub lfsr_kind: LfsrKind,
    /// Phase shifter taps per scan chain.
    pub ps_taps: usize,
    /// RNG seed for phase shifter synthesis (the "hardware" seed).
    pub hw_seed: u64,
    /// RNG seed for the pseudorandom fill of free seed variables.
    pub fill_seed: u64,
    /// Worker-thread budget for the parallel stages (candidate
    /// probing, embedding detection, [`Engine::run_all`],
    /// [`SocPlan::run_batch`](crate::SocPlan::run_batch)); `None`
    /// uses [`std::thread::available_parallelism`]. Results are
    /// bit-identical at every thread count.
    pub threads: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            window: 100,
            segment: 5,
            speedup: 10,
            lfsr_size: None,
            lfsr_kind: LfsrKind::Fibonacci,
            ps_taps: 3,
            // calibrated so the default phase shifter yields zero
            // intrinsically unencodable cubes across the standard
            // synthetic workloads; keep in sync with
            // PipelineConfig::default
            hw_seed: 0x14A2_4108_A00E_3508,
            fill_seed: 1,
            threads: None,
        }
    }
}

/// Resolves a [`EngineConfig::threads`] knob to a concrete worker
/// count: the explicit value, or the machine's available parallelism
/// (falling back to 1 when that is unknowable).
pub(crate) fn resolve_threads(threads: Option<usize>) -> usize {
    threads
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
        .max(1)
}

/// Fluent construction of an [`Engine`].
///
/// ```
/// use ss_core::Engine;
///
/// # fn main() -> Result<(), ss_core::SchemeError> {
/// let engine = Engine::builder().window(40).segment(5).speedup(8).build()?;
/// assert_eq!(engine.config().window, 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain an Engine"]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    pub(crate) fn new() -> Self {
        EngineBuilder {
            config: EngineConfig::default(),
        }
    }

    /// Window length `L` (vectors per seed).
    pub fn window(mut self, window: usize) -> Self {
        self.config.window = window;
        self
    }

    /// Segment size `S` (vectors per segment).
    pub fn segment(mut self, segment: usize) -> Self {
        self.config.segment = segment;
        self
    }

    /// State Skip speedup factor `k`.
    pub fn speedup(mut self, speedup: u64) -> Self {
        self.config.speedup = speedup;
        self
    }

    /// Explicit LFSR size `n` (default: `smax + 4`).
    pub fn lfsr_size(mut self, n: usize) -> Self {
        self.config.lfsr_size = Some(n);
        self
    }

    /// LFSR feedback structure.
    pub fn lfsr_kind(mut self, kind: LfsrKind) -> Self {
        self.config.lfsr_kind = kind;
        self
    }

    /// Phase shifter taps per scan chain.
    pub fn ps_taps(mut self, taps: usize) -> Self {
        self.config.ps_taps = taps;
        self
    }

    /// RNG seed for phase shifter synthesis.
    pub fn hw_seed(mut self, seed: u64) -> Self {
        self.config.hw_seed = seed;
        self
    }

    /// RNG seed for the pseudorandom fill of free seed variables.
    pub fn fill_seed(mut self, seed: u64) -> Self {
        self.config.fill_seed = seed;
        self
    }

    /// Worker-thread budget for the parallel stages (default: the
    /// machine's [`std::thread::available_parallelism`]). Must be at
    /// least 1; results are bit-identical at every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = Some(threads);
        self
    }

    /// Validates the knobs and produces the [`Engine`].
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadConfig`] when `window == 0`, `segment` is
    /// outside `1..=window`, `speedup == 0` or `ps_taps == 0`.
    pub fn build(self) -> Result<Engine, SchemeError> {
        Engine::from_config(self.config)
    }
}

/// The staged execution front-end: hardware synthesis, the
/// encode → embed → segment → finish stages, and batch drivers over
/// [`CompressionScheme`] trait objects.
///
/// See the [crate-level quickstart](crate) for the typical flow.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Starts building an engine from the default knob set.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Validates a complete knob set directly.
    ///
    /// # Errors
    ///
    /// The same validation as [`EngineBuilder::build`].
    pub fn from_config(config: EngineConfig) -> Result<Self, SchemeError> {
        if config.window == 0 {
            return Err(SchemeError::bad_config("window must be >= 1"));
        }
        if config.segment == 0 || config.segment > config.window {
            return Err(SchemeError::bad_config("segment must be in 1..=window"));
        }
        if config.speedup == 0 {
            return Err(SchemeError::bad_config("speedup must be >= 1"));
        }
        if config.ps_taps == 0 {
            return Err(SchemeError::bad_config("ps_taps must be >= 1"));
        }
        if config.threads == Some(0) {
            return Err(SchemeError::bad_config("threads must be >= 1"));
        }
        Ok(Engine { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The concrete worker-thread count the engine's parallel stages
    /// run with: the configured knob, or the machine's available
    /// parallelism when unset.
    pub fn threads(&self) -> usize {
        resolve_threads(self.config.threads)
    }

    /// Synthesises the hardware context (LFSR, phase shifter,
    /// expression table) for a test set without encoding anything.
    ///
    /// # Errors
    ///
    /// [`SchemeError`] for an empty set, an LFSR below `smax`, or
    /// failed hardware synthesis.
    pub fn synthesize(&self, set: &TestSet) -> Result<HardwareCtx, SchemeError> {
        HardwareCtx::synthesize(set, &self.config)
    }

    /// Stage 1: encodes the test set into seeds, returning the
    /// [`Encoded`] artifact for inspection or further stages.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors and [`SchemeError::Encode`] when a
    /// cube cannot be encoded (LFSR too small).
    pub fn encode<'a>(&self, set: &'a TestSet) -> Result<Encoded<'a>, SchemeError> {
        let ctx = self.synthesize(set)?;
        Encoded::from_ctx(set, ctx)
    }

    /// Runs all stages — encode, embed, segment, finish — and returns
    /// the full report. Equivalent to the legacy
    /// [`Pipeline::run`](crate::Pipeline::run), bit for bit.
    ///
    /// # Errors
    ///
    /// Any stage error, see [`Engine::encode`].
    pub fn run(&self, set: &TestSet) -> Result<PipelineReport, SchemeError> {
        self.encode(set)?.embed().segment().finish()
    }

    /// Splits `set` into the cubes this configuration's hardware can
    /// encode and the indices of intrinsically unencodable cubes (see
    /// [`HardwareCtx::encodable_subset`]).
    ///
    /// Note: with the default (set-derived) LFSR size, dropping cubes
    /// can lower `smax` and therefore change the hardware a subsequent
    /// [`Engine::run`] synthesises — possibly surfacing *new*
    /// conflicts. To filter and run against identical hardware, pin
    /// [`EngineBuilder::lfsr_size`], or keep the context and re-enter
    /// the staged flow via
    /// [`Encoded::from_ctx`](crate::Encoded::from_ctx).
    ///
    /// # Errors
    ///
    /// Propagates hardware synthesis errors.
    pub fn encodable_subset(&self, set: &TestSet) -> Result<(TestSet, Vec<usize>), SchemeError> {
        Ok(self.synthesize(set)?.encodable_subset(set))
    }

    /// Runs one scheme against this engine's hardware.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors and the scheme's own failure.
    pub fn run_scheme(
        &self,
        scheme: &dyn CompressionScheme,
        set: &TestSet,
    ) -> Result<SchemeReport, SchemeError> {
        let ctx = self.synthesize(set)?;
        scheme.compress(set, &ctx)
    }

    /// Batch driver: synthesises the hardware once, then runs every
    /// scheme **in parallel** over a [`std::thread::scope`] worker
    /// pool capped at the configured [`threads`](Engine::threads) and
    /// returns their reports in input order — ready for
    /// [`comparison_table`](crate::comparison_table).
    ///
    /// # Errors
    ///
    /// The first scheme error in input order. Panics in scheme threads
    /// are propagated.
    pub fn run_all(
        &self,
        schemes: &[Box<dyn CompressionScheme>],
        set: &TestSet,
    ) -> Result<Vec<SchemeReport>, SchemeError> {
        let ctx = self.synthesize(set)?;
        let ctx = &ctx;
        let results = run_pool(self.threads(), schemes.len(), |i| {
            schemes[i].compress(set, ctx)
        });
        results.into_iter().collect()
    }
}

/// Runs `count` independent jobs over a scoped worker pool of at most
/// `threads` threads (inline when one suffices), returning results in
/// job order. Panics in workers are propagated.
pub(crate) fn run_pool<T, F>(threads: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    thread::scope(|scope| {
        let next = &next;
        let job = &job;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        done.push((i, job(i)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(done) => {
                    for (i, result) in done {
                        results[i] = Some(result);
                    }
                }
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_testdata::{generate_test_set, CubeProfile};

    #[test]
    fn builder_validates_every_knob() {
        let bad = |b: EngineBuilder| matches!(b.build(), Err(SchemeError::BadConfig(_)));
        assert!(bad(Engine::builder().window(0)));
        assert!(bad(Engine::builder().window(10).segment(0)));
        assert!(bad(Engine::builder().window(10).segment(11)));
        assert!(bad(Engine::builder().speedup(0)));
        assert!(bad(Engine::builder().ps_taps(0)));
        assert!(bad(Engine::builder().threads(0)));
        assert!(Engine::builder().window(10).segment(10).build().is_ok());
        let engine = Engine::builder().threads(3).build().unwrap();
        assert_eq!(engine.threads(), 3);
        assert!(Engine::builder().build().unwrap().threads() >= 1);
    }

    #[test]
    fn run_pool_preserves_order_at_any_width() {
        for threads in [1usize, 2, 7, 64] {
            let results = crate::builder::run_pool(threads, 23, |i| i * i);
            assert_eq!(results, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(crate::builder::run_pool(4, 0, |i| i).is_empty());
    }

    #[test]
    fn staged_run_produces_a_consistent_report() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let engine = Engine::builder()
            .window(24)
            .segment(4)
            .speedup(6)
            .build()
            .unwrap();
        let encoded = engine.encode(&set).unwrap();
        assert!(encoded.seed_count() > 0);
        let embedded = encoded.embed();
        assert!(embedded.embedding().validate());
        let segmented = embedded.segment();
        let tsl = segmented.tsl();
        let report = segmented.finish().unwrap();
        assert_eq!(report.tsl_proposed, tsl.vectors);
        assert!(report.tsl_proposed < report.tsl_original);
    }

    #[test]
    fn engine_rejects_an_empty_set() {
        let set = ss_testdata::TestSet::new(ss_testdata::ScanConfig::new(2, 4).unwrap());
        let engine = Engine::builder().window(8).segment(2).build().unwrap();
        assert!(matches!(engine.run(&set), Err(SchemeError::BadConfig(_))));
    }
}
