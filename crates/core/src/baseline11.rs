//! The `[11]`-style test-set-embedding baseline.
//!
//! The paper's reference [11] (Kaseridis et al., ETS 2005) uses the
//! same window-based reseeding but no State Skip hardware: the only
//! sequence reduction available is ending each window right after the
//! last vector that embeds a test cube. This module reproduces that
//! behaviour so Table 3's comparison can be regenerated.
//!
//! The scheme is also available polymorphically as
//! [`Baseline11`](crate::Baseline11), runnable through
//! [`Engine::run_all`](crate::Engine::run_all) alongside the other
//! [`CompressionScheme`](crate::CompressionScheme)s.

use crate::embedding::EmbeddingMap;

/// TSL of the truncation-only baseline: per seed, all vectors up to and
/// including the last one that the cover relies on.
///
/// `assignment[cube] = (seed, position)` must map every cube to one of
/// its embeddings (a minimal-latest assignment is computed here: each
/// cube is served by its *earliest* embedding in the seed that embeds
/// it first — a simple deterministic policy matching \[11\]'s greedy
/// spirit).
///
/// # Panics
///
/// Panics if some cube has no embedding (`map.validate()` is false).
pub fn baseline11_tsl(map: &EmbeddingMap) -> u64 {
    assert!(map.validate(), "every cube must be embedded somewhere");
    // last needed position per seed
    let mut last_needed: Vec<Option<usize>> = vec![None; map.seed_count()];
    for cube in 0..map.cube_count() {
        // serve each cube at its globally earliest (seed, position)
        let &(seed, pos) = map
            .matches(cube)
            .iter()
            .min_by_key(|&&(s, p)| (s, p))
            .expect("validated non-empty");
        let entry = &mut last_needed[seed];
        *entry = Some(entry.map_or(pos, |prev| prev.max(pos)));
    }
    last_needed
        .iter()
        .map(|last| last.map_or(0, |p| p as u64 + 1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_gf2::BitVec;
    use ss_testdata::{ScanConfig, TestCube, TestSet};

    fn v(bits: [u8; 2]) -> BitVec {
        BitVec::from_bits(bits.iter().map(|&b| b == 1))
    }

    #[test]
    fn truncates_each_window_after_last_needed_vector() {
        let mut set = TestSet::new(ScanConfig::new(1, 2).unwrap());
        set.push("11".parse::<TestCube>().unwrap()).unwrap(); // only (0,0)
        set.push("00".parse::<TestCube>().unwrap()).unwrap(); // (0,2) and (1,1)
        set.push("01".parse::<TestCube>().unwrap()).unwrap(); // only (1,0)
        let windows = vec![
            vec![v([1, 1]), v([1, 0]), v([0, 0]), v([1, 0])],
            vec![v([0, 1]), v([0, 0]), v([1, 0]), v([1, 0])],
        ];
        let map = EmbeddingMap::from_windows(&set, &windows);
        // cube 0 -> (0,0); cube 1 earliest -> (0,2); cube 2 -> (1,0)
        // seed 0 runs to position 2 (3 vectors), seed 1 to position 0 (1)
        assert_eq!(baseline11_tsl(&map), 4);
    }

    #[test]
    fn unused_seed_contributes_nothing() {
        let mut set = TestSet::new(ScanConfig::new(1, 2).unwrap());
        set.push("1X".parse::<TestCube>().unwrap()).unwrap();
        let windows = vec![
            vec![v([1, 0]), v([0, 0])],
            vec![v([1, 0]), v([0, 0])], // second seed never needed
        ];
        let map = EmbeddingMap::from_windows(&set, &windows);
        assert_eq!(baseline11_tsl(&map), 1);
    }
}
